# Convenience targets for the RA-linearizability reproduction.

PYTHON ?= python

.PHONY: install test bench figures table mutants exhaustive examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) -m repro figures

table:
	$(PYTHON) -m repro table

mutants:
	$(PYTHON) -m repro mutants

exhaustive:
	$(PYTHON) -m repro exhaustive

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done

all: test bench
