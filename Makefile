# Convenience targets for the RA-linearizability reproduction.

PYTHON ?= python

.PHONY: install test bench bench-explore figures table mutants exhaustive examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Naive vs. fast exploration engine; refreshes BENCH_explore.json.
# Add -m slow for the 3-replica scopes (minutes).
bench-explore:
	$(PYTHON) -m pytest benchmarks/test_bench_explore_engine.py --benchmark-only -s

figures:
	$(PYTHON) -m repro figures

table:
	$(PYTHON) -m repro table

mutants:
	$(PYTHON) -m repro mutants

exhaustive:
	$(PYTHON) -m repro exhaustive

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done

all: test bench
