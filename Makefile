# Convenience targets for the RA-linearizability reproduction.

PYTHON ?= python

.PHONY: install test bench bench-explore bench-dpor bench-optimal bench-steal bench-compose bench-verify bench-diff figures table mutants exhaustive chaos examples all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# The tier-1 invocation: works from a source checkout without installing.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Naive vs. fast exploration engine; refreshes BENCH_explore.json.
# Add -m slow for the 3-replica scopes (minutes).
bench-explore:
	$(PYTHON) -m pytest benchmarks/test_bench_explore_engine.py --benchmark-only -s

# Source-DPOR + persistent snapshots vs. the sleep-set engine on
# 3-replica scopes; merges the dpor_3r section into BENCH_explore.json.
bench-dpor:
	$(PYTHON) -m pytest benchmarks/test_bench_dpor.py --benchmark-only -s

# Optimal DPOR (wakeup trees) vs. plain source-DPOR on the same
# 3-replica scopes; merges the optimal_3r section into
# BENCH_explore.json and enforces the structural gates (no full
# expansions, walk never grows, three-way verdict parity).
bench-optimal:
	$(PYTHON) -m pytest benchmarks/test_bench_optimal.py --benchmark-only -s

# Work-stealing scheduler vs. static fan-out + fingerprint-store
# memory tiers; merges steal_3r / fp_store sections into
# BENCH_explore.json.  Add -m slow for the 4-replica spill scope.
bench-steal:
	$(PYTHON) -m pytest benchmarks/test_bench_steal.py --benchmark-only -s

# Compositional per-object proof rule vs whole-store product exploration
# on a 3-object ⊗ts store; merges the compose_3r section into
# BENCH_explore.json (see docs/composition.md).
bench-compose:
	$(PYTHON) -m pytest benchmarks/test_bench_compose.py --benchmark-only -s

# PR-1 serial baseline vs. incremental checking vs. --jobs 4; refreshes
# BENCH_verify.json.  Needs git history for the pinned baseline commit.
bench-verify:
	$(PYTHON) -m pytest benchmarks/test_bench_verify_parallel.py --benchmark-only -s

# Regression gate: compare freshly benched sections against the committed
# baselines.  OLD/NEW default to the self-compare smoke; override as
# `make bench-diff OLD=BENCH_explore.json NEW=/tmp/BENCH_explore.json`.
OLD ?= BENCH_explore.json
NEW ?= BENCH_explore.json
bench-diff:
	PYTHONPATH=src $(PYTHON) -m repro bench diff $(OLD) $(NEW)

figures:
	$(PYTHON) -m repro figures

table:
	$(PYTHON) -m repro table

mutants:
	$(PYTHON) -m repro mutants

exhaustive:
	$(PYTHON) -m repro exhaustive

# Deterministic fault-injection soak: every registry entry under every
# default plan (baseline / high-loss / partition / crash).
chaos:
	PYTHONPATH=src $(PYTHON) -m repro chaos

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done

all: test bench
