"""The Fig. 12 catalogue: every CRDT with its verification ingredients.

Each entry bundles what the paper's per-CRDT proofs need:

* the implementation (op-based or state-based),
* the sequential specification,
* the query-update rewriting γ (None when the identity),
* the refinement mapping ``abs`` from replica states to spec states,
* for timestamp-order CRDTs, the ``ts(σ)`` extractor used by the
  Refinement_ts guard,
* a randomized workload.

The classes (``EO`` — execution-order, ``TO`` — timestamp-order) and kinds
(``OB``/``SB``) are transcribed from Fig. 12; three extra entries (G-Counter,
G-Set, RGA-addAt) cover Appendix C/D material beyond the figure.
"""

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..core.sentinels import BEGIN, END, ROOT
from ..core.timestamp import BOTTOM
from ..crdts.opbased import (
    Op2PSet,
    OpCounter,
    OpLWWRegister,
    OpORSet,
    OpRGA,
    OpRGAAddAt,
    OpWooki,
)
from ..crdts.opbased.rga import traverse
from ..crdts.statebased import (
    SBLWWRegister,
    SB2PSet,
    SBGCounter,
    SBGSet,
    SBLWWElementSet,
    SBMVRegister,
    SBPNCounter,
)
from ..runtime.workloads import (
    CounterWorkload,
    GCounterWorkload,
    GSetWorkload,
    LWWSetWorkload,
    MVRegisterWorkload,
    ORSetWorkload,
    RGAAddAtWorkload,
    RGAWorkload,
    RegisterWorkload,
    TwoPSetWorkload,
    Workload,
    WookiWorkload,
)
from ..specs import (
    AddAt3Spec,
    CounterSpec,
    LWWRegisterSpec,
    MVRegisterRewriting,
    MVRegisterSpec,
    ORSetRewriting,
    ORSetSpec,
    RGASpec,
    SetSpec,
    WookiSpec,
)


@dataclass
class CRDTEntry:
    """One row of the (extended) Fig. 12 table plus its proof ingredients."""

    name: str
    kind: str        # "OB" | "SB"
    lin_class: str   # "EO" | "TO"
    make_crdt: Callable[[], Any]
    make_spec: Callable[[], Any]
    make_gamma: Callable[[], Any]    # returns None for identity
    abs_fn: Callable[[Any], Any]
    make_workload: Callable[[], Workload]
    state_timestamps: Optional[Callable[[Any], Any]] = None
    in_figure_12: bool = True
    source: str = ""
    #: Whether the exhaustive explorer may apply its commutativity-based
    #: partial-order reduction to this entry (see ``docs/exploration.md``).
    #: The engine additionally re-probes effector/merge commutativity
    #: dynamically before pruning, so leaving this True is safe even for
    #: mutants; set False to force exploration of every raw interleaving
    #: modulo state dedup (the escape hatch for entries whose
    #: Commutativity property (Fig. 11) is known to fail).
    reduction: bool = True
    #: Whether the exhaustive explorer may dedup configurations modulo
    #: replica permutation (see ``runtime/symmetry.py``).  Sound whenever
    #: the CRDT never *orders* timestamps minted by concurrent operations
    #: in a value-observable way — Lamport timestamps tie-break on the
    #: replica string, so renaming replicas is not an automorphism of the
    #: timestamp order.  Set False for last-writer-wins semantics and for
    #: Wooki (its degree/wid ordering is observable); sequence CRDTs that
    #: only reorder *equal* values under symmetric programs (RGA) stay
    #: True, guarded by the naive-vs-symmetry differential suite.
    symmetry: bool = True
    #: Operations per chaos run (``repro chaos`` / the fault-injection
    #: soak).  Sequence CRDTs get a smaller budget: their histories grow
    #: long anchors chains, and the soak multiplies runs across every
    #: (plan, seed) pair.
    chaos_operations: int = 12


def _rga_abs(state):
    nodes, tombs = state
    return ((ROOT,) + traverse(nodes, frozenset()), frozenset(tombs))


def _rga_addat_abs(state):
    nodes, tombs = state
    return (traverse(nodes, frozenset()), frozenset(tombs))


def _rga_state_timestamps(state):
    nodes, _tombs = state
    return [ts for _, ts, _ in nodes]


def _wooki_abs(state):
    sequence = tuple(char.value for char in state)
    hidden = frozenset(
        char.value for char in state
        if not char.visible and char.value not in (BEGIN, END)
    )
    return (sequence, hidden)


def _lww_register_abs(state):
    value, _ts = state
    return value


def _lww_register_state_timestamps(state):
    _value, ts = state
    return [] if ts is BOTTOM else [ts]


def _pn_counter_abs(state):
    positives, negatives = state
    return sum(positives.values()) - sum(negatives.values())


def _lww_set_abs(state):
    from ..crdts.statebased.lww_element_set import lww_contents

    return lww_contents(state)


def _lww_set_state_timestamps(state):
    adds, removes = state
    return [record[1] for record in adds | removes]


def _two_phase_abs(state):
    added, removed = state
    return added - removed


FIGURE_12_ENTRIES: List[CRDTEntry] = [
    CRDTEntry(
        name="Counter",
        kind="OB", lin_class="EO",
        make_crdt=OpCounter,
        make_spec=CounterSpec,
        make_gamma=lambda: None,
        abs_fn=lambda state: state,
        make_workload=CounterWorkload,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="PN-Counter",
        kind="SB", lin_class="EO",
        make_crdt=SBPNCounter,
        make_spec=CounterSpec,
        make_gamma=lambda: None,
        abs_fn=_pn_counter_abs,
        make_workload=CounterWorkload,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="LWW-Register",
        kind="OB", lin_class="TO",
        make_crdt=OpLWWRegister,
        make_spec=LWWRegisterSpec,
        make_gamma=lambda: None,
        abs_fn=_lww_register_abs,
        make_workload=RegisterWorkload,
        state_timestamps=_lww_register_state_timestamps,
        source="Johnson and Thomas 1975",
        symmetry=False,
    ),
    CRDTEntry(
        name="Multi-Value Reg.",
        kind="SB", lin_class="EO",
        make_crdt=SBMVRegister,
        make_spec=MVRegisterSpec,
        make_gamma=MVRegisterRewriting,
        abs_fn=lambda state: state,
        make_workload=MVRegisterWorkload,
        source="DeCandia et al. 2007",
    ),
    CRDTEntry(
        name="LWW-Element Set",
        kind="SB", lin_class="TO",
        make_crdt=SBLWWElementSet,
        make_spec=SetSpec,
        make_gamma=lambda: None,
        abs_fn=_lww_set_abs,
        make_workload=LWWSetWorkload,
        state_timestamps=_lww_set_state_timestamps,
        source="Shapiro et al. 2011",
        symmetry=False,
    ),
    CRDTEntry(
        name="2P-Set",
        kind="SB", lin_class="EO",
        make_crdt=SB2PSet,
        make_spec=SetSpec,
        make_gamma=lambda: None,
        abs_fn=_two_phase_abs,
        make_workload=TwoPSetWorkload,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="OR-Set",
        kind="OB", lin_class="EO",
        make_crdt=OpORSet,
        make_spec=ORSetSpec,
        make_gamma=ORSetRewriting,
        abs_fn=lambda state: state,
        make_workload=ORSetWorkload,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="RGA",
        kind="OB", lin_class="TO",
        make_crdt=OpRGA,
        make_spec=RGASpec,
        make_gamma=lambda: None,
        abs_fn=_rga_abs,
        make_workload=RGAWorkload,
        state_timestamps=_rga_state_timestamps,
        source="Roh et al. 2011",
        chaos_operations=10,
    ),
    CRDTEntry(
        name="Wooki",
        kind="OB", lin_class="EO",
        make_crdt=OpWooki,
        make_spec=WookiSpec,
        make_gamma=lambda: None,
        abs_fn=_wooki_abs,
        make_workload=WookiWorkload,
        source="Weiss et al. 2007",
        chaos_operations=10,
        symmetry=False,
    ),
]

EXTRA_ENTRIES: List[CRDTEntry] = [
    CRDTEntry(
        name="2P-Set (op)",
        kind="OB", lin_class="EO",
        make_crdt=Op2PSet,
        make_spec=SetSpec,
        make_gamma=lambda: None,
        abs_fn=_two_phase_abs,
        make_workload=TwoPSetWorkload,
        in_figure_12=False,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="LWW-Register (SB)",
        kind="SB", lin_class="TO",
        make_crdt=SBLWWRegister,
        make_spec=LWWRegisterSpec,
        make_gamma=lambda: None,
        abs_fn=_lww_register_abs,
        make_workload=RegisterWorkload,
        state_timestamps=_lww_register_state_timestamps,
        in_figure_12=False,
        source="Johnson and Thomas 1975",
        symmetry=False,
    ),
    CRDTEntry(
        name="G-Counter",
        kind="SB", lin_class="EO",
        make_crdt=SBGCounter,
        make_spec=CounterSpec,
        make_gamma=lambda: None,
        abs_fn=lambda state: sum(state.values()),
        make_workload=GCounterWorkload,
        in_figure_12=False,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="G-Set",
        kind="SB", lin_class="EO",
        make_crdt=SBGSet,
        make_spec=SetSpec,
        make_gamma=lambda: None,
        abs_fn=lambda state: state,
        make_workload=GSetWorkload,
        in_figure_12=False,
        source="Shapiro et al. 2011",
    ),
    CRDTEntry(
        name="RGA-addAt",
        kind="OB", lin_class="TO",
        make_crdt=OpRGAAddAt,
        make_spec=AddAt3Spec,
        make_gamma=lambda: None,
        abs_fn=_rga_addat_abs,
        make_workload=RGAAddAtWorkload,
        state_timestamps=_rga_state_timestamps,
        in_figure_12=False,
        source="Attiya et al. 2016 (Appendix C)",
        chaos_operations=10,
    ),
]

ALL_ENTRIES: List[CRDTEntry] = FIGURE_12_ENTRIES + EXTRA_ENTRIES


def entry_by_name(name: str) -> CRDTEntry:
    for entry in ALL_ENTRIES:
        if entry.name == name:
            return entry
    raise KeyError(name)
