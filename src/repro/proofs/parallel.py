"""Process-parallel verification fan-out.

By default the within-scope paths here delegate to the work-stealing
scheduler (:mod:`repro.proofs.steal`, ``STEAL_DEFAULT``); ``steal=False``
selects the static strategies below.  Two static sharding axes, both
built on :class:`concurrent.futures.ProcessPoolExecutor`:

* **Across registry entries** — :func:`verify_entries_parallel` runs the
  Fig. 12 randomized harness (``verify_entry``) for several catalogue
  entries at once (the ``table --jobs N`` path).
* **Within one scope** — :func:`exhaustive_verify_parallel` splits a
  single exhaustive exploration at the root of its DFS tree (*frontier
  split*): worker ``i`` explores only the subtree under the ``i``-th
  initial transition, with sleep-set seeds reconstructed so the union of
  the subtrees is exactly the serial search (see
  ``_Engine._run_root_branch`` in :mod:`repro.runtime.explore_engine` and
  ``docs/performance.md``).  :func:`verify_scopes_parallel` feeds many
  scopes' branch tasks through one shared pool (the ``exhaustive
  --jobs N`` path), so a scope with few root branches does not leave
  workers idle.

Merging is deterministic: branch results are combined in branch order,
distinct-configuration counts come from the union of the workers'
fingerprint sets (a configuration reachable in two subtrees must be
counted once, exactly as serial deduplication would), additive exploration
counters are summed and wall times are ``max``-ed (workers run
concurrently).

Worker processes reconstruct their :class:`CRDTEntry` by *name* via
:func:`repro.proofs.registry.entry_by_name` — entry factories are lambdas
and do not pickle — so the parallel paths cover registry entries only.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.ralin import CheckStats
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from ..runtime.explore_engine import ExploreStats
from ..runtime.fp_store import FPStoreStats
from ..runtime.schedule import Program
from ..runtime.symmetry import build_group, rename_transition
from ..runtime.system import DEFAULT_OBJECT
from .exhaustive import (
    ExhaustiveResult,
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from .registry import ALL_ENTRIES, CRDTEntry, entry_by_name
from .report import VerificationResult, verify_entry

#: Parallel exhaustive paths use the work-stealing scheduler
#: (:mod:`repro.proofs.steal`) unless the caller opts out
#: (``steal=False`` / ``--no-steal``).
STEAL_DEFAULT = True

#: One work item, picklable: ``(entry name, programs, max_gossips,
#: reduction, symmetry, cache, branch, obs, por)``.  ``max_gossips`` is
#: ``None`` for op-based scopes; ``branch`` is a root branch index for a
#: frontier-split shard, or ``None`` for the whole tree.  ``obs`` is
#: ``None`` (instrumentation off) or the observability envelope built by
#: :func:`_obs_envelope`.  ``por`` picks the reduction flavor the worker
#: engine runs (``"sleep"`` or ``"source"``).
_BranchTask = Tuple[str, Dict[str, Program], Optional[int], Optional[bool],
                    Optional[bool], bool, Optional[int],
                    Optional[Dict[str, Any]], str]


def _obs_envelope(ins: Instrumentation) -> Optional[Dict[str, Any]]:
    """What a task carries so the worker can rebuild instrumentation.

    ``submitted`` is wall-clock (``time.time``), the only clock comparable
    across processes — the worker's first act is to observe
    ``now - submitted`` as ``parallel.queue_wait_seconds``.
    """
    if not ins.enabled:
        return None
    return {"trace": ins.trace_checks, "submitted": time.time()}


def _worker_instrumentation(
    obs: Optional[Dict[str, Any]]
) -> Instrumentation:
    """Worker-side handle: fresh and fully enabled, or the shared no-op."""
    if obs is None:
        return NULL_INSTRUMENTATION
    ins = Instrumentation.on(trace_checks=obs.get("trace", False))
    ins.metrics.histogram("parallel.queue_wait_seconds").observe(
        max(0.0, time.time() - obs["submitted"])
    )
    return ins


def default_jobs() -> int:
    """Worker count when ``--jobs`` is given without a value."""
    return os.cpu_count() or 1


def _worker_count(jobs: int, tasks: int, oversubscribe: bool = False) -> int:
    """Effective pool size: ``jobs``, capped by tasks and physical cores.

    Verification workers are CPU-bound, so running more processes than
    cores never helps — it only adds context-switch and cache-contention
    overhead (measured ~15% on the exhaustive suite).  ``--jobs`` above
    ``os.cpu_count()`` is therefore treated as "use every core";
    ``oversubscribe=True`` lifts the core cap (tests and benches that
    need real multi-process behavior on small machines).  The task cap
    always applies — idle processes would be pure fork overhead — and
    ``tasks == 0`` collapses to 1 so callers can treat the result as a
    pool size unconditionally.
    """
    capped = jobs if oversubscribe else min(jobs, os.cpu_count() or jobs)
    return max(1, min(capped, tasks))


def _require_registered(entry: CRDTEntry) -> None:
    try:
        entry_by_name(entry.name)
    except KeyError:
        raise ValueError(
            f"parallel verification reconstructs entries by name in worker "
            f"processes; {entry.name!r} is not in the registry"
        ) from None


def _root_transitions(
    kind: str, programs: Dict[str, Program], max_gossips: Optional[int]
) -> List[Tuple]:
    """The exploration root's out-edges, in domain order.

    At the root no label has been generated, so the only op-based
    transitions are the first invocations; state-based roots additionally
    offer every ordered gossip pair while budget remains.  Mirrors
    ``_OpDomain.transitions`` / ``_StateDomain.transitions`` over
    ``sorted(programs)`` (the replica order both systems are built with).
    """
    replicas = sorted(programs)
    trans: List[Tuple] = [
        ("inv", r, 0) for r in replicas if programs[r]
    ]
    if kind == "SB" and (max_gossips or 0) > 0:
        for source in replicas:
            for target in replicas:
                if source != target:
                    trans.append(("gos", source, target))
    return trans


def _symmetric_root_reps(
    entry: CRDTEntry,
    transitions: List[Tuple],
    programs: Dict[str, Program],
) -> List[int]:
    """Indices of one root branch per replica-permutation orbit.

    Two root transitions in the same orbit start subtrees whose
    configurations are replica-renamings of each other; with orbit dedup
    active inside every worker, fanning out both would do the second
    subtree's work only to merge it away.  The kept representative is
    always the orbit's *first* branch, so its sleep-set seeds (the earlier
    branches) are preserved exactly as the serial engine builds them.
    """
    extra = (DEFAULT_OBJECT,) if entry.kind == "OB" else ()
    group = build_group(programs, extra_names=extra)
    if not group.enabled:
        return list(range(len(transitions)))
    seen_orbits = set()
    kept = []
    for index, transition in enumerate(transitions):
        orbit = min(
            rename_transition(transition, mapping) for mapping in group.maps
        )
        if orbit not in seen_orbits:
            seen_orbits.add(orbit)
            kept.append(index)
    return kept


def _branch_worker(task: _BranchTask):
    (name, programs, max_gossips, reduction, symmetry, cache, branch, obs,
     por) = task
    ins = _worker_instrumentation(obs)
    entry = entry_by_name(name)
    fingerprints: set = set()
    with ins.span("parallel.task", entry=name, branch=branch):
        if entry.kind == "OB":
            result = exhaustive_verify(
                entry, programs, reduction=reduction, symmetry=symmetry,
                cache=cache, root_branch=branch, fingerprints=fingerprints,
                instrumentation=ins, por=por,
            )
        else:
            result = exhaustive_verify_state(
                entry, programs, max_gossips=max_gossips or 0,
                reduction=reduction, symmetry=symmetry, cache=cache,
                root_branch=branch, fingerprints=fingerprints,
                instrumentation=ins, por=por,
            )
    payload = ins.worker_payload() if obs is not None else None
    if branch is None:
        # Whole-tree task: the result's own count is already the distinct
        # total — no cross-shard dedup needed, so don't ship the (large)
        # fingerprint set back through the pipe.
        return branch, result, None, payload
    return branch, result, fingerprints, payload


def _merge_branches(
    entry_name: str, outcomes: Iterable[Tuple[int, ExhaustiveResult, set]]
) -> ExhaustiveResult:
    merged = ExhaustiveResult(entry_name)
    merged.stats = ExploreStats()
    check_stats = CheckStats()
    saw_check_stats = False
    fingerprints: set = set()
    whole_tree_configurations = 0
    for _, result, branch_fps in sorted(
        outcomes, key=lambda item: item[0] if item[0] is not None else -1
    ):
        if branch_fps is None:
            whole_tree_configurations += result.configurations
        else:
            fingerprints |= branch_fps
        if not result.ok:
            merged.ok = False
        for failure in result.failures:
            if len(merged.failures) < 10:
                merged.failures.append(failure)
        stats = result.stats
        if stats is not None:
            merged.stats.states_visited += stats.states_visited
            merged.stats.states_deduped += stats.states_deduped
            merged.stats.branches_pruned += stats.branches_pruned
            merged.stats.commute_checks += stats.commute_checks
            merged.stats.snapshots += stats.snapshots
            merged.stats.deepcopies += stats.deepcopies
            merged.stats.peak_frontier = max(
                merged.stats.peak_frontier, stats.peak_frontier
            )
            merged.stats.wall_time = max(
                merged.stats.wall_time, stats.wall_time
            )
            merged.stats.capped |= stats.capped
            merged.stats.symmetry_group = max(
                merged.stats.symmetry_group, stats.symmetry_group
            )
            merged.stats.pinned_replicas = max(
                merged.stats.pinned_replicas, stats.pinned_replicas
            )
            merged.stats.state_fp_cache_peak = max(
                merged.stats.state_fp_cache_peak, stats.state_fp_cache_peak
            )
            merged.stats.steal_splits += stats.steal_splits
            merged.stats.steal_spawned += stats.steal_spawned
            merged.stats.dpor_races += stats.dpor_races
            merged.stats.dpor_redundant_avoided += (
                stats.dpor_redundant_avoided
            )
            merged.stats.dpor_deferred += stats.dpor_deferred
            merged.stats.dpor_full_expansions += stats.dpor_full_expansions
            merged.stats.dpor_wakeup_branches += stats.dpor_wakeup_branches
            merged.stats.dpor_wakeup_fallbacks += (
                stats.dpor_wakeup_fallbacks
            )
            merged.stats.dpor_patch_cuts += stats.dpor_patch_cuts
            merged.stats.dpor_vacuity_drops += stats.dpor_vacuity_drops
            merged.stats.dpor_deferred_seen = max(
                merged.stats.dpor_deferred_seen, stats.dpor_deferred_seen
            )
            merged.stats.pstate_copied += stats.pstate_copied
            merged.stats.pstate_shared += stats.pstate_shared
        if result.fp_store is not None:
            if merged.fp_store is None:
                merged.fp_store = FPStoreStats()
            merged.fp_store.merge(result.fp_store)
        if result.check_stats is not None:
            saw_check_stats = True
            check_stats.checks += result.check_stats.checks
            check_stats.verdict_hits += result.check_stats.verdict_hits
            check_stats.unkeyed += result.check_stats.unkeyed
            check_stats.frontier_hits += result.check_stats.frontier_hits
            check_stats.frontier_misses += result.check_stats.frontier_misses
            check_stats.frontier_unattached += (
                result.check_stats.frontier_unattached
            )
            check_stats.frontier_nodes = max(
                check_stats.frontier_nodes, result.check_stats.frontier_nodes
            )
            for cond, seconds in result.check_stats.cond_seconds.items():
                check_stats.cond_seconds[cond] = (
                    check_stats.cond_seconds.get(cond, 0.0) + seconds
                )
            for cond, count in result.check_stats.failed_conditions.items():
                check_stats.failed_conditions[cond] = (
                    check_stats.failed_conditions.get(cond, 0) + count
                )
    merged.configurations = len(fingerprints) + whole_tree_configurations
    merged.stats.configurations = merged.configurations
    if saw_check_stats:
        merged.check_stats = check_stats
    return merged


def _absorb_payloads(
    ins: Instrumentation, outcomes: Iterable[Tuple]
) -> List[Tuple[Optional[int], ExhaustiveResult, Optional[set]]]:
    """Fold worker payloads into the coordinator; strip them from outcomes."""
    stripped = []
    for branch, result, fingerprints, payload in outcomes:
        ins.absorb_worker(payload)
        stripped.append((branch, result, fingerprints))
    return stripped


def _record_pool(ins: Instrumentation, tasks: int, workers: int) -> None:
    if ins.metrics is not None:
        ins.metrics.counter("parallel.tasks").inc(tasks)
        ins.metrics.gauge("parallel.workers", policy="max").set(workers)


def _run_branch_tasks(tasks: List[_BranchTask], workers: int) -> List[Tuple]:
    """Map ``_branch_worker`` over ``tasks``, inline when the pool is 1.

    A one-worker pool would serialize the tasks anyway; running them in
    this process skips the fork, pickling, and pipe costs entirely (and
    keeps single-core machines off the multiprocessing machinery).
    """
    if not tasks:
        return []
    if workers <= 1:
        return [_branch_worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_branch_worker, tasks))


def _branch_tasks(
    entry: CRDTEntry,
    programs: Dict[str, Program],
    max_gossips: Optional[int],
    reduction: Optional[bool],
    symmetry: Optional[bool],
    cache: bool,
    obs: Optional[Dict[str, Any]] = None,
    por: str = "sleep",
) -> List[_BranchTask]:
    _require_registered(entry)
    gossips = max_gossips if entry.kind == "SB" else None
    transitions = _root_transitions(entry.kind, programs, gossips)
    branches = list(range(max(1, len(transitions))))
    if (entry.symmetry if symmetry is None else symmetry) and transitions:
        branches = _symmetric_root_reps(entry, transitions, programs)
    return [
        (entry.name, programs, gossips, reduction, symmetry, cache, branch,
         obs, por)
        for branch in branches
    ]


def exhaustive_verify_parallel(
    entry: CRDTEntry,
    programs: Dict[str, Program],
    jobs: Optional[int] = None,
    max_gossips: int = 3,
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    steal: Optional[bool] = None,
    spill: Optional[str] = None,
    max_configurations: Optional[int] = None,
    oversubscribe: bool = False,
    por: str = "sleep",
) -> ExhaustiveResult:
    """Parallel exhaustive verification of one registry entry.

    Semantically identical to :func:`exhaustive_verify` /
    :func:`exhaustive_verify_state` with the fast engine — same verdict,
    same distinct-configuration count — but explored by ``jobs`` worker
    processes.  ``steal`` picks the scheduler: the work-stealing pool
    (default, :mod:`repro.proofs.steal`) re-balances skewed subtrees at
    runtime, ``steal=False`` is the static root-branch frontier split.
    ``max_gossips`` only applies to state-based entries.  With orbit
    dedup active (``symmetry``), root branches that are replica-renamings
    of an earlier branch are not fanned out at all
    (:func:`_symmetric_root_reps`).

    ``max_configurations`` and ``spill`` require the stealing scheduler
    (the shared budget and the fingerprint store are its machinery); the
    static path rejects them.  An effective pool of one worker runs the
    serial algorithm inline — no processes are spawned.

    With ``instrumentation`` enabled, each worker builds its own handle
    and ships its metrics/trace payload back; *work* counters are summed
    (shards re-explore shared states, so they may exceed serial totals)
    while the deterministic ``verify.*`` counters are recorded exactly
    once here, on the merged result.
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    if steal or steal is None and STEAL_DEFAULT:
        from .steal import exhaustive_verify_steal

        return exhaustive_verify_steal(
            entry, programs, jobs=jobs, max_gossips=max_gossips,
            reduction=reduction, symmetry=symmetry, cache=cache,
            max_configurations=max_configurations, spill=spill,
            instrumentation=ins, oversubscribe=oversubscribe, por=por,
        )
    if max_configurations is not None:
        raise ValueError(
            "max_configurations under parallel exploration requires the "
            "work-stealing scheduler (steal=True)"
        )
    if spill is not None:
        raise ValueError(
            "spill under parallel exploration requires the work-stealing "
            "scheduler (steal=True)"
        )
    jobs = jobs or default_jobs()
    tasks = _branch_tasks(entry, programs, max_gossips, reduction, symmetry,
                          cache, _obs_envelope(ins), por)
    workers = _worker_count(jobs, len(tasks), oversubscribe)
    _record_pool(ins, len(tasks), workers)
    outcomes = _run_branch_tasks(tasks, workers)
    outcomes = _absorb_payloads(ins, outcomes)
    with ins.span("parallel.merge", entry=entry.name, shards=len(outcomes)):
        merged = _merge_branches(entry.name, outcomes)
    if ins.enabled:
        ins.record_result(entry.name, merged)
    return merged


def verify_scopes_parallel(
    scopes: Sequence[Tuple[CRDTEntry, Dict[str, Program], Optional[int]]],
    jobs: Optional[int] = None,
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    steal: Optional[bool] = None,
    spill: Optional[str] = None,
    max_configurations: Optional[int] = None,
    oversubscribe: bool = False,
    por: str = "sleep",
    progress: Optional[float] = None,
    progress_stream: Optional[Any] = None,
    heartbeat_log: Optional[str] = None,
) -> "Dict[str, ExhaustiveResult]":
    """Run many exhaustive scopes through one shared worker pool.

    ``scopes`` is a sequence of ``(entry, programs, max_gossips)`` triples
    (``max_gossips`` ignored for op-based entries).  All scopes' tasks run
    through a single pool so late scopes keep early workers busy.  Returns
    ``{entry.name: merged result}`` preserving the input order.

    ``steal`` (default on) routes the whole batch through the
    work-stealing pool (:func:`repro.proofs.steal.verify_scopes_steal`),
    which also carries ``max_configurations`` (shared budget) and
    ``spill`` (disk-backed fingerprint store); with ``steal=False`` the
    static strategy below applies and rejects both.  ``progress`` /
    ``progress_stream`` / ``heartbeat_log`` are the live-heartbeat knobs
    of the stealing pool (and its serial fallback); the static strategy
    ignores them.

    Task granularity adapts to the pool: with at least ``jobs`` scopes,
    each scope is one whole-tree task — frontier-splitting would only
    re-explore subtree-shared states and split the per-scope caches across
    workers.  With fewer scopes than workers, scopes are frontier-split
    into root-branch shards so the pool stays saturated.

    Deterministic-counter ownership follows the granularity: a whole-tree
    worker already recorded its scope's ``verify.*`` counters (its result
    *is* the final result), so the coordinator only absorbs its payload; a
    frontier-split scope is recorded here, once, on the merged result.
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    if steal or steal is None and STEAL_DEFAULT:
        from .steal import verify_scopes_steal

        return verify_scopes_steal(
            scopes, jobs=jobs, reduction=reduction, symmetry=symmetry,
            cache=cache, max_configurations=max_configurations,
            spill=spill, instrumentation=ins, oversubscribe=oversubscribe,
            por=por, progress=progress, progress_stream=progress_stream,
            heartbeat_log=heartbeat_log,
        )
    if max_configurations is not None:
        raise ValueError(
            "max_configurations under parallel exploration requires the "
            "work-stealing scheduler (steal=True)"
        )
    if spill is not None:
        raise ValueError(
            "spill under parallel exploration requires the work-stealing "
            "scheduler (steal=True)"
        )
    jobs = jobs or default_jobs()
    obs = _obs_envelope(ins)
    tasks: List[_BranchTask] = []
    split = len(scopes) < jobs
    for entry, programs, max_gossips in scopes:
        if split:
            tasks.extend(
                _branch_tasks(entry, programs, max_gossips, reduction,
                              symmetry, cache, obs, por)
            )
        else:
            _require_registered(entry)
            gossips = max_gossips if entry.kind == "SB" else None
            tasks.append(
                (entry.name, programs, gossips, reduction, symmetry, cache,
                 None, obs, por)
            )
    workers = _worker_count(jobs, len(tasks), oversubscribe)
    _record_pool(ins, len(tasks), workers)
    outcomes = _run_branch_tasks(tasks, workers)
    outcomes = _absorb_payloads(ins, outcomes)
    by_entry: Dict[str, List[Tuple[Optional[int], ExhaustiveResult, set]]] = {}
    for task, outcome in zip(tasks, outcomes):
        by_entry.setdefault(task[0], []).append(outcome)
    order: List[str] = []
    for entry, _, _ in scopes:
        if entry.name not in order:
            order.append(entry.name)
    with ins.span("parallel.merge", scopes=len(order)):
        merged = {
            name: _merge_branches(name, by_entry.get(name, []))
            for name in order
        }
    if ins.enabled and split:
        for name, result in merged.items():
            ins.record_result(name, result)
    return merged


def standard_scopes(
    max_gossips: int = 2,
) -> List[Tuple[CRDTEntry, Dict[str, Program], Optional[int]]]:
    """The standard exhaustive scope suite: every registry entry that has
    standard programs, op-based and state-based alike."""
    scopes = []
    for entry in ALL_ENTRIES:
        try:
            programs = standard_programs(entry)
        except KeyError:
            continue
        scopes.append(
            (entry, programs, max_gossips if entry.kind == "SB" else None)
        )
    return scopes


def _entry_worker(
    task: Tuple[str, int, int, int, Optional[Dict[str, Any]]]
) -> Tuple[VerificationResult, Optional[Dict[str, Any]]]:
    name, executions, operations, base_seed, obs = task
    ins = _worker_instrumentation(obs)
    with ins.span("parallel.entry", entry=name):
        result = verify_entry(entry_by_name(name), executions, operations,
                              base_seed, instrumentation=ins)
    return result, (ins.worker_payload() if obs is not None else None)


def verify_entries_parallel(
    entries: Sequence[CRDTEntry],
    executions: int = 10,
    operations: int = 10,
    jobs: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> List[VerificationResult]:
    """Parallel :func:`repro.proofs.report.verify_entry` over ``entries``.

    Results come back in input order; each worker runs one entry's whole
    randomized batch (seeds are unchanged, so results equal the serial
    harness's).  Worker metrics/trace payloads are absorbed into
    ``instrumentation``; the deterministic ``verify.executions`` /
    ``verify.operations`` counters are left to the caller
    (:meth:`Instrumentation.record_verification` per result), which keeps
    the serial and parallel table paths symmetric.
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    jobs = jobs or default_jobs()
    for entry in entries:
        _require_registered(entry)
    obs = _obs_envelope(ins)
    tasks = [
        (entry.name, executions, operations, 0, obs) for entry in entries
    ]
    workers = _worker_count(jobs, len(tasks))
    _record_pool(ins, len(tasks), workers)
    if workers <= 1:
        outcomes = [_entry_worker(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_entry_worker, tasks))
    results: List[VerificationResult] = []
    for result, payload in outcomes:
        ins.absorb_worker(payload)
        results.append(result)
    return results
