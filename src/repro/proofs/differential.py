"""Differential testing against the sequential specification.

A baseline sanity check beneath RA-linearizability: when every update is
delivered everywhere *before* the next operation runs (total synchrony),
a CRDT must behave exactly like its sequential specification — there is no
concurrency for the conflict-resolution machinery to resolve.

``run_differential`` drives an entry's workload in lock-step against both
the replicated implementation (with ``deliver_all``/``sync_all`` after
every invocation) and the specification replayed as a reference object,
comparing every return value.
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import PreconditionViolation
from ..core.label import Label
from ..runtime.state_system import StateBasedSystem
from ..runtime.system import OpBasedSystem
from .registry import CRDTEntry


@dataclass
class DifferentialReport:
    """Outcome of one lock-step differential run."""

    entry_name: str
    operations: int = 0
    ok: bool = True
    mismatches: List[str] = field(default_factory=list)

    def record(self, message: str) -> None:
        self.ok = False
        if len(self.mismatches) < 5:
            self.mismatches.append(message)


def run_differential(
    entry: CRDTEntry,
    operations: int = 20,
    seed: int = 0,
    replicas=("r1", "r2", "r3"),
) -> DifferentialReport:
    """Lock-step compare the entry's CRDT against its specification."""
    rng = random.Random(seed)
    crdt = entry.make_crdt()
    spec = entry.make_spec()
    gamma = entry.make_gamma()
    workload = entry.make_workload()
    report = DifferentialReport(entry.name)

    if entry.kind == "OB":
        system = OpBasedSystem(crdt, replicas=replicas)
        synchronize = system.deliver_all
    else:
        system = StateBasedSystem(crdt, replicas=replicas)
        synchronize = system.sync_all

    spec_sequence: List[Label] = []
    while report.operations < operations:
        replica = rng.choice(list(replicas))
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            label = system.invoke(replica, method, args)
        except PreconditionViolation:
            continue
        synchronize()
        report.operations += 1

        images = gamma.rewrite(label) if gamma else (label,)
        candidate = spec_sequence + list(images)
        if not spec.replay(candidate):
            report.record(
                f"step {report.operations}: spec rejects "
                f"{label!r} after a synchronous prefix"
            )
            continue
        spec_sequence = candidate
    return report
