"""Mutant CRDTs — deliberately broken implementations.

The harness's value lies in *rejecting* wrong implementations, not only in
blessing right ones.  Each mutant here plants a classic CRDT bug; the tests
and the mutation benchmark show that at least one proof obligation
(Commutativity, Refinement, Prop1–Prop6, convergence, or the end-to-end
RA-linearization check) catches every mutant on small random executions.

Mutants:

* :class:`LastDeliveryWinsRegister` — a "LWW" register whose write effector
  ignores timestamps and overwrites unconditionally: concurrent writes
  don't commute, replicas diverge.
* :class:`EagerRemoveORSet` — an OR-Set whose remove effector erases *all*
  instances of the element at the applying replica (not just the observed
  pairs): the effector depends on the receiving state and races with
  concurrent adds.
* :class:`AscendingRGA` — RGA whose traversal orders siblings by
  *ascending* timestamp: convergent, but reads contradict the
  timestamp-order linearization (Refinement_ts and the TO check fail).
* :class:`DroppingRGA` — RGA whose remove physically deletes tree nodes:
  a concurrent ``addAfter`` under the removed element loses its subtree on
  one delivery order and keeps it on the other.
* :class:`SummingPNCounter` — a PN-Counter whose merge *adds* vectors
  instead of taking the pointwise max: merge is not idempotent
  (Prop4/fold oracle fail) and duplicated messages double-count.
* :class:`KeepAllMVRegister` — an MVR whose merge keeps dominated pairs:
  overwritten values resurface in reads (Refinement/EO check fail).
"""

from typing import Any, Dict, Tuple

from ..core.label import Label
from ..core.sentinels import ROOT
from ..crdts.base import Effector, GeneratorResult
from ..crdts.opbased.lww_register import OpLWWRegister
from ..crdts.opbased.or_set import OpORSet
from ..crdts.opbased.rga import OpRGA, State as RGAState
from ..crdts.statebased.counters import SBPNCounter, _join
from ..crdts.statebased.mv_register import SBMVRegister
from ..core.freeze import FrozenDict


class LastDeliveryWinsRegister(OpLWWRegister):
    """Mutant: the write effector ignores the timestamp comparison."""

    type_name = "mutant:last-delivery-wins-register"

    def apply_effector(self, state, effector: Effector):
        value, ts = effector.args
        return (value, ts)  # unconditional overwrite


class EagerRemoveORSet(OpORSet):
    """Mutant: remove erases every instance present at the receiver."""

    type_name = "mutant:eager-remove-orset"

    def generator(self, state, method, args, ts) -> GeneratorResult:
        if method == "remove":
            (element,) = args
            observed = frozenset(p for p in state if p[0] == element)
            return GeneratorResult(
                ret=observed, effector=Effector("purge", (element,))
            )
        return super().generator(state, method, args, ts)

    def apply_effector(self, state, effector: Effector):
        if effector.method == "purge":
            (element,) = effector.args
            return frozenset(p for p in state if p[0] != element)
        return super().apply_effector(state, effector)


class AscendingRGA(OpRGA):
    """Mutant: read traverses siblings in ascending timestamp order."""

    type_name = "mutant:ascending-rga"

    def generator(self, state, method, args, ts) -> GeneratorResult:
        if method == "read":
            nodes, tombs = state
            return GeneratorResult(
                ret=_traverse_ascending(nodes, tombs), effector=None
            )
        return super().generator(state, method, args, ts)


def _traverse_ascending(nodes, tombs) -> Tuple[Any, ...]:
    children: Dict[Any, list] = {}
    for parent, ts, elem in nodes:
        children.setdefault(parent, []).append((ts, elem))
    for siblings in children.values():
        siblings.sort(key=lambda pair: (pair[0].counter, pair[0].replica))

    output = []

    def visit(elem):
        if elem != ROOT and elem not in tombs:
            output.append(elem)
        for _, child in children.get(elem, ()):
            visit(child)

    visit(ROOT)
    return tuple(output)


class DroppingRGA(OpRGA):
    """Mutant: remove deletes the node (and strands its subtree)."""

    type_name = "mutant:dropping-rga"

    def apply_effector(self, state: RGAState, effector: Effector) -> RGAState:
        if effector.method == "remove":
            nodes, tombs = state
            (value,) = effector.args
            return (
                frozenset(n for n in nodes if n[2] != value),
                tombs,
            )
        return super().apply_effector(state, effector)


class SummingPNCounter(SBPNCounter):
    """Mutant: merge sums vectors instead of joining them."""

    type_name = "mutant:summing-pn-counter"

    def merge(self, state1, state2):
        def add(v1, v2):
            merged = dict(v1)
            for replica, count in v2.items():
                merged[replica] = merged.get(replica, 0) + count
            return FrozenDict(merged)

        return (add(state1[0], state2[0]), add(state1[1], state2[1]))


class KeepAllMVRegister(SBMVRegister):
    """Mutant: merge keeps dominated (overwritten) pairs."""

    type_name = "mutant:keep-all-mv-register"

    def merge(self, state1, state2):
        return frozenset(state1 | state2)


def verify_mutant(
    make_crdt, base_entry_name: str, executions: int = 10,
    operations: int = 12,
):
    """Run the full harness with a mutant substituted for the real CRDT.

    Returns the :class:`~repro.proofs.report.VerificationResult`; a caught
    mutant has ``verified == False`` with the failing obligations recorded.
    """
    from dataclasses import replace

    from .registry import entry_by_name
    from .report import verify_entry

    base = entry_by_name(base_entry_name)
    entry = replace(
        base,
        name=f"mutant of {base.name}",
        make_crdt=make_crdt,
        in_figure_12=False,
    )
    return verify_entry(entry, executions=executions, operations=operations)


def mutant_catalogue():
    """(name, make_crdt, base entry name) for the mutation benchmark."""
    return [
        ("last-delivery-wins register", LastDeliveryWinsRegister,
         "LWW-Register"),
        ("eager-remove OR-Set", EagerRemoveORSet, "OR-Set"),
        ("ascending-sibling RGA", AscendingRGA, "RGA"),
        ("node-dropping RGA", DroppingRGA, "RGA"),
        ("vector-summing PN-Counter", SummingPNCounter, "PN-Counter"),
        ("keep-dominated MV-Register", KeepAllMVRegister,
         "Multi-Value Reg."),
    ]
