"""Chaos soak: every registry CRDT under an explicit, replayable adversary.

A chaos run drives one catalogue entry — op-based through
:class:`~repro.runtime.faults.UnreliableCausalBroadcast`, state-based
through :class:`~repro.runtime.faults.LossyGossipDriver` — against a
:class:`~repro.runtime.faults.FaultPlan`, interleaving workload
invocations with adversarial delivery, then quiesces, closes with a read
at every replica, and checks:

* the entry-appropriate **RA-linearizability** verdict (execution-order
  or timestamp-order candidate, per the entry's Fig. 12 class), and
* the **convergence oracle** (replicas with equal visible sets agree).

Everything the adversary did lands in an
:class:`~repro.runtime.faults.AdversaryTrace` that replays bit-for-bit
from ``(entry, seed, plan, operations)``; :func:`dump_trace` /
:func:`replay_trace` ship failing runs around as JSON.  Metrics flow
through the PR-3 :class:`~repro.obs.Instrumentation` handle as
``chaos.*`` instruments.
"""

import io
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.convergence import check_convergence
from ..core.errors import PreconditionViolation
from ..core.ralin import RACheckContext
from ..obs import Instrumentation, NULL_INSTRUMENTATION, ProgressMonitor
from ..runtime.faults import (
    AdversaryTrace,
    CrashSpec,
    FaultPlan,
    LossyGossipDriver,
    PartitionWindow,
    TRACE_SCHEMA,
    UnreliableCausalBroadcast,
)
from ..runtime.state_system import StateBasedSystem
from ..runtime.system import OpBasedSystem
from .registry import ALL_ENTRIES, CRDTEntry, entry_by_name

DEFAULT_REPLICAS = ("r1", "r2", "r3")


def default_plans(replicas: Sequence[str] = DEFAULT_REPLICAS) -> List[FaultPlan]:
    """The standard soak plans: baseline chaos, heavy loss, a partition
    window, and a replica crash+recovery."""
    second = replicas[1] if len(replicas) > 1 else replicas[0]
    rest = tuple(r for r in replicas if r != second)
    return [
        FaultPlan(
            name="baseline",
            drop_probability=0.25,
            duplicate_probability=0.25,
            delay_probability=0.15,
            stale_probability=0.25,
        ),
        FaultPlan(
            name="high-loss",
            drop_probability=0.9,
            duplicate_probability=0.1,
            stale_probability=0.3,
        ),
        FaultPlan(
            name="partition",
            drop_probability=0.1,
            duplicate_probability=0.2,
            stale_probability=0.2,
            partitions=(PartitionWindow(4, 18, ((second,), rest)),),
        ),
        FaultPlan(
            name="crash",
            drop_probability=0.2,
            duplicate_probability=0.2,
            delay_probability=0.1,
            stale_probability=0.2,
            crashes=(CrashSpec(second, at_step=6, recover_step=22),),
        ),
    ]


def plan_by_name(name: str,
                 replicas: Sequence[str] = DEFAULT_REPLICAS) -> FaultPlan:
    for plan in default_plans(replicas):
        if plan.name == name:
            return plan
    raise KeyError(name)


@dataclass
class ChaosReport:
    """Outcome of one chaos run: verdicts plus the replayable trace."""

    entry_name: str
    kind: str
    lin_class: str
    seed: int
    plan: FaultPlan
    operations: int
    ra_ok: bool
    converged: bool
    reason: str
    trace: AdversaryTrace
    network_stats: Any = None
    offenders: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.ra_ok and self.converged


def _run_op_chaos(
    entry: CRDTEntry,
    system: OpBasedSystem,
    plan: FaultPlan,
    seed: int,
    operations: int,
    trace: AdversaryTrace,
) -> UnreliableCausalBroadcast:
    network = UnreliableCausalBroadcast(
        system, seed=seed, plan=plan, trace=trace
    )
    rng = random.Random(f"chaos-ops-{seed}")
    workload = entry.make_workload()
    issued = 0
    stalled = 0
    while issued < operations:
        network.tick()
        network.broadcast_new()
        alive = [
            r for r in system.replicas
            if not plan.crashed(network.step, r)
        ]
        if not alive:
            stalled += 1
            if stalled > 10000:
                raise RuntimeError("every replica is crashed forever")
            continue
        if rng.random() < 0.5:
            network.deliver_one()
            continue
        replica = rng.choice(alive)
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
        except PreconditionViolation:
            continue
        issued += 1
        trace.record(network.step, "invoke", replica,
                     len(system.generation_order) - 1)
    network.run_to_quiescence()
    for replica in system.replicas:
        system.invoke(replica, "read", ())
        trace.record(network.step, "invoke", replica,
                     len(system.generation_order) - 1)
    network.run_to_quiescence()
    return network


def _run_state_chaos(
    entry: CRDTEntry,
    system: StateBasedSystem,
    plan: FaultPlan,
    seed: int,
    operations: int,
    trace: AdversaryTrace,
) -> LossyGossipDriver:
    driver = LossyGossipDriver(system, seed=seed, plan=plan, trace=trace)
    rng = random.Random(f"chaos-ops-{seed}")
    workload = entry.make_workload()
    issued = 0
    stalled = 0
    while issued < operations:
        driver.tick()
        alive = [
            r for r in system.replicas
            if not plan.crashed(driver.step, r)
        ]
        if not alive:
            stalled += 1
            if stalled > 10000:
                raise RuntimeError("every replica is crashed forever")
            continue
        if rng.random() < 0.5:
            driver.gossip_once()
            continue
        replica = rng.choice(alive)
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
        except PreconditionViolation:
            continue
        issued += 1
        trace.record(driver.step, "invoke", replica,
                     len(system.generation_order) - 1)
    driver.run_to_quiescence()
    for replica in system.replicas:
        system.invoke(replica, "read", ())
        trace.record(driver.step, "invoke", replica,
                     len(system.generation_order) - 1)
    driver.run_to_quiescence()
    return driver


def run_chaos(
    entry: CRDTEntry,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    operations: Optional[int] = None,
    replicas: Sequence[str] = DEFAULT_REPLICAS,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> ChaosReport:
    """One deterministic chaos run over ``entry``; see the module docs.

    The run — workload choices, adversary decisions, verdicts — is a
    pure function of ``(entry, seed, plan, operations, replicas)``.
    """
    if plan is None:
        plan = default_plans(replicas)[0]
    if operations is None:
        operations = entry.chaos_operations
    trace = AdversaryTrace(seed=seed, plan=plan)
    with instrumentation.span("chaos.run", entry=entry.name, plan=plan.name):
        if entry.kind == "OB":
            system: Union[OpBasedSystem, StateBasedSystem] = OpBasedSystem(
                entry.make_crdt(), replicas
            )
            driver = _run_op_chaos(
                entry, system, plan, seed, operations, trace
            )
        else:
            system = StateBasedSystem(entry.make_crdt(), replicas)
            driver = _run_state_chaos(
                entry, system, plan, seed, operations, trace
            )
        context = RACheckContext(
            entry.make_spec(), entry.make_gamma(), entry.lin_class
        )
        outcome = context.check(system.history(), system.generation_order)
        converged, offenders = check_convergence(system.replica_views())
    report = ChaosReport(
        entry_name=entry.name,
        kind=entry.kind,
        lin_class=entry.lin_class,
        seed=seed,
        plan=plan,
        operations=len(system.generation_order),
        ra_ok=outcome.ok,
        converged=converged,
        reason=outcome.reason if not outcome.ok else (
            f"divergent replicas {offenders}" if not converged else ""
        ),
        trace=trace,
        network_stats=driver.stats,
        offenders=list(offenders),
    )
    for crash in plan.crashes:
        instrumentation.journal_event(
            "chaos.crash", entry=entry.name, plan=plan.name, seed=seed,
            replica=crash.replica, at_step=crash.at_step,
            recover_step=crash.recover_step,
        )
    instrumentation.record_chaos(report)
    return report


def chaos_soak(
    entries: Sequence[CRDTEntry] = ALL_ENTRIES,
    plans: Optional[Sequence[FaultPlan]] = None,
    soak: int = 1,
    base_seed: int = 0,
    operations: Optional[int] = None,
    replicas: Sequence[str] = DEFAULT_REPLICAS,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    progress: Optional[float] = None,
    progress_stream: Optional[Any] = None,
    heartbeat_log: Optional[str] = None,
) -> List[ChaosReport]:
    """Run every (entry, plan, seed) combination: ``soak`` seeds each.

    ``progress`` renders a live heartbeat line after each run (the soak
    is serial, so the soak loop itself is the beat source);
    ``heartbeat_log`` appends the records to a JSONL artifact.  Both are
    presentation only.
    """
    if plans is None:
        plans = default_plans(replicas)
    monitor = None
    if progress is not None or heartbeat_log is not None:
        monitor = ProgressMonitor(
            interval=progress,
            stream=(progress_stream if progress is not None
                    else io.StringIO()),
            log_path=heartbeat_log,
        )
    total = len(entries) * len(plans) * soak
    done = 0
    total_operations = 0
    reports = []
    try:
        for entry in entries:
            for plan in plans:
                for offset in range(soak):
                    report = run_chaos(
                        entry, seed=base_seed + offset, plan=plan,
                        operations=operations, replicas=replicas,
                        instrumentation=instrumentation,
                    )
                    reports.append(report)
                    done += 1
                    total_operations += report.operations
                    if monitor is not None:
                        monitor.ingest({
                            "wall": time.time(),
                            "worker": "soak",
                            "task": f"{entry.name}/{plan.name}"
                                    f"#{base_seed + offset}",
                            "configs": total_operations,
                            "configs_per_sec": None,
                            "frontier": None,
                            "queue": total - done,
                            "dedup_ratio": None,
                            "spill": None,
                            "pstate_ratio": None,
                        })
    finally:
        if monitor is not None:
            monitor.close()
    return reports


def format_chaos(reports: Sequence[ChaosReport],
                 title: Optional[str] = None) -> str:
    """Render chaos reports as a table, failures listed below."""
    header = (
        f"{'CRDT':<18} {'plan':<10} {'seed':>4} {'ops':>4} {'events':>7} "
        f"{'RA':<4} {'conv':<5} verdict"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    failures = []
    for report in reports:
        lines.append(
            f"{report.entry_name:<18} {report.plan.name:<10} "
            f"{report.seed:>4} {report.operations:>4} "
            f"{len(report.trace.events):>7} "
            f"{'ok' if report.ra_ok else 'NO':<4} "
            f"{'ok' if report.converged else 'NO':<5} "
            f"{'ok' if report.ok else 'FAIL'}"
        )
        if not report.ok:
            failures.append(
                f"  {report.entry_name} [{report.plan.name} seed "
                f"{report.seed}]: {report.reason}"
            )
    if failures:
        lines.append("")
        lines.append("failures:")
        lines.extend(failures)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace dump / replay
# ----------------------------------------------------------------------


def trace_document(report: ChaosReport) -> Dict[str, Any]:
    """The JSON document a dumped chaos trace ships as."""
    document = {
        "schema": TRACE_SCHEMA,
        "entry": report.entry_name,
        "operations_requested": None,  # filled by dump_trace callers
        "ra_ok": report.ra_ok,
        "converged": report.converged,
        "reason": report.reason,
    }
    document.update(report.trace.to_dict())
    return document


def dump_trace(report: ChaosReport, path: str,
               operations: Optional[int] = None) -> Dict[str, Any]:
    """Write ``report``'s trace (plus verdicts) to ``path`` as JSON.

    ``operations`` is the *requested* operation budget of the run (the
    registry default when None), recorded so :func:`replay_trace` can
    re-run with identical inputs.
    """
    document = trace_document(report)
    document["operations_requested"] = operations
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


@dataclass
class ReplayResult:
    """Outcome of replaying a dumped trace against a fresh run."""

    report: ChaosReport
    trace_matches: bool
    verdict_matches: bool

    @property
    def ok(self) -> bool:
        return self.trace_matches and self.verdict_matches


def replay_trace(
    source: Union[str, Mapping[str, Any]],
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> ReplayResult:
    """Re-run a dumped chaos trace from its ``(seed, plan)`` and compare.

    ``trace_matches`` is the bit-for-bit determinism check (event-stream
    fingerprints agree); ``verdict_matches`` confirms the replay reaches
    the same RA-linearizability + convergence verdicts.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = dict(source)
    if document.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a chaos trace (schema {document.get('schema')!r})"
        )
    entry = entry_by_name(document["entry"])
    plan = FaultPlan.from_dict(document["plan"])
    report = run_chaos(
        entry,
        seed=document["seed"],
        plan=plan,
        operations=document.get("operations_requested"),
        instrumentation=instrumentation,
    )
    result = ReplayResult(
        report=report,
        trace_matches=report.trace.fingerprint() == document["fingerprint"],
        verdict_matches=(
            report.ra_ok == document["ra_ok"]
            and report.converged == document["converged"]
        ),
    )
    instrumentation.journal_event(
        "chaos.replay", entry=entry.name, plan=plan.name,
        seed=document["seed"], trace_matches=result.trace_matches,
        verdict_matches=result.verdict_matches,
    )
    return result


__all__ = [
    "ChaosReport",
    "ReplayResult",
    "chaos_soak",
    "default_plans",
    "dump_trace",
    "format_chaos",
    "plan_by_name",
    "replay_trace",
    "run_chaos",
    "trace_document",
]
