"""Appendix D proof methodology for state-based CRDTs.

Each state-based CRDT exposes a "local effector" decomposition
(``effector_args`` / ``apply_local``) and is classified as
uniquely-identified (D.3), cumulative (D.4), or idempotent (D.5).  This
module checks the corresponding properties on executions:

* **Prop1/Prop′1** — local effectors of concurrent operations (UNIQUE) or
  all operations (CUMULATIVE/IDEMPOTENT) commute.
* **Prop2/Prop′2** — merge/apply interchange under the P1/P2 predicate:
  ``merge(σ, apply(σ', arg)) = apply(merge(σ, σ'), arg)``.
* **Prop3/Prop′3** — ``merge(apply(σ, arg), apply(σ', arg)) =
  apply(merge(σ, σ'), arg)`` (P1-guarded for UNIQUE).
* **Prop4** — ``merge`` is commutative and ``merge(σ0, σ0) = σ0``.
* **Prop5** — the local effector reproduces the origin step:
  ``apply(σ, arg(ℓ)) = θ(σ, m, a)|state``.
* **Prop6** — (IDEMPOTENT only) applying a local effector twice equals once.
* **UNIQUE extras** — effector arguments are globally unique and their
  partial order is consistent with visibility (Lemma E.1).
* **Lemma D.1/D.2/D.3 oracle** — every local configuration's state equals
  the fold of the local effectors of its visible updates in linearization
  order.

Together with Refinement over the fold (handled by the registry's
end-to-end check), these imply RA-linearizability per Appendix D.
"""

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, List, Sequence, Set

from ..core.history import History
from ..core.label import Label
from ..crdts.base import EffectorClass, StateBasedCRDT
from ..runtime.state_system import StateBasedSystem


@dataclass
class StateBasedReport:
    """Outcome of the Appendix D property checks on one execution."""

    ok: bool = True
    violations: List[str] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)

    def record(self, message: str) -> None:
        self.ok = False
        self.violations.append(message)

    def bump(self, name: str) -> None:
        self.checks[name] = self.checks.get(name, 0) + 1


def collected_states(system: StateBasedSystem) -> List[Any]:
    """All states an execution exhibited: replica pre/post states and
    message payloads, deduplicated."""
    states: List[Any] = [system.crdt.initial_state()]
    for event in system.events:
        states.append(event[3])
        states.append(event[4])
    for message in system.messages:
        states.append(message.state)
    unique: List[Any] = []
    for state in states:
        if state not in unique:
            unique.append(state)
    return unique


def _update_labels(system: StateBasedSystem) -> List[Label]:
    crdt = system.crdt
    return [
        label for label in system.generation_order
        if crdt.effector_args(label) is not None
    ]


def check_properties(system: StateBasedSystem) -> StateBasedReport:
    """Check Prop1–Prop6 (as applicable) on one execution."""
    crdt: StateBasedCRDT = system.crdt
    report = StateBasedReport()
    states = collected_states(system)
    history = system.history()
    updates = _update_labels(system)
    args = {label: crdt.effector_args(label) for label in updates}

    _check_prop1(crdt, report, states, history, updates, args)
    _check_prop23(crdt, report, states, updates, args)
    _check_prop4(crdt, report, states)
    _check_prop5(crdt, report, system)
    if crdt.effector_class is EffectorClass.IDEMPOTENT:
        _check_prop6(crdt, report, states, updates, args)
    if crdt.effector_class is EffectorClass.UNIQUE:
        _check_unique_args(crdt, report, history, updates, args)
    return report


def _check_prop1(crdt, report, states, history, updates, args) -> None:
    unconditional = crdt.effector_class is not EffectorClass.UNIQUE
    for first, second in combinations(updates, 2):
        if not unconditional and not history.concurrent(first, second):
            continue
        for state in states:
            report.bump("prop1")
            one_two = crdt.apply_local(
                crdt.apply_local(state, args[first]), args[second]
            )
            two_one = crdt.apply_local(
                crdt.apply_local(state, args[second]), args[first]
            )
            if one_two != two_one:
                report.record(
                    f"Prop1: local effectors of {first!r}/{second!r} do not "
                    f"commute on {state!r}"
                )
                return


def _check_prop23(crdt, report, states, updates, args) -> None:
    for label in updates:
        arg = args[label]
        for state1 in states:
            for state2 in states:
                applicable = crdt.predicate_p(state1, arg) and \
                    crdt.predicate_p(state2, arg)
                merged = crdt.merge(state1, state2)
                if applicable:
                    report.bump("prop2")
                    left = crdt.merge(
                        state1, crdt.apply_local(state2, arg)
                    )
                    right = crdt.apply_local(merged, arg)
                    if left != right:
                        report.record(
                            f"Prop2 fails for {label!r} on "
                            f"({state1!r}, {state2!r})"
                        )
                        return
                if applicable or crdt.effector_class in (
                    EffectorClass.CUMULATIVE, EffectorClass.IDEMPOTENT
                ):
                    report.bump("prop3")
                    left = crdt.merge(
                        crdt.apply_local(state1, arg),
                        crdt.apply_local(state2, arg),
                    )
                    right = crdt.apply_local(merged, arg)
                    if left != right:
                        report.record(
                            f"Prop3 fails for {label!r} on "
                            f"({state1!r}, {state2!r})"
                        )
                        return


def _check_prop4(crdt, report, states) -> None:
    initial = crdt.initial_state()
    report.bump("prop4")
    if crdt.merge(initial, initial) != initial:
        report.record("Prop4: merge(σ0, σ0) ≠ σ0")
    for state1 in states:
        for state2 in states:
            report.bump("prop4")
            if crdt.merge(state1, state2) != crdt.merge(state2, state1):
                report.record(
                    f"Prop4: merge not commutative on ({state1!r}, {state2!r})"
                )
                return


def _check_prop5(crdt, report, system) -> None:
    for event in system.events:
        if event[0] != "op":
            continue
        _kind, _replica, label, pre, post = event
        arg = crdt.effector_args(label)
        report.bump("prop5")
        if arg is None:
            if pre != post:
                report.record(f"query {label!r} changed the state")
        elif crdt.apply_local(pre, arg) != post:
            report.record(
                f"Prop5: local effector of {label!r} does not reproduce θ"
            )


def _check_prop6(crdt, report, states, updates, args) -> None:
    for label in updates:
        arg = args[label]
        for state in states:
            report.bump("prop6")
            once = crdt.apply_local(state, arg)
            twice = crdt.apply_local(once, arg)
            if once != twice:
                report.record(
                    f"Prop6: local effector of {label!r} not idempotent "
                    f"on {state!r}"
                )
                return


def _check_unique_args(crdt, report, history, updates, args) -> None:
    values = list(args.values())
    report.bump("unique-args")
    if len(values) != len(set(values)):
        report.record("UNIQUE: effector arguments are not pairwise distinct")
    for first, second in combinations(updates, 2):
        if history.sees(first, second):
            report.bump("arg-order")
            if not crdt.arg_lt(args[first], args[second]):
                report.record(
                    f"UNIQUE: visibility {first!r} ≺ {second!r} not "
                    "reflected by the argument order"
                )
        elif history.sees(second, first):
            report.bump("arg-order")
            if not crdt.arg_lt(args[second], args[first]):
                report.record(
                    f"UNIQUE: visibility {second!r} ≺ {first!r} not "
                    "reflected by the argument order"
                )


def check_fold_oracle(
    system: StateBasedSystem,
    linearization: Sequence[Label],
) -> StateBasedReport:
    """Lemma D.1/D.2/D.3: every local configuration equals the fold of the
    local effectors of its visible updates in ``linearization`` order."""
    crdt = system.crdt
    report = StateBasedReport()
    position = {label: i for i, label in enumerate(linearization)}

    def fold(labels: Set[Label]) -> Any:
        present = sorted(
            (l for l in labels if crdt.effector_args(l) is not None),
            key=lambda l: position[l],
        )
        state = crdt.initial_state()
        for label in present:
            state = crdt.apply_local(state, crdt.effector_args(label))
        return state

    # Replay events to know each local configuration over time.
    seen: Dict[str, Set[Label]] = {r: set() for r in system.replicas}
    for event in system.events:
        kind, replica = event[0], event[1]
        if kind == "op":
            seen[replica].add(event[2])
        else:
            seen[replica] |= set(event[2].labels)
        report.bump("fold")
        expected = fold(seen[replica])
        if expected != event[4]:
            report.record(
                f"fold oracle: {replica} after {event[2]!r} is "
                f"{event[4]!r}, fold gives {expected!r}"
            )
            return report
    for message in system.messages:
        report.bump("fold")
        if fold(set(message.labels)) != message.state:
            report.record(
                f"fold oracle: message {message.msg_id} state diverges"
            )
            return report
    return report
