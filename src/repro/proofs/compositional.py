"""Compositional per-object verification of multi-object stores (Sec. 5).

A store of N named objects is a composition ``o1 ⊗ts … ⊗ts oN`` (shared
timestamp generator) or ``o1 ⊗ … ⊗ oN`` (independent generators).  The
monolithic route — explore every interleaving of the *product* store and
check each history against the composed specification — multiplies the
per-object state spaces together and is hopeless beyond two small objects.

Theorems 5.3/5.5 justify a decomposition in the style of Nagar &
Jagannathan's parameterized CRDT proofs: under ⊗ts the composed store is
RA-linearizable iff

(a) every *projection* of the history onto one object is RA-linearizable
    w.r.t. that object's specification — discharged here by running the
    existing exhaustive engine per object on the per-object programs; and
(b) the ⊗ts side condition holds: every fresh timestamp dominates the
    timestamps of all operations visible at the issuing replica
    *regardless of object*, which is what lets chosen per-object
    linearizations merge into one global witness
    (:func:`~repro.runtime.composition.combine_per_object`).  When the
    merge fails the offending cycle is exactly the Fig. 9/Fig. 10
    counterexample shape, and it is reported as such.

For stores that opt out of shared timestamps the rule is *unsound*
(Fig. 9/Fig. 10 are per-object linearizable but globally not), so
:func:`verify_store` falls back to the whole-store product exploration —
the same differential oracle the tests pit the compositional verdicts
against.
"""

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.history import History
from ..core.ralin import execution_order_check, timestamp_order_check
from ..core.rewriting import rewrite_history
from ..core.timestamp import BOTTOM
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from ..runtime.composition import (
    check_composed_ra_linearizable,
    combine_per_object,
    per_object_rewriting,
)
from ..runtime.explore_engine import ExploreStats
from ..runtime.schedule import explore_op_programs
from ..runtime.system import OpBasedSystem
from .exhaustive import ExhaustiveResult, exhaustive_verify, standard_programs
from .registry import ALL_ENTRIES, CRDTEntry

#: Per-replica store programs: ``(method, args, object_name)`` triples.
StoreProgram = Dict[str, List[Tuple]]

#: Product configurations sampled by the ⊗ts side-condition sweep.
SIDE_CONDITION_LIMIT = 25


# ----------------------------------------------------------------------
# Store specifications
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Store:
    """A named multi-object store: object name → registry entry."""

    objects: Tuple[Tuple[str, CRDTEntry], ...]
    shared_timestamps: bool = True

    @property
    def names(self) -> List[str]:
        return [name for name, _ in self.objects]

    def entry(self, name: str) -> CRDTEntry:
        for obj, entry in self.objects:
            if obj == name:
                return entry
        raise KeyError(name)

    def spec_string(self) -> str:
        """Canonical ``counter:2,or_set:1``-style rendering."""
        counts: Dict[str, int] = {}
        for _, entry in self.objects:
            key = _store_key_canonical(entry.name)
            counts[key] = counts.get(key, 0) + 1
        return ",".join(f"{key}:{count}" for key, count in counts.items())

    def describe(self) -> str:
        op = "⊗ts" if self.shared_timestamps else "⊗"
        return f" {op} ".join(
            f"{name}={entry.name}" for name, entry in self.objects
        )


def _store_key(name: str) -> str:
    """Lax matching key: ``"OR-Set"`` → ``orset`` (accepts ``or_set`` too)."""
    return re.sub(r"[^a-z0-9]+", "", name.lower())


def _store_key_canonical(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def parse_store_spec(
    spec: str, shared_timestamps: bool = True
) -> Store:
    """Parse ``"counter:2,orset:1"`` into a :class:`Store`.

    Each part is ``<entry>[:<count>]`` where ``<entry>`` names an op-based
    registry entry (laxly normalized, so ``orset`` and ``or_set`` both
    match ``OR-Set``).  Objects are named ``counter`` for a single
    instance and ``counter1``, ``counter2``, … for multiples.
    """
    entries = [e for e in ALL_ENTRIES if e.kind == "OB"]
    by_key = {_store_key(e.name): e for e in entries}
    objects: List[Tuple[str, CRDTEntry]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count_str = part.partition(":")
        key = _store_key(name)
        if key not in by_key:
            available = ", ".join(
                _store_key_canonical(e.name) for e in entries
            )
            raise ValueError(
                f"unknown store object {name!r}; available: {available}"
            )
        count = int(count_str) if count_str else 1
        if count < 1:
            raise ValueError(f"object count must be >= 1 in {part!r}")
        entry = by_key[key]
        base = _store_key_canonical(entry.name)
        for index in range(1, count + 1):
            obj = base if count == 1 else f"{base}{index}"
            objects.append((obj, entry))
    if not objects:
        raise ValueError("store spec names no objects")
    return Store(tuple(objects), shared_timestamps=shared_timestamps)


def store_programs(
    store: Store, replicas: Sequence[str] = ("r1", "r2")
) -> StoreProgram:
    """Default conflict-heavy store programs: each object contributes its
    :func:`~repro.proofs.exhaustive.standard_programs` ops, tagged with the
    object name and concatenated per replica."""
    programs: StoreProgram = {r: [] for r in replicas}
    for obj, entry in store.objects:
        per_object = standard_programs(entry)
        for replica in replicas:
            for op in per_object.get(replica, []):
                method, args = op[0], op[1]
                programs[replica].append((method, args, obj))
    return programs


def project_programs(
    programs: StoreProgram, obj: str
) -> Dict[str, List[Tuple]]:
    """Restrict store programs to one object's ops (as 2-tuples)."""
    projected: Dict[str, List[Tuple]] = {}
    for replica, ops in programs.items():
        kept = [
            (op[0], op[1]) for op in ops
            if (op[2] if len(op) > 2 else None) == obj
        ]
        if kept:
            projected[replica] = kept
    return projected


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class CombineCounterexample:
    """A Fig. 9/Fig. 10-shaped failure: per-object linearizations exist
    but cannot merge into one global linearization."""

    labels: List[str]
    per_object_orders: Dict[str, List[str]]

    def describe(self) -> str:
        orders = "; ".join(
            f"{obj}: {' < '.join(order)}"
            for obj, order in sorted(self.per_object_orders.items())
        )
        return (
            "per-object linearizations cannot be combined "
            f"(Fig. 9/Fig. 10 cycle) — {orders}"
        )


@dataclass
class StoreResult:
    """Outcome of a multi-object store verification."""

    store: str
    mode: str                     # "compositional" | "product"
    ok: bool = True
    #: Per-object exhaustive results (compositional mode).
    objects: Dict[str, ExhaustiveResult] = field(default_factory=dict)
    side_condition_ok: bool = True
    #: Product configurations swept by the ⊗ts side-condition check.
    side_condition_checks: int = 0
    combine_failures: int = 0
    counterexample: Optional[CombineCounterexample] = None
    #: The whole-store product result (escape hatch / oracle mode).
    product: Optional[ExhaustiveResult] = None
    failures: List[str] = field(default_factory=list)
    configurations: int = 0
    wall_time: float = 0.0

    def record(self, message: str) -> None:
        self.ok = False
        if len(self.failures) < 10:
            self.failures.append(message)


# ----------------------------------------------------------------------
# Whole-store product exploration (escape hatch + differential oracle)
# ----------------------------------------------------------------------


def _store_ingredients(store: Store):
    specs = {obj: entry.make_spec() for obj, entry in store.objects}
    gammas = {obj: entry.make_gamma() for obj, entry in store.objects}
    return specs, gammas


def product_verify_store(
    store: Store,
    programs: Optional[StoreProgram] = None,
    max_configurations: Optional[int] = None,
    reduction: bool = True,
    por: str = "sleep",
    instrumentation: Optional[Instrumentation] = None,
) -> ExhaustiveResult:
    """Explore the whole product store and check every configuration.

    Every final configuration's history is checked against the composed
    specification (``Spec₁ ⊗ … ⊗ Specₙ``) with the per-object rewritings
    applied — the monolithic baseline the compositional rule replaces,
    kept as the escape hatch for non-⊗ts stores and as the differential
    oracle for the test suite.
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    programs = programs if programs is not None else store_programs(store)
    specs, gammas = _store_ingredients(store)
    replicas = tuple(programs)

    def make_system() -> OpBasedSystem:
        return OpBasedSystem(
            {obj: entry.make_crdt() for obj, entry in store.objects},
            replicas=replicas,
            shared_timestamps=store.shared_timestamps,
        )

    result = ExhaustiveResult(entry_name=f"store[{store.spec_string()}]")
    stats = ExploreStats()

    def visit(system: OpBasedSystem, returns) -> None:
        check = check_composed_ra_linearizable(
            system.history(), specs, gammas
        )
        if not check.ok:
            result.record(
                f"product configuration not RA-linearizable: {check.reason}"
            )

    started = time.perf_counter()
    result.configurations = explore_op_programs(
        make_system, programs, visit,
        max_configurations=max_configurations,
        reduction=reduction, stats=stats, por=por,
        instrumentation=ins,
    )
    stats.wall_time = time.perf_counter() - started
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# The ⊗ts side condition
# ----------------------------------------------------------------------


def timestamp_dominance_violation(
    history: History,
) -> Optional[Tuple[str, str]]:
    """Find a visible pair violating ⊗ts dominance, if any.

    Under the shared-timestamp discipline a fresh timestamp dominates the
    timestamp of every operation visible at the issuing replica, whatever
    object it belongs to; through the transitive closure that means
    ``a ≺vis b ⇒ ts(a) < ts(b)`` whenever both are real.
    """
    for src, dst in history.closure():
        if src.ts is BOTTOM or dst.ts is BOTTOM:
            continue
        if not src.ts < dst.ts:
            return (repr(src), repr(dst))
    return None


def _witness_merge(
    history: History, generation_order: Sequence, store: Store
) -> Tuple[bool, Optional[CombineCounterexample]]:
    """Try to merge per-object witness linearizations of ``history``.

    Per object, the projection is checked with the entry's *canonical*
    linearization class (EO execution order / TO timestamp order — the
    construction Theorems 5.3/5.5 merge, not an arbitrary search witness,
    which could fail to combine even for sound ⊗ts stores — that free
    choice is exactly Fig. 9's trap); :func:`combine_per_object` then
    merges the witnesses into a global linearization.  ``(True, None)``
    when a projection fails its own check — that failure belongs to
    phase (a), not the side condition.
    """
    specs, gammas = _store_ingredients(store)
    if any(g is not None for g in gammas.values()):
        rewritten = rewrite_history(history, per_object_rewriting(gammas))
    else:
        rewritten = history
    orders: Dict[str, Sequence] = {}
    for obj, entry in store.objects:
        projection = history.project(obj)
        if not projection.labels:
            continue
        per_object_generation = [
            label for label in generation_order if label.obj == obj
        ]
        checker = timestamp_order_check if entry.lin_class == "TO" \
            else execution_order_check
        check = checker(
            projection, specs[obj], per_object_generation,
            gamma=gammas[obj],
        )
        if not check.ok or check.update_order is None:
            return True, None
        orders[obj] = check.update_order
    if combine_per_object(rewritten, orders) is not None:
        return True, None
    return False, CombineCounterexample(
        labels=[
            repr(l)
            for l in sorted(rewritten.labels, key=lambda l: l.uid)
        ],
        per_object_orders={
            obj: [repr(l) for l in order] for obj, order in orders.items()
        },
    )


def check_side_condition(
    store: Store,
    programs: Optional[StoreProgram] = None,
    limit: int = SIDE_CONDITION_LIMIT,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[bool, int, int, Optional[CombineCounterexample], List[str]]:
    """Sweep a bounded sample of product executions for ⊗ts violations.

    Returns ``(ok, checks, combine_failures, counterexample, messages)``.
    Each sampled configuration is checked for (1) timestamp dominance over
    the closed visibility and (2) mergeability of the per-object witness
    linearizations.  For a store built by :func:`make_store_system` the
    sweep is a sanity check — ⊗ts guarantees both by construction — but it
    is what catches mislabelled stores (independent clocks passed off as
    shared) before the unsound per-object shortcut is trusted.
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    programs = programs if programs is not None else store_programs(store)
    replicas = tuple(programs)
    checks = 0
    combine_failures = 0
    counterexample: Optional[CombineCounterexample] = None
    messages: List[str] = []

    def make_system() -> OpBasedSystem:
        return OpBasedSystem(
            {obj: entry.make_crdt() for obj, entry in store.objects},
            replicas=replicas,
            shared_timestamps=store.shared_timestamps,
        )

    def visit(system: OpBasedSystem, returns) -> None:
        nonlocal checks, combine_failures, counterexample
        checks += 1
        history = system.history()
        violation = timestamp_dominance_violation(history)
        if violation is not None and len(messages) < 10:
            messages.append(
                "⊗ts dominance violated: "
                f"{violation[0]} visible to {violation[1]}"
            )
        merged_ok, cex = _witness_merge(
            history, list(system.generation_order), store
        )
        if not merged_ok:
            combine_failures += 1
            if counterexample is None:
                counterexample = cex
            if len(messages) < 10 and cex is not None:
                messages.append(cex.describe())

    with ins.span("compose.side_condition", store=store.spec_string(),
                  limit=limit):
        explore_op_programs(
            make_system, programs, visit, max_configurations=limit,
            instrumentation=ins,
        )
    return (not messages, checks, combine_failures, counterexample,
            messages)


# ----------------------------------------------------------------------
# The compositional proof rule
# ----------------------------------------------------------------------


def _object_groups(
    store: Store, programs: StoreProgram
) -> List[Tuple[CRDTEntry, Dict[str, List[Tuple]], List[str]]]:
    """Group objects by (entry, projected programs): identical objects
    share one per-object verification."""
    groups: Dict[Tuple, Tuple[CRDTEntry, Dict, List[str]]] = {}
    for obj, entry in store.objects:
        projected = project_programs(programs, obj)
        key = (
            entry.name,
            tuple(sorted(
                (replica, tuple(ops)) for replica, ops in projected.items()
            )),
        )
        if key in groups:
            groups[key][2].append(obj)
        else:
            groups[key] = (entry, projected, [obj])
    return list(groups.values())


def verify_store(
    store: Store,
    programs: Optional[StoreProgram] = None,
    jobs: int = 1,
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    steal: Optional[bool] = None,
    spill: Optional[str] = None,
    por: str = "sleep",
    side_condition_limit: int = SIDE_CONDITION_LIMIT,
    product_fallback: bool = True,
    max_configurations: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
    progress: Optional[float] = None,
    heartbeat_log: Optional[str] = None,
) -> StoreResult:
    """Verify a multi-object store with the compositional proof rule.

    ⊗ts stores are verified per object (phase a) plus the side-condition
    sweep (phase b): the existing exhaustive engine runs on each object's
    projected programs — sharded across the work pool with one task
    stream per object when ``jobs > 1`` — and a bounded sample of product
    executions is checked for timestamp dominance and witness
    mergeability.  Stores with independent generators (⊗) opt out of the
    rule's soundness premise, so they take the escape hatch (phase c):
    whole-store product exploration via :func:`product_verify_store`
    (disable with ``product_fallback=False`` to *force* the per-object
    rule, as the differential tests do when demonstrating unsoundness).
    """
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    programs = programs if programs is not None else store_programs(store)
    result = StoreResult(store=store.spec_string(), mode="compositional")
    started = time.perf_counter()

    if not store.shared_timestamps and product_fallback:
        result.mode = "product"
        product = product_verify_store(
            store, programs, max_configurations=max_configurations,
            por=por, instrumentation=ins,
        )
        result.product = product
        result.configurations = product.configurations
        if not product.ok:
            for message in product.failures:
                result.record(message)
        result.wall_time = time.perf_counter() - started
        if ins.enabled:
            ins.record_compose(result)
        return result

    # Phase (a): per-object exhaustive verification on projections.
    groups = _object_groups(store, programs)
    if jobs > 1 and len(groups) > 1:
        group_results = _verify_groups_parallel(
            groups, jobs=jobs, reduction=reduction, symmetry=symmetry,
            cache=cache, steal=steal, spill=spill, por=por,
            instrumentation=ins, progress=progress,
            heartbeat_log=heartbeat_log,
        )
    else:
        group_results = []
        for entry, projected, _ in groups:
            group_results.append(exhaustive_verify(
                entry, projected, reduction=reduction, symmetry=symmetry,
                cache=cache, jobs=jobs, steal=steal, spill=spill, por=por,
                instrumentation=ins,
            ))
    for (entry, projected, names), obj_result in zip(groups, group_results):
        for obj in names:
            result.objects[obj] = obj_result
        result.configurations += obj_result.configurations
        if not obj_result.ok:
            for message in obj_result.failures:
                result.record(f"object {names[0]} ({entry.name}): {message}")

    # Phase (b): the ⊗ts side condition on a bounded product sample.
    if side_condition_limit:
        ok, checks, combine_failures, counterexample, messages = \
            check_side_condition(
                store, programs, limit=side_condition_limit,
                instrumentation=ins,
            )
        result.side_condition_ok = ok
        result.side_condition_checks = checks
        result.combine_failures = combine_failures
        result.counterexample = counterexample
        if not ok:
            for message in messages:
                result.record(f"side condition: {message}")

    result.wall_time = time.perf_counter() - started
    if ins.enabled:
        ins.record_compose(result)
    return result


def _verify_groups_parallel(
    groups, jobs, reduction, symmetry, cache, steal, spill, por,
    instrumentation, progress, heartbeat_log,
) -> List[ExhaustiveResult]:
    """Run per-object scopes through the shared worker pool.

    One scope per object group — the steal pool turns each scope into its
    own task stream and merges deterministically (serial-identical
    results, as in the PR-6 fan-out).  ``verify_scopes_parallel`` keys its
    result table by entry name, so groups sharing an entry name (same
    CRDT, different programs) are split across sequential batches.
    """
    from .parallel import verify_scopes_parallel

    batches: List[List[int]] = []
    batch_names: List[set] = []
    for index, (entry, _, _) in enumerate(groups):
        for batch, names in zip(batches, batch_names):
            if entry.name not in names:
                batch.append(index)
                names.add(entry.name)
                break
        else:
            batches.append([index])
            batch_names.append({entry.name})
    results: List[Optional[ExhaustiveResult]] = [None] * len(groups)
    for batch in batches:
        scopes = [
            (groups[index][0], groups[index][1], None) for index in batch
        ]
        merged = verify_scopes_parallel(
            scopes, jobs=jobs, reduction=reduction, symmetry=symmetry,
            cache=cache, steal=steal, spill=spill, por=por,
            instrumentation=instrumentation, progress=progress,
            heartbeat_log=heartbeat_log,
        )
        for index in batch:
            results[index] = merged[groups[index][0].name]
    return [r for r in results if r is not None]


def composed_table_entry(
    store_spec: str = "counter:1,orset:1",
    instrumentation: Optional[Instrumentation] = None,
) -> "VerificationResult":
    """The composed row of the Fig. 12 table (``repro table``).

    Verifies a small fixed ⊗ts store with the compositional rule and
    renders the outcome in the table's row shape: ``executions`` counts
    explored configurations (per-object plus the side-condition sweep)
    and ``operations`` the store program length.
    """
    from .report import VerificationResult

    store = parse_store_spec(store_spec)
    programs = store_programs(store)
    result = verify_store(
        store, programs, instrumentation=instrumentation
    )
    return VerificationResult(
        name="Composed ⊗ts store",
        kind="OB",
        lin_class="⊗ts",
        executions=result.configurations + result.side_condition_checks,
        operations=sum(len(ops) for ops in programs.values()),
        ralin_ok=result.ok,
        failures=list(result.failures),
    )


def make_store_system(
    store: Store, replicas: Sequence[str] = ("r1", "r2", "r3")
) -> OpBasedSystem:
    """Instantiate the runtime system for a parsed store."""
    return OpBasedSystem(
        {obj: entry.make_crdt() for obj, entry in store.objects},
        replicas=replicas,
        shared_timestamps=store.shared_timestamps,
    )
