"""Workload-adequacy reporting.

A green harness run only means something if the workloads actually
*exercised* the behaviours the criterion is about: concurrent updates
(commutativity has nothing to check otherwise), conflicting operations on
the same element, query-update splits, partial-visibility reads.  This
module measures that, per entry, over a batch of randomized executions —
and the tests pin minimum adequacy levels so a future workload regression
cannot silently hollow out the harness.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.stats import history_stats
from ..runtime.schedule import random_op_execution, random_state_execution
from .registry import CRDTEntry


@dataclass
class CoverageReport:
    """Aggregate workload-adequacy measures for one entry."""

    entry_name: str
    executions: int = 0
    operations: int = 0
    queries: int = 0
    updates: int = 0
    concurrent_pairs: int = 0
    max_antichain: int = 0
    partial_visibility_queries: int = 0
    method_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def has_concurrency(self) -> bool:
        return self.concurrent_pairs > 0

    @property
    def has_partial_reads(self) -> bool:
        return self.partial_visibility_queries > 0


def measure_coverage(
    entry: CRDTEntry,
    executions: int = 10,
    operations: int = 10,
    base_seed: int = 0,
) -> CoverageReport:
    """Run the entry's workload and aggregate adequacy measures."""
    report = CoverageReport(entry.name)
    for run in range(executions):
        crdt = entry.make_crdt()
        workload = entry.make_workload()
        if entry.kind == "OB":
            system = random_op_execution(
                crdt, workload, operations=operations, seed=base_seed + run
            )
        else:
            system = random_state_execution(
                crdt, workload, operations=operations, seed=base_seed + run
            )
        history = system.history()
        spec = entry.make_spec()
        gamma = entry.make_gamma()
        from ..core.rewriting import rewrite_history

        rewritten = rewrite_history(history, gamma) if gamma else history
        stats = history_stats(rewritten, spec)

        report.executions += 1
        report.operations += len(system.generation_order)
        report.queries += stats.queries
        report.updates += stats.updates
        report.concurrent_pairs += stats.concurrent_pairs
        report.max_antichain = max(report.max_antichain, stats.max_antichain)

        updates = frozenset(
            l for l in rewritten.labels if spec.is_update(l)
        )
        for label in rewritten.labels:
            if spec.is_query(label):
                visible = rewritten.visible_to(label) & updates
                if visible != updates:
                    report.partial_visibility_queries += 1

        for label in system.generation_order:
            report.method_counts[label.method] = (
                report.method_counts.get(label.method, 0) + 1
            )
    return report


def format_coverage(reports: List[CoverageReport]) -> str:
    """Render coverage reports as an aligned text table."""
    header = (
        f"{'CRDT':<18} {'ops':>5} {'upd':>5} {'qry':>5} "
        f"{'conc.pairs':>10} {'antichain':>9} {'partial-reads':>13}"
    )
    lines = [header, "-" * len(header)]
    for rep in reports:
        lines.append(
            f"{rep.entry_name:<18} {rep.operations:>5} {rep.updates:>5} "
            f"{rep.queries:>5} {rep.concurrent_pairs:>10} "
            f"{rep.max_antichain:>9} {rep.partial_visibility_queries:>13}"
        )
    return "\n".join(lines)
