"""Commutativity checking (Sec. 4.1).

The property: for every two *concurrent* operations ``ℓ1 ▷◁vis ℓ2`` of an
execution, their effectors commute on every replica state —
``δ1(δ2(σ)) = δ2(δ1(σ))``.

The Boogie scripts of Sec. 6 discharge this deductively; here we check it on
a systematically sampled set of states.  The states that matter are those a
replica can be in *before* applying the pair — i.e. folds of the other
operations' effectors in an order consistent with visibility (Lemma 4.2).
For each concurrent pair we therefore test every generation-order prefix
fold with the pair's own effectors excluded (re-applying an effector to a
state that already contains it is outside the obligation and would be
meaningless for non-idempotent effectors such as Wooki's insert).
"""

from dataclasses import dataclass
from typing import Any, List, Sequence

from ..core.label import Label
from ..crdts.base import OpBasedCRDT
from ..runtime.system import OpBasedSystem


@dataclass
class CommutativityViolation:
    """A witnessed failure of effector commutativity."""

    first: Label
    second: Label
    state: Any

    def __str__(self) -> str:
        return (
            f"effectors of concurrent {self.first!r} and {self.second!r} "
            f"do not commute on state {self.state!r}"
        )


def _fold_states(
    system: OpBasedSystem,
    crdt: OpBasedCRDT,
    excluded: Sequence[Label] = (),
    required: Sequence[Label] = (),
) -> List[Any]:
    """Generation-order prefix-fold states, skipping ``excluded`` labels.

    Only prefixes containing every label in ``required`` contribute — a
    replica about to apply an effector has, by causal delivery, already
    applied everything visible to it, so smaller prefixes are unreachable
    pre-states for the pair under test.
    """
    skip = set(excluded)
    missing = {l for l in required if l not in skip}
    states: List[Any] = []
    current = crdt.initial_state()
    if not missing:
        states.append(current)
    for label in system.generation_order:
        if label in skip:
            continue
        missing.discard(label)
        effector = system.effector_of(label)
        if effector is None:
            continue
        current = crdt.apply_effector(current, effector)
        if not missing and current not in states:
            states.append(current)
    return states


def check_commutativity(
    system: OpBasedSystem,
    extra_states: Sequence[Any] = (),
) -> List[CommutativityViolation]:
    """Check effector commutativity for all concurrent pairs of an execution.

    Returns the (possibly empty) list of violations.  ``extra_states``
    extends the per-pair sampled state set (callers must ensure they make
    sense for the pair, e.g. hypothesis-generated pre-states).
    """
    (obj,) = system.objects
    crdt: OpBasedCRDT = system.objects[obj]
    history = system.history()

    violations: List[CommutativityViolation] = []
    for first, second in history.concurrent_pairs():
        eff1 = system.effector_of(first)
        eff2 = system.effector_of(second)
        if eff1 is None or eff2 is None:
            continue
        required = history.visible_to(first) | history.visible_to(second)
        # Exclude the pair and everything causally after it: a replica
        # cannot have applied a successor of ℓ before ℓ itself.
        excluded = (
            {first, second}
            | history.visibly_after(first)
            | history.visibly_after(second)
        )
        test_states = _fold_states(
            system, crdt, excluded=excluded, required=required
        )
        test_states.extend(extra_states)
        for state in test_states:
            one_two = crdt.apply_effector(
                crdt.apply_effector(state, eff1), eff2
            )
            two_one = crdt.apply_effector(
                crdt.apply_effector(state, eff2), eff1
            )
            if one_two != two_one:
                violations.append(
                    CommutativityViolation(first, second, state)
                )
                break
    return violations


def sampled_states(system: OpBasedSystem) -> List[Any]:
    """The full generation-order fold states plus final replica states.

    General-purpose reachable-state sample (used by tests); per-pair
    commutativity uses :func:`_fold_states` with the pair excluded instead.
    """
    (obj,) = system.objects
    crdt = system.objects[obj]
    states = _fold_states(system, crdt, ())
    for replica in system.replicas:
        state = system.state(replica, obj)
        if state not in states:
            states.append(state)
    return states
