"""Work-stealing parallel exhaustive verification.

The static frontier split (:mod:`repro.proofs.parallel`) carves the
search at the DFS *root*: one task per root branch, fixed up front.  On
skewed scopes — symmetric programs where orbit filtering leaves one huge
representative branch, or asymmetric programs where one replica's
subtree dwarfs the rest — most workers finish early and idle while a
single straggler explores the bulk of the tree.

This module replaces the static carve with a **work-stealing pool**:

* Workers pull ``(root-branch | replayed-path, sleep-set)`` tasks from a
  shared :class:`multiprocessing.Queue`.  The initial tasks are exactly
  the static root branches (orbit-filtered under symmetry, seeds
  preserved), so a run that never splits degenerates to the static
  fan-out.
* A worker whose DFS notices the pool is hungry — idle workers, or a
  task queue below its pending target — *splits*: an unexplored sibling
  subtree is handed back to the queue as a ``(path from root, inherited
  sleep set)`` task instead of being explored locally (see
  ``_Engine._dfs`` and ``_Engine._run_path`` in
  :mod:`repro.runtime.explore_engine`).  Test-apply keeps serial
  semantics: the spawned task carries exactly the sleep seeds the serial
  DFS would have descended with.
* Each worker keeps one engine *session* per scope (domain, visited and
  expanded records, verdict caches) across all its tasks, so dedup warms
  up like a serial run's; sessions intern fingerprints as fixed-width
  digests through a :class:`~repro.runtime.fp_store.FingerprintStore`
  (optionally disk-spilled), and the deterministic merge unions the
  digest sets exactly as the static path unions raw fingerprints.

Determinism: the merged verdicts, distinct-configuration counts, and
additive metrics are identical to the serial engine's — stealing only
re-partitions *which worker* explores a subtree, never *whether* it is
explored (workers' visited records are local, so a subtree is at worst
re-explored, never skipped).  ``max_configurations`` becomes a shared
cross-worker budget (:class:`_SharedBudget`) whose three-valued claim
protocol guarantees the merged count stops at exactly the serial cap.

Termination uses an id-accounting protocol rather than queue draining:
every task has an id, every ack names the ids it spawned, and the
coordinator is done when the acked set equals the expected set (seeds
plus all spawned ids) — robust to acks arriving before their parent's
ack registers them.
"""

import io
import multiprocessing as mp
import os
import queue
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.heartbeat import HeartbeatEmitter
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from ..obs.progress import ProgressMonitor
from ..runtime.explore_engine import ExploreStats, build_engine
from ..runtime.fp_store import FingerprintStore
from ..runtime.pstate import MapTier, SetTier
from ..runtime.schedule import Program
from ..runtime.state_system import StateBasedSystem
from ..runtime.system import OpBasedSystem
from .exhaustive import (
    ExhaustiveResult,
    _make_visit,
    exhaustive_verify,
    exhaustive_verify_state,
)
from .registry import CRDTEntry, entry_by_name

#: Stealing on by default in the parallel paths (``--no-steal`` reverts
#: to the static root-branch fan-out).
STEAL_DEFAULT = True

#: A worker considers splitting on every Nth eligible DFS node — the
#: tick gate keeps the qsize/idle probes off the per-node hot path.
SPLIT_INTERVAL = 4


@dataclass
class StealStats:
    """Scheduler counters for one work-stealing pool run.

    ``timeline`` holds one ``(task_id, parent_id, scope_index, start,
    end)`` record per executed task and ``spawn_times`` maps a stolen
    task's id to the moment it was offloaded, both on
    ``time.perf_counter`` clocks; with one worker the timeline is a
    faithful serialization of the task DAG, which the bench suite
    replays through a list-scheduling simulator to model multi-worker
    makespan on machines without enough cores to measure it directly.
    """

    workers: int = 0
    seed_tasks: int = 0
    tasks: int = 0
    stolen_tasks: int = 0
    idle_seconds: float = 0.0
    wall_time: float = 0.0
    timeline: List[Tuple] = field(default_factory=list)
    spawn_times: Dict[Tuple, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "seed_tasks": self.seed_tasks,
            "tasks": self.tasks,
            "stolen_tasks": self.stolen_tasks,
            "idle_seconds": self.idle_seconds,
            "wall_time": self.wall_time,
        }


class _SharedBudget:
    """Exact cross-worker ``max_configurations`` cutoff.

    ``claim(fp)`` is three-valued (the engine's ``_report`` contract):

    * ``1`` — ``fp`` is newly claimed and counts against the cap; the
      claiming worker records and checks it.
    * ``0`` — another worker already claimed ``fp``; the caller keeps it
      in its local visited set (the merged union still counts it once)
      but does not re-check it.
    * ``-1`` — the cap was reached before this configuration; it must
      NOT enter any visited set, or the merged union would exceed the
      cap.

    The claimed set is the *merged* visited set by construction, so the
    merged count equals ``min(cap, serial distinct count)`` — exactly
    where the serial engine stops.
    """

    def __init__(self, cap: int, manager) -> None:
        self.cap = cap
        self._claimed = manager.dict()
        self._count = mp.Value("i", 0, lock=False)
        self._flag = mp.Value("b", 0, lock=False)
        self._lock = mp.Lock()

    def claim(self, fp: Any) -> int:
        with self._lock:
            if self._flag.value:
                return -1 if fp not in self._claimed else 0
            if fp in self._claimed:
                return 0
            if self._count.value >= self.cap:
                self._flag.value = 1
                return -1
            self._claimed[fp] = True
            self._count.value += 1
            if self._count.value >= self.cap:
                self._flag.value = 1
            return 1

    def exhausted(self) -> bool:
        # Lock-free flag read: the engine polls this per DFS node, and a
        # stale False only delays the stop by one claim round-trip.
        return bool(self._flag.value)


class _WorkerScheduler:
    """The engine-facing split hook of one worker.

    ``should_split`` fires when the pool looks hungry: an idle worker
    (the shared ``idle`` counter) or a task queue below
    ``pending_target``.  ``offload`` assigns the spawned task an id
    namespaced by this worker (``("w", worker_id, seq)``) so ids are
    unique without coordination, and records it for the parent task's
    ack.
    """

    def __init__(self, worker_id: int, task_q, idle,
                 pending_target: int, split_interval: int) -> None:
        self.worker_id = worker_id
        self.task_q = task_q
        self.idle = idle
        self.pending_target = pending_target
        self.split_interval = max(1, split_interval)
        self.spawn_times: Dict[Tuple, float] = {}
        self.spawned: List[Tuple] = []
        self.current_task: Optional[Tuple] = None
        self.scope_index: Optional[int] = None
        self._seq = 0
        self._tick = 0
        self._qsize_ok = True

    def begin_task(self, task_id: Tuple, scope_index: int) -> None:
        self.current_task = task_id
        self.scope_index = scope_index
        self.spawned = []

    def should_split(self, depth: int) -> bool:
        self._tick += 1
        if self._tick % self.split_interval:
            return False
        if self.idle.value > 0:
            return True
        if self._qsize_ok:
            try:
                return self.task_q.qsize() < self.pending_target
            except NotImplementedError:  # macOS has no sem_getvalue
                self._qsize_ok = False
        return False

    def offload(self, path: Sequence[Tuple], sleep: Any,
                frames: Optional[Tuple] = None,
                guide: Optional[Dict] = None) -> None:
        # ``frames`` (source/optimal DPOR only) carries the victim's
        # per-prefix-node sleep sets so the thief can process race
        # reversals that land on the replayed prefix; sleep-mode offloads
        # stay 2-argument.  ``guide`` (optimal only) is the stolen
        # candidate's pending wakeup subtree — nested transition dicts,
        # plain picklable data — so the thief replays the identical
        # demanded schedule below the replayed prefix.
        self._seq += 1
        task_id = ("w", self.worker_id, self._seq)
        self.spawn_times[task_id] = time.perf_counter()
        self.spawned.append(task_id)
        self.task_q.put(
            (task_id, self.current_task, self.scope_index, None,
             tuple(path), frozenset(sleep),
             tuple(frames) if frames is not None else None, guide)
        )


def _take(task_q, idle, stop, idle_box: List[float]):
    """Pull the next task; count the blocking wait as idle time.

    Returns ``None`` on the coordinator's sentinel or when ``stop`` is
    set (error abort).  The shared ``idle`` counter is raised only while
    actually blocked, so busy workers see an accurate hunger signal.
    """
    try:
        return task_q.get_nowait()
    except queue.Empty:
        pass
    started = time.perf_counter()
    with idle.get_lock():
        idle.value += 1
    try:
        while not stop.is_set():
            try:
                return task_q.get(timeout=0.02)
            except queue.Empty:
                continue
        return None
    finally:
        with idle.get_lock():
            idle.value -= 1
        idle_box[0] += time.perf_counter() - started


#: One scope's picklable build spec: ``(entry name, programs,
#: max_gossips, reduction, symmetry, cache, por)``.
_ScopeSpec = Tuple[str, Dict[str, Program], Optional[int], Optional[bool],
                   Optional[bool], bool, str]


class _Session:
    """One worker's persistent engine session for one scope.

    Created lazily on the first task of the scope and reused for every
    later one: the domain, visited/expanded records, fingerprint store
    and verdict caches all persist, so a worker that ends up with many
    tasks of one scope pays the serial run's cache economics.  Local
    visited records mean a subtree already explored by *another* worker
    may be re-explored here — wasted work, never missed work — which is
    why the merge unions fingerprint sets instead of summing counts.
    """

    def __init__(self, spec: _ScopeSpec, budget, scheduler,
                 spill_dir: Optional[str], use_fp_store: bool,
                 ins: Instrumentation,
                 heartbeat: Optional[HeartbeatEmitter] = None) -> None:
        name, programs, max_gossips, reduction, symmetry, cache, por = spec
        entry = entry_by_name(name)
        self.entry = entry
        self.result = ExhaustiveResult(name)
        self.stats = ExploreStats()
        self.result.stats = self.stats
        visit = _make_visit(entry, self.result, cache, ins)
        self.store: Optional[FingerprintStore] = (
            FingerprintStore(spill_dir=spill_dir) if use_fp_store else None
        )
        persistent = por in ("source", "optimal")
        # DPOR sessions back the visited/expanded tiers with persistent
        # hash tries: a session survives every task of its scope, and
        # each task extends a structurally-shared trie whose older roots
        # stay valid — the same O(delta) economics replica state already
        # gets from runtime.pstate.
        if self.store is not None:
            self.fps: Any = self.store.visited_set()
            expanded: Any = self.store.expanded_map()
        elif persistent:
            self.fps = SetTier()
            expanded = MapTier()
        else:
            self.fps = set()
            expanded = None
        if entry.kind == "OB":
            kind = "op"

            def make_system():
                return OpBasedSystem(entry.make_crdt(),
                                     replicas=sorted(programs),
                                     persistent=persistent)
        else:
            kind = "state"

            def make_system():
                return StateBasedSystem(entry.make_crdt(),
                                        replicas=sorted(programs),
                                        persistent=persistent)
        self.kind = kind
        self.engine = build_engine(
            kind, make_system, programs, visit,
            max_gossips=max_gossips or 0,
            reduction=entry.reduction if reduction is None else reduction,
            symmetry=entry.symmetry if symmetry is None else symmetry,
            stats=self.stats,
            fingerprints=self.fps,
            expanded=expanded,
            fp_store=self.store,
            scheduler=scheduler,
            budget=budget,
            por=por,
            profile=ins.profile,
            journal=ins.journal,
            heartbeat=heartbeat,
        )

    def run(self, branch: Optional[int], path: Optional[Tuple],
            sleep: Any, frames: Optional[Tuple] = None,
            guide: Optional[Dict] = None) -> None:
        self.engine.run(root_branch=branch, path=path,
                        sleep=frozenset(sleep) if sleep else frozenset(),
                        frames=frames, guide=guide)

    def harvest(self, scope_index: int, ins: Instrumentation):
        """Close out the session: ``(scope_index, result, fingerprints)``."""
        fps = set(self.fps)
        if self.store is not None:
            self.result.fp_store = self.store.stats
            if ins.enabled:
                ins.record_fp_store(self.store.stats, entry=self.entry.name)
                if self.store.stats.spilled:
                    ins.journal_event(
                        "spill.promote", entry=self.entry.name,
                        spilled=self.store.stats.spilled,
                        evictions=self.store.stats.evictions,
                    )
            self.store.close()
        if ins.enabled:
            ins.record_explore(self.stats, kind=self.kind,
                              entry=self.entry.name)
            if self.result.check_stats is not None:
                ins.record_check(self.result.check_stats,
                                 entry=self.entry.name)
        return scope_index, self.result, fps


def _steal_worker_main(worker_id: int, scope_table: List[_ScopeSpec],
                       task_q, ack_q, idle, stop, budget,
                       obs: Optional[Dict[str, Any]],
                       spill_dir: Optional[str], use_fp_store: bool,
                       pending_target: int, split_interval: int,
                       hb_q=None, hb_interval: Optional[float] = None) -> None:
    """One worker process: pull, explore (splitting when hungry), ack.

    Exits on the coordinator's ``None`` sentinel (normal) or the
    ``stop`` event (abort); a crash ships an ``("err", ...)`` record so
    the coordinator can fail loudly instead of hanging.  With ``hb_q``
    the worker owns a :class:`HeartbeatEmitter` whose records travel to
    the coordinator's :class:`ProgressMonitor` through that queue.
    """
    from .parallel import _worker_instrumentation

    ins = _worker_instrumentation(obs)
    scheduler = _WorkerScheduler(worker_id, task_q, idle,
                                 pending_target, split_interval)
    emitter: Optional[HeartbeatEmitter] = None
    if hb_q is not None:
        emitter = HeartbeatEmitter(
            worker=f"w{worker_id}", sink=hb_q.put, interval=hb_interval,
            queue_size=task_q.qsize,
        )
    sessions: Dict[int, _Session] = {}
    idle_box = [0.0]
    timeline: List[Tuple] = []
    try:
        while True:
            task = _take(task_q, idle, stop, idle_box)
            if task is None:
                break
            (task_id, parent_id, scope_index, branch, path, sleep, frames,
             guide) = task
            session = sessions.get(scope_index)
            if session is None:
                session = _Session(scope_table[scope_index], budget,
                                   scheduler, spill_dir, use_fp_store, ins,
                                   heartbeat=emitter)
                sessions[scope_index] = session
            scheduler.begin_task(task_id, scope_index)
            scope_name = scope_table[scope_index][0]
            if emitter is not None:
                emitter.begin_task(
                    f"{scope_name}:{':'.join(map(str, task_id))}",
                    session.stats, session.store,
                )
            ins.journal_event(
                "steal.claim", worker=worker_id, entry=scope_name,
                task=":".join(map(str, task_id)),
                stolen=task_id[0] == "w",
            )
            started = time.perf_counter()
            if budget is None or not budget.exhausted():
                with ins.span("steal.task", worker=worker_id,
                              scope=scope_index):
                    session.run(branch, path, sleep, frames, guide)
            timeline.append(
                (task_id, parent_id, scope_index, started,
                 time.perf_counter())
            )
            ack_q.put(("ack", task_id, list(scheduler.spawned)))
        if emitter is not None:
            emitter.emit()  # final beat: every worker reports at least once
        results = [
            sessions[index].harvest(index, ins)
            for index in sorted(sessions)
        ]
        payload = ins.worker_payload() if obs is not None else None
        ack_q.put(("done", worker_id, results, idle_box[0], timeline,
                   dict(scheduler.spawn_times), payload))
    except BaseException as exc:  # ship the failure; never hang the pool
        ack_q.put(("err", worker_id, f"{type(exc).__name__}: {exc}",
                   traceback.format_exc()))


def steal_workers(jobs: int, oversubscribe: bool = False) -> int:
    """Effective pool size: ``jobs`` capped by cores.

    Unlike the static path, the task count does not cap the pool —
    splitting manufactures tasks for otherwise-idle workers.
    ``oversubscribe`` drops the core cap: exploration workers block on
    queue I/O often enough that tests (and the bench harness) can
    exercise real multi-process scheduling on machines with fewer cores
    than workers.
    """
    if oversubscribe:
        return max(1, jobs)
    return max(1, min(jobs, os.cpu_count() or 1))


def _seed_tasks(
    scopes: Sequence[Tuple[CRDTEntry, Dict[str, Program], Optional[int]]],
    reduction: Optional[bool],
    symmetry: Optional[bool],
    cache: bool,
    por: str = "sleep",
) -> Tuple[List[_ScopeSpec], List[Tuple]]:
    """Static root-branch seeds (orbit-filtered) plus the scope table."""
    from .parallel import (
        _require_registered,
        _root_transitions,
        _symmetric_root_reps,
    )

    scope_table: List[_ScopeSpec] = []
    seeds: List[Tuple] = []
    for scope_index, (entry, programs, max_gossips) in enumerate(scopes):
        _require_registered(entry)
        gossips = max_gossips if entry.kind == "SB" else None
        scope_table.append(
            (entry.name, programs, gossips, reduction, symmetry, cache, por)
        )
        transitions = _root_transitions(entry.kind, programs, gossips)
        branches = list(range(max(1, len(transitions))))
        if (entry.symmetry if symmetry is None else symmetry) and transitions:
            branches = _symmetric_root_reps(entry, transitions, programs)
        for branch in branches:
            seeds.append(
                (("s", scope_index, branch), None, scope_index, branch,
                 None, frozenset(), None, None)
            )
    return scope_table, seeds


def _verify_scopes_inline(
    scopes: Sequence[Tuple[CRDTEntry, Dict[str, Program], Optional[int]]],
    reduction: Optional[bool],
    symmetry: Optional[bool],
    cache: bool,
    max_configurations: Optional[int],
    spill: Optional[str],
    ins: Instrumentation,
    por: str = "sleep",
    heartbeat: Optional[HeartbeatEmitter] = None,
) -> Dict[str, ExhaustiveResult]:
    """Serial fallback when the effective pool is one worker.

    Spawning a single worker process would pay fork + pickle + queue
    costs to run exactly the serial algorithm, so don't: run it here.
    The serial engine *is* the semantics the pool must reproduce, which
    makes this fallback trivially exact.
    """
    merged: Dict[str, ExhaustiveResult] = {}
    for entry, programs, max_gossips in scopes:
        if entry.kind == "OB":
            result = exhaustive_verify(
                entry, programs, max_configurations=max_configurations,
                reduction=reduction, symmetry=symmetry, cache=cache,
                spill=spill, instrumentation=ins, por=por,
                heartbeat=heartbeat,
            )
        else:
            result = exhaustive_verify_state(
                entry, programs, max_gossips=max_gossips or 0,
                max_configurations=max_configurations,
                reduction=reduction, symmetry=symmetry, cache=cache,
                spill=spill, instrumentation=ins, por=por,
                heartbeat=heartbeat,
            )
        merged[entry.name] = result
    return merged


def verify_scopes_steal(
    scopes: Sequence[Tuple[CRDTEntry, Dict[str, Program], Optional[int]]],
    jobs: Optional[int] = None,
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    max_configurations: Optional[int] = None,
    spill: Optional[str] = None,
    fp_store: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    oversubscribe: bool = False,
    pending_target: Optional[int] = None,
    split_interval: int = SPLIT_INTERVAL,
    stats_sink: Optional[Dict[str, Any]] = None,
    force_pool: bool = False,
    por: str = "sleep",
    progress: Optional[float] = None,
    progress_stream: Optional[Any] = None,
    heartbeat_log: Optional[str] = None,
) -> Dict[str, ExhaustiveResult]:
    """Run many exhaustive scopes through one work-stealing pool.

    Same contract as :func:`repro.proofs.parallel.verify_scopes_parallel`
    — ``{entry.name: merged result}`` in input order, verdicts and
    distinct-configuration counts identical to serial — plus:

    * ``max_configurations`` is honored exactly via the shared budget.
    * ``spill`` puts every worker's visited/expanded records behind a
      disk-spilling fingerprint store; ``fp_store=False`` turns digest
      interning off entirely (raw-fingerprint sets, the static path's
      representation).
    * ``oversubscribe`` lifts the physical-core cap on the pool size.
    * ``stats_sink``, when a dict, receives the pool's
      :class:`StealStats` under ``"steal"`` (the bench harness reads the
      task timeline from it).
    * ``force_pool`` runs the queue/worker machinery even when the
      effective pool is one worker — the bench harness uses a
      single-worker forced-split run as a contention-free serialization
      of the task DAG (accurate per-task durations and spawn times),
      which it replays through a list-scheduling simulator to model
      multi-worker makespan on machines without enough cores to measure
      it directly.
    * ``progress`` (seconds) turns on live heartbeat rendering: workers
      emit :mod:`repro.obs.heartbeat` records through a side queue and
      the coordinator's :class:`ProgressMonitor` renders the fleet
      status line to ``progress_stream`` (stderr by default).
      ``heartbeat_log`` appends every record to a JSONL artifact, with
      or without rendering.  Both are presentation only — no effect on
      results or deterministic metrics.
    """
    from .parallel import _obs_envelope, default_jobs

    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    jobs = jobs or default_jobs()
    workers = steal_workers(jobs, oversubscribe)
    scope_table, seeds = _seed_tasks(scopes, reduction, symmetry, cache, por)
    order: List[str] = []
    for entry, _, _ in scopes:
        if entry.name not in order:
            order.append(entry.name)
    observe = progress is not None or heartbeat_log is not None
    if (workers <= 1 and not force_pool) or not seeds:
        monitor = emitter = None
        if observe:
            monitor = ProgressMonitor(
                interval=progress,
                stream=(progress_stream if progress is not None
                        else io.StringIO()),
                log_path=heartbeat_log,
            )
            emitter = HeartbeatEmitter(worker="w0", sink=monitor.ingest,
                                       interval=progress)
        try:
            merged = _verify_scopes_inline(
                scopes, reduction, symmetry, cache, max_configurations,
                spill, ins, por, heartbeat=emitter,
            )
        finally:
            if monitor is not None:
                monitor.close()
        if stats_sink is not None:
            stats_sink["steal"] = StealStats(
                workers=1, seed_tasks=len(seeds), tasks=len(seeds),
            )
        return merged

    use_fp_store = fp_store or spill is not None
    manager = mp.Manager() if max_configurations is not None else None
    budget = (
        _SharedBudget(max_configurations, manager)
        if manager is not None else None
    )
    task_q: Any = mp.Queue()
    ack_q: Any = mp.Queue()
    idle = mp.Value("i", 0)
    stop = mp.Event()
    obs = _obs_envelope(ins)
    target = pending_target if pending_target is not None else 2 * workers
    hb_q: Any = mp.Queue() if observe else None
    monitor = (
        ProgressMonitor(
            interval=progress,
            stream=(progress_stream if progress is not None
                    else io.StringIO()),
            log_path=heartbeat_log,
        )
        if observe else None
    )
    started = time.perf_counter()
    for name in order:
        ins.journal_event("scope.start", entry=name, workers=workers)
    for seed in seeds:
        task_q.put(seed)
    procs = [
        mp.Process(
            target=_steal_worker_main,
            args=(worker_id, scope_table, task_q, ack_q, idle, stop,
                  budget, obs, spill, use_fp_store, target, split_interval,
                  hb_q, progress),
            daemon=True,
        )
        for worker_id in range(workers)
    ]
    for proc in procs:
        proc.start()

    expected = {seed[0] for seed in seeds}
    acked: set = set()
    errors: List[str] = []
    dones: List[Tuple] = []
    done_workers: set = set()
    sent_sentinels = False
    try:
        while len(dones) < len(procs) and not errors:
            if not sent_sentinels and expected == acked:
                for _ in procs:
                    task_q.put(None)
                sent_sentinels = True
            if monitor is not None:
                monitor.drain(hb_q)
                monitor.maybe_render()
            try:
                message = ack_q.get(timeout=1.0)
            except queue.Empty:
                for worker_id, proc in enumerate(procs):
                    if not proc.is_alive() and worker_id not in done_workers:
                        errors.append(
                            f"worker {worker_id} died "
                            f"(exit code {proc.exitcode})"
                        )
                continue
            kind = message[0]
            if kind == "ack":
                _, task_id, spawned = message
                acked.add(task_id)
                expected.update(spawned)
            elif kind == "done":
                dones.append(message)
                done_workers.add(message[1])
            else:  # ("err", worker_id, summary, traceback)
                errors.append(f"worker {message[1]}: {message[2]}\n"
                              f"{message[3]}")
    finally:
        stop.set()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        if monitor is not None:
            monitor.drain(hb_q)
            monitor.close()
            hb_q.close()
        task_q.close()
        ack_q.close()
        if manager is not None:
            manager.shutdown()
    if errors:
        raise RuntimeError(
            "work-stealing exploration failed: " + "; ".join(errors)
        )

    from .parallel import _merge_branches

    steal_stats = StealStats(
        workers=workers,
        seed_tasks=len(seeds),
        tasks=len(acked),
        stolen_tasks=sum(1 for task_id in acked if task_id[0] == "w"),
        wall_time=time.perf_counter() - started,
    )
    outcomes: Dict[str, List[Tuple[int, ExhaustiveResult, set]]] = {}
    for _, worker_id, results, idle_seconds, timeline, spawns, payload \
            in dones:
        ins.absorb_worker(payload)
        steal_stats.idle_seconds += idle_seconds
        steal_stats.timeline.extend(timeline)
        steal_stats.spawn_times.update(spawns)
        for scope_index, result, fps in results:
            name = scope_table[scope_index][0]
            outcomes.setdefault(name, []).append((worker_id, result, fps))
    with ins.span("steal.merge", scopes=len(order),
                  tasks=steal_stats.tasks):
        merged = {
            name: _merge_branches(name, outcomes.get(name, []))
            for name in order
        }
    if ins.enabled:
        ins.record_steal(steal_stats)
        for name, result in merged.items():
            ins.record_result(name, result)
            ins.journal_event("scope.end", entry=name, ok=result.ok,
                              configurations=result.configurations)
    if stats_sink is not None:
        stats_sink["steal"] = steal_stats
    return merged


def exhaustive_verify_steal(
    entry: CRDTEntry,
    programs: Dict[str, Program],
    jobs: Optional[int] = None,
    max_gossips: int = 3,
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    max_configurations: Optional[int] = None,
    spill: Optional[str] = None,
    fp_store: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    oversubscribe: bool = False,
    pending_target: Optional[int] = None,
    split_interval: int = SPLIT_INTERVAL,
    stats_sink: Optional[Dict[str, Any]] = None,
    force_pool: bool = False,
    por: str = "sleep",
    progress: Optional[float] = None,
    progress_stream: Optional[Any] = None,
    heartbeat_log: Optional[str] = None,
) -> ExhaustiveResult:
    """Work-stealing exhaustive verification of one registry entry."""
    gossips = max_gossips if entry.kind == "SB" else None
    merged = verify_scopes_steal(
        [(entry, programs, gossips)], jobs=jobs, reduction=reduction,
        symmetry=symmetry, cache=cache,
        max_configurations=max_configurations, spill=spill,
        fp_store=fp_store, instrumentation=instrumentation,
        oversubscribe=oversubscribe, pending_target=pending_target,
        split_interval=split_interval, stats_sink=stats_sink,
        force_pool=force_pool, por=por, progress=progress,
        progress_stream=progress_stream, heartbeat_log=heartbeat_log,
    )
    return merged[entry.name]
