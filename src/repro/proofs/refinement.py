"""Refinement / Refinement_ts checking for op-based CRDTs (Sec. 4.1, 4.2).

A *refinement mapping* ``abs`` relates replica states to specification
states such that:

* **Simulating effectors** — every effector application ``σ' = δ(σ)`` is
  matched by the corresponding specification transition
  ``abs(σ) —upd(γℓ)→ abs(σ')``.  In the timestamp-order variant
  (Refinement_ts) the obligation only applies when ``ts(ℓ)`` is not smaller
  than any timestamp stored in ``σ`` — the linearization's timestamp order
  guarantees effectors are replayed under that guard.
* **Simulating generators** — every query (and the query part of every
  query-update) is admitted by the specification at ``abs(σ)`` of the origin
  state it ran against.

The checker replays an execution's trace — generator and effector actions in
their real order, per replica — and discharges each obligation on the
concrete pre/post states.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.label import Label
from ..core.rewriting import QueryUpdateRewriting
from ..core.spec import Role, SequentialSpec
from ..runtime.system import OpBasedSystem


@dataclass
class RefinementReport:
    """Outcome of a refinement check over one execution."""

    ok: bool = True
    violations: List[str] = field(default_factory=list)
    checked_effectors: int = 0
    checked_generators: int = 0
    skipped_by_guard: int = 0

    def record(self, message: str) -> None:
        self.ok = False
        self.violations.append(message)


def check_refinement(
    system: OpBasedSystem,
    spec: SequentialSpec,
    abs_fn: Callable[[Any], Any],
    gamma: Optional[QueryUpdateRewriting] = None,
    timestamp_guard: Optional[Callable[[Any], Any]] = None,
) -> RefinementReport:
    """Check Refinement (or Refinement_ts) along one execution.

    ``timestamp_guard`` — when given — makes this Refinement_ts: it maps a
    replica state to the collection of timestamps it stores (``ts(σ)``), and
    effector obligations are skipped when the effector's timestamp is
    smaller than some stored timestamp.
    """
    (obj,) = system.objects
    crdt = system.objects[obj]
    report = RefinementReport()
    states: Dict[str, Any] = {
        replica: crdt.initial_state() for replica in system.replicas
    }

    def effector_obligation(replica: str, label: Label) -> None:
        effector = system.effector_of(label)
        if effector is None:
            return
        pre = states[replica]
        post = crdt.apply_effector(pre, effector)
        states[replica] = post
        if timestamp_guard is not None and label.generates_timestamp():
            stored = list(timestamp_guard(pre))
            if any(label.ts < ts for ts in stored):
                report.skipped_by_guard += 1
                return
        upd_label = gamma.upd(label) if gamma else label
        report.checked_effectors += 1
        successors = spec.step(abs_fn(pre), upd_label)
        if abs_fn(post) not in successors:
            report.record(
                f"effector of {label!r} at {replica} not simulated: "
                f"abs(pre)={abs_fn(pre)!r} -{upd_label!r}-> expected "
                f"abs(post)={abs_fn(post)!r}, spec allows {successors!r}"
            )

    def generator_obligation(replica: str, label: Label) -> None:
        role = crdt.methods[label.method]
        pre = states[replica]
        if role is Role.QUERY:
            qry_label = gamma.qry(label) if gamma else label
        elif role is Role.QUERY_UPDATE and gamma is not None:
            qry_label = gamma.qry(label)
        else:
            return
        report.checked_generators += 1
        if not spec.step(abs_fn(pre), qry_label):
            report.record(
                f"generator of {label!r} at {replica} not simulated: "
                f"spec rejects {qry_label!r} at abs state {abs_fn(pre)!r}"
            )

    for kind, replica, label in system.trace:
        if kind == "gen":
            generator_obligation(replica, label)
            effector_obligation(replica, label)
        else:
            effector_obligation(replica, label)

    # Sanity: the replayed states match the system's actual replica states.
    for replica in system.replicas:
        if states[replica] != system.state(replica, obj):
            report.record(
                f"replayed state of {replica} diverges from the execution"
            )
    return report
