"""End-to-end verification harness: regenerates the Fig. 12 table.

For every catalogue entry the harness runs a batch of randomized executions
and discharges, on each:

* **Commutativity** (op-based) or **Prop1–Prop6 + fold oracle**
  (state-based) — the per-class proof obligations of Sec. 4 / Appendix D;
* **Refinement** (op-based: Refinement or Refinement_ts along the trace);
* **Convergence** — replicas that saw the same operations agree;
* **RA-linearizability** — the execution-order or timestamp-order candidate
  linearization (per the entry's Fig. 12 class) is a valid
  RA-linearization of the execution's history.

``format_table`` renders the results in the shape of Fig. 12;
``format_exhaustive`` renders exhaustive small-scope results together
with their exploration/cache statistics, and ``format_metrics`` renders
a ``--metrics`` artifact (the ``repro stats`` command).
"""

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.convergence import check_convergence
from ..core.linearization import history_timestamp, ts_sort_key
from ..core.ralin import RACheckContext
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from ..runtime.schedule import random_op_execution, random_state_execution
from .commutativity import check_commutativity
from .refinement import check_refinement
from .registry import ALL_ENTRIES, FIGURE_12_ENTRIES, CRDTEntry
from .statebased import check_fold_oracle, check_properties


@dataclass
class VerificationResult:
    """Aggregated outcome of the harness for one CRDT."""

    name: str
    kind: str
    lin_class: str
    executions: int = 0
    operations: int = 0
    commutativity_ok: bool = True
    refinement_ok: bool = True
    convergence_ok: bool = True
    ralin_ok: bool = True
    failures: List[str] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return (
            self.commutativity_ok
            and self.refinement_ok
            and self.convergence_ok
            and self.ralin_ok
        )

    def note(self, message: str) -> None:
        self.failures.append(message)


def verify_op_based(
    entry: CRDTEntry,
    executions: int = 10,
    operations: int = 10,
    base_seed: int = 0,
    instrumentation: Optional[Instrumentation] = None,
) -> VerificationResult:
    """Run the Sec. 4 methodology on randomized op-based executions."""
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    result = VerificationResult(entry.name, entry.kind, entry.lin_class)
    # Specs and rewritings are stateless (linted by lint_spec); build them
    # once per entry and share across runs, with one check context so
    # runs reuse replay frontiers.
    spec = entry.make_spec()
    gamma = entry.make_gamma()
    context = RACheckContext(spec, gamma, entry.lin_class)
    for run in range(executions):
        crdt = entry.make_crdt()
        workload = entry.make_workload()
        system = random_op_execution(
            crdt, workload, operations=operations, seed=base_seed + run
        )
        result.executions += 1
        result.operations += len(system.generation_order)

        violations = check_commutativity(system)
        if violations:
            result.commutativity_ok = False
            result.note(f"run {run}: {violations[0]}")

        refinement = check_refinement(
            system, spec, entry.abs_fn, gamma,
            timestamp_guard=entry.state_timestamps
            if entry.lin_class == "TO" else None,
        )
        if not refinement.ok:
            result.refinement_ok = False
            result.note(f"run {run}: {refinement.violations[0]}")

        converged, offenders = check_convergence(system.replica_views())
        if not converged:
            result.convergence_ok = False
            result.note(f"run {run}: divergent replicas {offenders}")

        outcome = context.check(system.history(), system.generation_order)
        if not outcome.ok:
            result.ralin_ok = False
            result.note(f"run {run}: {outcome.reason}")
        if ins.trace_checks:
            ins.event(
                "check", entry=entry.name, run=run, ok=outcome.ok,
                reason=None if outcome.ok else outcome.reason,
            )
    return result


def verify_state_based(
    entry: CRDTEntry,
    executions: int = 10,
    operations: int = 10,
    base_seed: int = 0,
    instrumentation: Optional[Instrumentation] = None,
) -> VerificationResult:
    """Run the Appendix D methodology on randomized state-based executions."""
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    result = VerificationResult(entry.name, entry.kind, entry.lin_class)
    spec = entry.make_spec()
    gamma = entry.make_gamma()
    context = RACheckContext(spec, gamma, entry.lin_class)
    for run in range(executions):
        crdt = entry.make_crdt()
        workload = entry.make_workload()
        system = random_state_execution(
            crdt, workload, operations=operations, seed=base_seed + run
        )
        result.executions += 1
        result.operations += len(system.generation_order)

        props = check_properties(system)
        if not props.ok:
            result.commutativity_ok = False
            result.note(f"run {run}: {props.violations[0]}")

        history = system.history()
        order = list(system.generation_order)
        if entry.lin_class == "TO":
            position = {label: i for i, label in enumerate(order)}
            order.sort(
                key=lambda l: (
                    ts_sort_key(history_timestamp(history, l)),
                    position[l],
                )
            )
        fold = check_fold_oracle(system, order)
        if not fold.ok:
            result.refinement_ok = False
            result.note(f"run {run}: {fold.violations[0]}")

        converged, offenders = check_convergence(system.replica_views())
        if not converged:
            result.convergence_ok = False
            result.note(f"run {run}: divergent replicas {offenders}")

        outcome = context.check(history, system.generation_order)
        if not outcome.ok:
            result.ralin_ok = False
            result.note(f"run {run}: {outcome.reason}")
        if ins.trace_checks:
            ins.event(
                "check", entry=entry.name, run=run, ok=outcome.ok,
                reason=None if outcome.ok else outcome.reason,
            )
    return result


def verify_entry(
    entry: CRDTEntry,
    executions: int = 10,
    operations: int = 10,
    base_seed: int = 0,
    instrumentation: Optional[Instrumentation] = None,
) -> VerificationResult:
    """Dispatch to the op-based or state-based methodology."""
    if entry.kind == "OB":
        return verify_op_based(entry, executions, operations, base_seed,
                               instrumentation=instrumentation)
    return verify_state_based(entry, executions, operations, base_seed,
                              instrumentation=instrumentation)


def verify_all(
    executions: int = 10,
    operations: int = 10,
    include_extras: bool = True,
) -> List[VerificationResult]:
    entries = ALL_ENTRIES if include_extras else FIGURE_12_ENTRIES
    return [verify_entry(entry, executions, operations) for entry in entries]


def format_markdown(results: List[VerificationResult]) -> str:
    """Render results as a Markdown table (for reports / EXPERIMENTS.md)."""
    lines = [
        "| CRDT | Imp. | Lin. | verified | executions | operations |",
        "|---|---|---|---|---|---|",
    ]
    for res in results:
        lines.append(
            f"| {res.name} | {res.kind} | {res.lin_class} | "
            f"{'yes' if res.verified else '**NO**'} | "
            f"{res.executions} | {res.operations} |"
        )
    return "\n".join(lines)


def format_table(
    results: List[VerificationResult], title: Optional[str] = None
) -> str:
    """Render results in the shape of Fig. 12, plus verification columns."""
    header = (
        f"{'CRDT':<18} {'Imp.':<5} {'Lin.':<5} {'verified':<9} "
        f"{'execs':>6} {'ops':>6}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        lines.append(
            f"{res.name:<18} {res.kind:<5} {res.lin_class:<5} "
            f"{'yes' if res.verified else 'NO':<9} "
            f"{res.executions:>6} {res.operations:>6}"
        )
    return "\n".join(lines)


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:6.1f}%" if whole else f"{'-':>7}"


def format_exhaustive(results: Sequence[Any],
                      title: Optional[str] = None) -> str:
    """Render :class:`~repro.proofs.exhaustive.ExhaustiveResult` rows with
    their exploration and verification-cache statistics.

    Per scope: distinct configurations, states expanded by the engine,
    deduplication and sleep-set prune rates, verdict-memo and
    frontier-trie hit rates, exploration wall time, and the verdict.
    Scopes run with the naive engine (no :class:`ExploreStats`) or with
    caching disabled (no :class:`CheckStats`) render ``-`` for the
    columns they lack.  Recorded failures are listed below the table.
    """
    header = (
        f"{'CRDT':<18} {'configs':>8} {'states':>8} {'dedup':>7} "
        f"{'pruned':>8} {'vhit':>7} {'fhit':>7} {'wall':>8}  verdict"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    failures: List[str] = []
    for res in results:
        stats = res.stats
        check = res.check_stats
        if stats is not None:
            states = f"{stats.states_visited:>8}"
            dedup = _pct(stats.states_deduped,
                         stats.states_visited + stats.states_deduped)
            pruned = f"{stats.branches_pruned:>8}"
            wall = f"{stats.wall_time:7.2f}s"
        else:
            states, dedup, pruned, wall = (
                f"{'-':>8}", f"{'-':>7}", f"{'-':>8}", f"{'-':>8}"
            )
        if check is not None:
            vhit = _pct(check.verdict_hits, check.checks)
            fhit = _pct(check.frontier_hits,
                        check.frontier_hits + check.frontier_misses)
        else:
            vhit = fhit = f"{'-':>7}"
        verdict = "ok" if res.ok else "FAIL"
        lines.append(
            f"{res.entry_name:<18} {res.configurations:>8} {states} "
            f"{dedup} {pruned} {vhit} {fhit} {wall}  {verdict}"
        )
        for failure in res.failures:
            failures.append(f"  {res.entry_name}: {failure}")
    if failures:
        lines.append("")
        lines.append("failures:")
        lines.extend(failures)
    return "\n".join(lines)


def format_store(result: Any, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.proofs.compositional.StoreResult`.

    Compositional mode shows one row per object (the per-object
    exhaustive scope) plus the ⊗ts side-condition summary; product mode
    (the non-shared-timestamp escape hatch) shows the whole-store
    exploration instead.
    """
    lines = []
    if title:
        lines.append(title)
    flavour = "⊗ts shared clock" if result.mode == "compositional" \
        else "⊗ independent clocks — whole-store product exploration"
    lines.append(f"store: {result.store} ({flavour})")
    if result.mode == "compositional":
        header = (
            f"{'object':<14} {'entry':<18} {'configs':>8} {'wall':>8}"
            f"  verdict"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for obj in sorted(result.objects):
            res = result.objects[obj]
            wall = f"{res.stats.wall_time:7.2f}s" if res.stats is not None \
                else f"{'-':>8}"
            lines.append(
                f"{obj:<14} {res.entry_name:<18} {res.configurations:>8} "
                f"{wall}  {'ok' if res.ok else 'FAIL'}"
            )
        side = "ok" if result.side_condition_ok else "FAIL"
        lines.append(
            f"side condition: {result.side_condition_checks} product "
            f"configurations swept, {result.combine_failures} combine "
            f"failures — {side}"
        )
        if result.counterexample is not None:
            lines.append(
                f"counterexample: {result.counterexample.describe()}"
            )
    elif result.product is not None:
        res = result.product
        wall = f"{res.stats.wall_time:.2f}s" if res.stats is not None \
            else "-"
        lines.append(
            f"product: {res.configurations} configurations in {wall} — "
            f"{'ok' if res.ok else 'FAIL'}"
        )
    lines.append(
        f"verdict: {'ok' if result.ok else 'FAIL'} ({result.mode}), "
        f"{result.configurations} configurations, "
        f"{result.wall_time:.2f}s"
    )
    if result.failures:
        lines.append("failures:")
        lines.extend(f"  {failure}" for failure in result.failures)
    return "\n".join(lines)


def format_metrics(artifact: Mapping[str, Any]) -> str:
    """Human-readable summary of a ``--metrics`` artifact.

    Renders the artifact in four sections: deterministic counters (the
    values a serial run and a ``--jobs N`` run agree on exactly), work
    counters and gauges (cost — may legitimately exceed serial totals
    under frontier splitting), span timings, and the trace-event count.
    """
    lines = [f"metrics artifact — command: {artifact.get('command', '?')}"]
    generated = artifact.get("generated_at")
    if generated is not None:
        stamp = _time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", _time.gmtime(generated)
        )
        lines.append(f"generated: {stamp}")
    meta = artifact.get("meta") or {}
    if meta:
        inner = "  ".join(f"{k}={meta[k]}" for k in sorted(meta))
        lines.append(f"meta: {inner}")

    # ``.get()`` throughout: artifacts written before a metric family
    # existed (older snapshots) must degrade to ``-`` / absent rows, not
    # crash the stats command.
    instruments = artifact.get("metrics", {}).get("instruments", {})
    deterministic = []
    counters = []
    gauges = []
    histograms = []
    for key in sorted(instruments):
        dumped = instruments[key]
        kind = dumped.get("kind")
        if kind == "histogram":
            histograms.append((key, dumped))
        elif dumped.get("deterministic"):
            deterministic.append((key, dumped))
        elif kind == "counter":
            counters.append((key, dumped))
        else:
            gauges.append((key, dumped))

    def fmt_value(value: Any) -> str:
        if isinstance(value, float) and not value.is_integer():
            return f"{value:.4f}"
        return f"{int(value)}" if value is not None else "-"

    if deterministic:
        lines.append("")
        lines.append("deterministic (serial == --jobs N):")
        for key, dumped in deterministic:
            lines.append(f"  {key:<52} {fmt_value(dumped.get('value')):>12}")

    # Scheduler digest: the work-stealing and fingerprint-store counters
    # summed across their per-entry label variants, with the derived
    # ratios an operator actually reads (how much was stolen, how long
    # workers waited, how well digest interning deduplicated).
    totals: Dict[str, float] = {}
    for key in instruments:
        name = key.split("{", 1)[0]
        if name.startswith(("explore.steal.", "explore.fp_store.",
                            "explore.dpor.", "explore.pstate.")):
            value = instruments[key].get("value")
            if value is not None:
                totals[name] = totals.get(name, 0.0) + value
    has_explore = any(key.startswith("explore.") for key in instruments)
    if totals or has_explore:
        lines.append("")
        lines.append("scheduler (work stealing / fingerprint store):")

        def total(name: str) -> float:
            return totals.get(name, 0.0)

        rows = [
            ("workers", total("explore.steal.workers")),
            ("tasks (seed + stolen)", total("explore.steal.tasks")),
            ("tasks stolen", total("explore.steal.stolen_tasks")),
            ("splits", total("explore.steal.splits")),
            ("subtrees spawned", total("explore.steal.spawned")),
            ("idle-wait seconds", total("explore.steal.idle_seconds")),
            ("pool wall seconds", total("explore.steal.wall_seconds")),
            ("fp-store lookups", total("explore.fp_store.lookups")),
            ("fp-store evictions", total("explore.fp_store.evictions")),
            ("fp-store spilled", total("explore.fp_store.spilled")),
            ("dpor races analyzed", total("explore.dpor.races")),
            ("dpor redundant avoided",
             total("explore.dpor.redundant_avoided")),
            ("dpor reversals deferred", total("explore.dpor.deferred")),
            ("dpor full expansions", total("explore.dpor.full_expansions")),
            ("dpor wakeup branches", total("explore.dpor.wakeup_branches")),
            ("dpor wakeup fallbacks",
             total("explore.dpor.wakeup_fallbacks")),
            ("dpor patch cuts", total("explore.dpor.patch_cuts")),
            ("dpor vacuity drops", total("explore.dpor.vacuity_drops")),
            ("dpor deferred-seen LRU peak",
             total("explore.dpor.deferred_seen")),
            ("pstate nodes copied", total("explore.pstate.nodes_copied")),
            ("pstate nodes shared", total("explore.pstate.nodes_shared")),
        ]
        for label, value in rows:
            if value:
                lines.append(f"  {label:<52} {fmt_value(value):>12}")
        lookups = total("explore.fp_store.lookups")
        if lookups:
            ratio = total("explore.fp_store.hits") / lookups
            lines.append(f"  {'fp-store hit ratio':<52} {ratio:>12.4f}")
        copied = total("explore.pstate.nodes_copied")
        shared = total("explore.pstate.nodes_shared")
        if copied or shared:
            # The observable O(delta) claim: how many trie nodes each
            # branch point reused instead of copying.
            ratio = shared / (copied + shared) if copied + shared else 0.0
            lines.append(f"  {'pstate sharing ratio':<52} {ratio:>12.4f}")
        # Metric families this artifact predates (or whose machinery was
        # off) are named explicitly — "(absent)" distinguishes "not
        # recorded" from "recorded zero" when reading old snapshots.
        families = [
            ("work stealing", "explore.steal."),
            ("fingerprint store", "explore.fp_store."),
            ("source-DPOR", "explore.dpor."),
            ("persistent state", "explore.pstate."),
        ]
        for label, prefix in families:
            if not any(name.startswith(prefix) for name in totals):
                lines.append(f"  {label:<52} {'(absent)':>12}")

    # Composition digest: the compositional-verification counters summed
    # across their per-store label variants (``repro exhaustive --store``).
    compose: Dict[str, float] = {}
    for key in instruments:
        name = key.split("{", 1)[0]
        if name.startswith("compose."):
            value = instruments[key].get("value")
            if value is not None:
                compose[name] = compose.get(name, 0.0) + value
    if compose:
        lines.append("")
        lines.append("composition (per-object proof rule):")
        rows = [
            ("stores verified", compose.get("compose.stores", 0.0)),
            ("objects", compose.get("compose.objects", 0.0)),
            ("side-condition checks",
             compose.get("compose.side_condition_checks", 0.0)),
            ("combine failures",
             compose.get("compose.combine_failures", 0.0)),
        ]
        for label, value in rows:
            lines.append(f"  {label:<52} {fmt_value(value):>12}")
    if counters:
        lines.append("")
        lines.append("work counters:")
        for key, dumped in counters:
            lines.append(f"  {key:<52} {fmt_value(dumped.get('value')):>12}")
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for key, dumped in gauges:
            lines.append(
                f"  {key:<52} {fmt_value(dumped.get('value')):>12} "
                f"({dumped.get('policy', '?')})"
            )
    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / max):")
        for key, dumped in histograms:
            count = dumped.get("count", 0)
            mean = dumped.get("sum", 0.0) / count if count else 0.0
            mx = dumped.get("max") if dumped.get("max") is not None else 0.0
            lines.append(
                f"  {key:<52} {count:>6} / {mean:.4f} / {mx:.4f}"
            )
    events = artifact.get("events", [])
    lines.append("")
    lines.append(f"trace events: {len(events)}")
    return "\n".join(lines)


def format_phases(artifact: Mapping[str, Any]) -> str:
    """Render the phase-attribution profile of a ``--metrics`` artifact.

    The engine folds its :class:`~repro.obs.profile.PhaseProfiler`
    timings into ``profile.seconds{phase=...}`` work counters; this
    breaks the summed exploration wall into those phases plus an
    ``(other)`` row (scheduler overhead, visited-set bookkeeping, the
    DFS loop itself) so the table tiles the engine wall exactly.
    """
    instruments = artifact.get("metrics", {}).get("instruments", {})
    seconds: Dict[str, float] = {}
    regions: Dict[str, float] = {}
    wall = 0.0
    for dumped in instruments.values():
        name = dumped.get("name")
        if name == "explore.wall_seconds":
            wall += dumped.get("value") or 0.0
            continue
        phase = (dumped.get("labels") or {}).get("phase")
        if phase is None:
            continue
        if name == "profile.seconds":
            seconds[phase] = seconds.get(phase, 0.0) + (
                dumped.get("value") or 0.0
            )
        elif name == "profile.regions":
            regions[phase] = regions.get(phase, 0.0) + (
                dumped.get("value") or 0.0
            )
    if not seconds:
        return (
            "no phase profile in this artifact — record one with "
            "`repro exhaustive --metrics PATH` (any exploration command)"
        )
    attributed = sum(seconds.values())
    base = wall if wall > 0 else attributed
    header = f"{'phase':<14} {'seconds':>10} {'share':>8} {'regions':>10}"
    lines = ["phase profile (engine wall attribution):", header,
             "-" * len(header)]
    for phase in sorted(seconds, key=seconds.get, reverse=True):
        share = seconds[phase] / base if base else 0.0
        count = regions.get(phase)
        lines.append(
            f"{phase:<14} {seconds[phase]:>9.4f}s {share:>7.1%} "
            f"{int(count) if count is not None else '-':>10}"
        )
    other = wall - attributed
    if wall > 0:
        lines.append(
            f"{'(other)':<14} {max(other, 0.0):>9.4f}s "
            f"{max(other, 0.0) / base:>7.1%} {'-':>10}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'engine wall':<14} {base:>9.4f}s {1.0:>7.1%}")
    return "\n".join(lines)
