"""Exhaustive small-scope verification of op-based CRDTs.

Random testing (``verify_entry``) samples executions; this module *covers*
them: for fixed per-replica programs, every interleaving of generators and
causal deliveries is explored (the Sec. 3.3 explorer), and every reachable
quiescent execution is checked —

* its history is RA-linearizable via the entry's EO/TO candidate
  construction, and
* replicas that saw the same operations converged.

Within the chosen scope this is a *proof*: no execution of these programs
violates RA-linearizability.  It is the closest executable analogue of the
paper's per-CRDT Boogie proofs, which quantify over all executions
symbolically.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.convergence import check_convergence
from ..core.ralin import (
    CheckStats,
    RACheckContext,
    execution_order_check,
    timestamp_order_check,
)
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from ..runtime.explore_engine import ExploreStats
from ..runtime.explore_naive import (
    explore_op_programs_naive,
    explore_state_programs_naive,
)
from ..runtime.fp_store import FingerprintStore, FPStoreStats
from ..runtime.schedule import Program, explore_op_programs
from ..runtime.system import OpBasedSystem
from .registry import CRDTEntry


@dataclass
class ExhaustiveResult:
    """Outcome of an exhaustive small-scope verification."""

    entry_name: str
    configurations: int = 0
    ok: bool = True
    failures: List[str] = field(default_factory=list)
    #: Exploration counters (dedup hits, prunes, wall time, …); None when
    #: the naive baseline engine ran.
    stats: Optional[ExploreStats] = None
    #: Verification-cache counters (verdict memo, frontier trie); None
    #: when caching was disabled (``cache=False``).
    check_stats: Optional[CheckStats] = None
    #: Fingerprint-store counters when digest interning was active
    #: (``--spill`` or the work-stealing path); None otherwise.
    fp_store: Optional[FPStoreStats] = None

    def record(self, message: str) -> None:
        self.ok = False
        if len(self.failures) < 10:
            self.failures.append(message)


def _make_visit(
    entry: CRDTEntry,
    result: ExhaustiveResult,
    cache: bool,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
):
    """The per-configuration verification callback.

    With ``cache=True`` (default) one spec, one γ, one frontier trie and
    one verdict memo are shared across every visited configuration
    (:class:`RACheckContext`); ``cache=False`` reproduces the PR-1
    baseline, rebuilding spec and γ per configuration and replaying from
    scratch — kept for benchmarking and differential testing.

    When instrumentation is enabled the check context runs ``timed``
    (per-condition wall time in ``CheckStats.cond_seconds``), failing
    culprits are counted by method, and — with ``trace_checks`` — every
    configuration's check verdict becomes one trace event.
    """
    ins = instrumentation

    def report(system, outcome) -> None:
        trace = getattr(system, "trace", None)  # state-based keeps no trace
        suffix = (
            f"; trace={[(k, r, repr(l)) for k, r, l in trace]}"
            if trace is not None else ""
        )
        result.record(
            f"non-RA-linearizable interleaving: {outcome.reason}{suffix}"
        )
        if ins.enabled and ins.metrics is not None:
            culprit = getattr(outcome, "culprit", None)
            ins.metrics.counter(
                "check.culprit", entry=entry.name,
                method=culprit.method if culprit is not None else "?",
            ).inc()

    def observe(outcome) -> None:
        if ins.trace_checks:
            ins.event(
                "check", entry=entry.name, ok=outcome.ok,
                reason=None if outcome.ok else outcome.reason,
                condition=getattr(outcome, "condition", None),
            )

    if cache:
        context = RACheckContext(
            entry.make_spec(), entry.make_gamma(), entry.lin_class,
            timed=ins.enabled,
        )
        result.check_stats = context.stats

        def check(system) -> None:
            outcome = context.check(system.history(), system.generation_order)
            observe(outcome)
            if not outcome.ok:
                report(system, outcome)
    else:
        checker = (
            execution_order_check if entry.lin_class == "EO"
            else timestamp_order_check
        )

        def check(system) -> None:
            spec = entry.make_spec()
            gamma = entry.make_gamma()
            outcome = checker(
                system.history(), spec, system.generation_order, gamma
            )
            observe(outcome)
            if not outcome.ok:
                report(system, outcome)

    profile = ins.profile

    def visit(system, returns) -> None:
        if profile is None:
            check(system)
            converged, offenders = check_convergence(system.replica_views())
        else:
            # Spec replay + RA check and the convergence oracle run
            # inside the engine's wall clock, so these two phases tile
            # the same total as the engine-side domain phases.
            start = time.perf_counter()
            check(system)
            mid = time.perf_counter()
            converged, offenders = check_convergence(system.replica_views())
            end = time.perf_counter()
            profile.add("check", mid - start)
            profile.add("convergence", end - mid)
        if not converged:
            result.record(f"divergent replicas {offenders}")

    return visit


def exhaustive_verify(
    entry: CRDTEntry,
    programs: Dict[str, Program],
    max_configurations: Optional[int] = None,
    engine: str = "fast",
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    jobs: int = 1,
    root_branch: Optional[int] = None,
    fingerprints: Optional[set] = None,
    instrumentation: Optional[Instrumentation] = None,
    steal: Optional[bool] = None,
    spill: Optional[str] = None,
    fp_store: bool = False,
    oversubscribe: bool = False,
    por: str = "sleep",
    heartbeat: Optional[object] = None,
) -> ExhaustiveResult:
    """Check every interleaving of ``programs`` against the entry's class.

    Only op-based entries are supported (the state-based semantics has an
    unbounded message alphabet; its coverage story is the property checks
    of Appendix D instead).

    ``engine`` selects ``"fast"`` (the default: sleep sets + dedup +
    copy-on-write snapshots) or ``"naive"`` (the raw-interleaving
    baseline, for differential testing and benchmarking).  ``reduction``
    overrides the entry's escape hatch (``CRDTEntry.reduction``);
    ``symmetry`` likewise overrides ``CRDTEntry.symmetry`` (replica-orbit
    dedup — with it on, ``configurations`` counts orbits, not raw
    configurations).

    ``cache=False`` disables the shared verification caches (see
    :func:`_make_visit`).  ``jobs > 1`` fans the exploration out over
    worker processes — by default the work-stealing scheduler
    (:mod:`repro.proofs.steal`), or the static root-branch fan-out with
    ``steal=False`` (see :mod:`repro.proofs.parallel`).  The stealing
    path shares ``max_configurations`` as a cross-worker budget so the
    parallel cutoff lands on exactly the serial count; the static path
    remains incompatible with it.  Neither supports the naive engine.
    ``root_branch``/``fingerprints`` are the worker-side hooks of the
    static fan-out and are rarely useful directly.

    ``spill DIR`` interns fingerprints as fixed-width digests behind a
    collision-checked :class:`FingerprintStore` and spills the
    visited/expanded records to a scratch sqlite file under ``DIR`` with
    an LRU in-memory tier — the 4-replica-scope memory valve (see
    ``docs/performance.md``).  ``fp_store=True`` turns on digest
    interning without the disk tier (compact in-memory fingerprints,
    unbounded growth).

    ``instrumentation`` threads the observability handle through the
    whole run (scope span, exploration/cache metrics, the deterministic
    ``verify.*`` counters — recorded here only for whole-tree runs; the
    parallel merge records them for frontier-split shards).

    ``por`` selects the partial-order-reduction flavor: ``"sleep"``
    (classic sleep sets, the differential oracle) or ``"source"``
    (source-DPOR — race-driven source sets over the sleep sets, plus
    persistent structural-sharing snapshots in the runtime systems).
    Both visit the same configuration set; source explores fewer
    interleavings to get there.

    ``heartbeat`` threads a
    :class:`~repro.obs.heartbeat.HeartbeatEmitter` into the engine for
    serial ``--progress`` runs (the stealing pool attaches per-worker
    emitters itself); None keeps the hot loop at one attribute check.
    """
    if entry.kind != "OB":
        raise ValueError(
            f"{entry.name} is state-based; exhaustive exploration covers "
            "op-based entries only"
        )
    if engine not in ("fast", "naive"):
        raise ValueError(f"unknown engine {engine!r}: use 'fast' or 'naive'")
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    if jobs > 1:
        if engine == "naive":
            raise ValueError("jobs > 1 requires the fast engine")
        from .parallel import exhaustive_verify_parallel

        return exhaustive_verify_parallel(
            entry, programs, jobs=jobs, reduction=reduction,
            symmetry=symmetry, cache=cache, instrumentation=ins,
            steal=steal, spill=spill,
            max_configurations=max_configurations,
            oversubscribe=oversubscribe, por=por,
        )
    result = ExhaustiveResult(entry.name)
    visit = _make_visit(entry, result, cache and engine == "fast", ins)
    store: Optional[FingerprintStore] = None
    expanded = None
    if (spill is not None or fp_store) and engine == "fast":
        store = FingerprintStore(spill_dir=spill)
        if fingerprints is None:
            fingerprints = store.visited_set()
        expanded = store.expanded_map()
    if root_branch is None:
        ins.journal_event("scope.start", entry=entry.name, family="OB")
    if heartbeat is not None:
        heartbeat.begin_task(entry.name)

    def make_system() -> OpBasedSystem:
        # Source-DPOR branches orders of magnitude more often than it
        # mutates; the persistent (hash-trie) containers make each branch
        # point O(delta) instead of O(configuration).
        return OpBasedSystem(
            entry.make_crdt(), replicas=sorted(programs),
            persistent=(por in ("source", "optimal")),
        )

    with ins.span("exhaustive.scope", entry=entry.name, kind="OB",
                  root_branch=root_branch):
        if engine == "naive":
            result.configurations = explore_op_programs_naive(
                make_system, programs, visit,
                max_configurations=max_configurations,
            )
        else:
            result.stats = ExploreStats()
            result.configurations = explore_op_programs(
                make_system, programs, visit,
                max_configurations=max_configurations,
                reduction=entry.reduction if reduction is None else reduction,
                symmetry=entry.symmetry if symmetry is None else symmetry,
                stats=result.stats,
                root_branch=root_branch,
                fingerprints=fingerprints,
                instrumentation=ins,
                fp_store=store,
                expanded=expanded,
                por=por,
                heartbeat=heartbeat,
            )
    if heartbeat is not None:
        heartbeat.emit()  # final beat: short scopes get at least one
    if store is not None:
        result.fp_store = store.stats
        if ins.enabled:
            ins.record_fp_store(store.stats, entry=entry.name)
            if store.stats.spilled:
                ins.journal_event(
                    "spill.promote", entry=entry.name,
                    spilled=store.stats.spilled,
                    evictions=store.stats.evictions,
                )
        store.close()
    if ins.enabled:
        if result.check_stats is not None:
            ins.record_check(result.check_stats, entry=entry.name)
        if root_branch is None:
            ins.record_result(entry.name, result)
            ins.journal_event(
                "scope.end", entry=entry.name, ok=result.ok,
                configurations=result.configurations,
            )
    return result


def exhaustive_verify_state(
    entry: CRDTEntry,
    programs: Dict[str, Program],
    max_gossips: int = 3,
    max_configurations: Optional[int] = None,
    engine: str = "fast",
    reduction: Optional[bool] = None,
    symmetry: Optional[bool] = None,
    cache: bool = True,
    jobs: int = 1,
    root_branch: Optional[int] = None,
    fingerprints: Optional[set] = None,
    instrumentation: Optional[Instrumentation] = None,
    steal: Optional[bool] = None,
    spill: Optional[str] = None,
    fp_store: bool = False,
    oversubscribe: bool = False,
    por: str = "sleep",
    heartbeat: Optional[object] = None,
) -> ExhaustiveResult:
    """Bounded exhaustive verification of a state-based entry.

    Explores every interleaving of the programs with up to ``max_gossips``
    gossip steps (see :mod:`repro.runtime.state_explore`) and checks the
    EO/TO candidate linearization plus convergence on each.  ``engine``,
    ``reduction``, ``symmetry``, ``cache``, ``jobs``, ``steal``,
    ``spill``, ``por`` and ``instrumentation`` behave as in
    :func:`exhaustive_verify`.
    """
    from ..runtime.state_explore import explore_state_programs
    from ..runtime.state_system import StateBasedSystem

    if entry.kind != "SB":
        raise ValueError(f"{entry.name} is op-based; use exhaustive_verify")
    if engine not in ("fast", "naive"):
        raise ValueError(f"unknown engine {engine!r}: use 'fast' or 'naive'")
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    if jobs > 1:
        if engine == "naive":
            raise ValueError("jobs > 1 requires the fast engine")
        from .parallel import exhaustive_verify_parallel

        return exhaustive_verify_parallel(
            entry, programs, jobs=jobs, max_gossips=max_gossips,
            reduction=reduction, symmetry=symmetry, cache=cache,
            instrumentation=ins, steal=steal, spill=spill,
            max_configurations=max_configurations,
            oversubscribe=oversubscribe, por=por,
        )
    result = ExhaustiveResult(entry.name)
    visit = _make_visit(entry, result, cache and engine == "fast", ins)
    store: Optional[FingerprintStore] = None
    expanded = None
    if (spill is not None or fp_store) and engine == "fast":
        store = FingerprintStore(spill_dir=spill)
        if fingerprints is None:
            fingerprints = store.visited_set()
        expanded = store.expanded_map()
    if root_branch is None:
        ins.journal_event("scope.start", entry=entry.name, family="SB")
    if heartbeat is not None:
        heartbeat.begin_task(entry.name)

    def make_system() -> StateBasedSystem:
        return StateBasedSystem(
            entry.make_crdt(), replicas=sorted(programs),
            persistent=(por in ("source", "optimal")),
        )

    with ins.span("exhaustive.scope", entry=entry.name, kind="SB",
                  root_branch=root_branch):
        if engine == "naive":
            result.configurations = explore_state_programs_naive(
                make_system, programs, visit,
                max_gossips=max_gossips,
                max_configurations=max_configurations,
            )
        else:
            result.stats = ExploreStats()
            result.configurations = explore_state_programs(
                make_system, programs, visit,
                max_gossips=max_gossips,
                max_configurations=max_configurations,
                reduction=entry.reduction if reduction is None else reduction,
                symmetry=entry.symmetry if symmetry is None else symmetry,
                stats=result.stats,
                root_branch=root_branch,
                fingerprints=fingerprints,
                instrumentation=ins,
                fp_store=store,
                expanded=expanded,
                por=por,
                heartbeat=heartbeat,
            )
    if heartbeat is not None:
        heartbeat.emit()  # final beat: short scopes get at least one
    if store is not None:
        result.fp_store = store.stats
        if ins.enabled:
            ins.record_fp_store(store.stats, entry=entry.name)
            if store.stats.spilled:
                ins.journal_event(
                    "spill.promote", entry=entry.name,
                    spilled=store.stats.spilled,
                    evictions=store.stats.evictions,
                )
        store.close()
    if ins.enabled:
        if result.check_stats is not None:
            ins.record_check(result.check_stats, entry=entry.name)
        if root_branch is None:
            ins.record_result(entry.name, result)
            ins.journal_event(
                "scope.end", entry=entry.name, ok=result.ok,
                configurations=result.configurations,
            )
    return result


def standard_programs(entry: CRDTEntry) -> Dict[str, Program]:
    """A conflict-heavy two-replica program pair per data type."""
    name = entry.name
    if name == "G-Counter":
        return {
            "r1": [("inc", ()), ("read", ())],
            "r2": [("inc", ()), ("read", ())],
        }
    if "Counter" in name:
        return {
            "r1": [("inc", ()), ("read", ()), ("dec", ())],
            "r2": [("inc", ()), ("read", ())],
        }
    if "OR-Set" in name or name == "2P-Set (op)":
        if name == "2P-Set (op)":
            return {
                "r1": [("add", ("a",)), ("read", ())],
                "r2": [("add", ("b",)), ("read", ())],
            }
        return {
            "r1": [("add", ("a",)), ("remove", ("a",)), ("read", ())],
            "r2": [("add", ("a",)), ("read", ())],
        }
    if "LWW-Register" in name or name == "Multi-Value Reg.":
        return {
            "r1": [("write", ("a",)), ("read", ())],
            "r2": [("write", ("b",)), ("read", ())],
        }
    if name == "LWW-Element Set":
        return {
            "r1": [("add", ("a",)), ("remove", ("a",)), ("read", ())],
            "r2": [("add", ("a",)), ("read", ())],
        }
    if name == "2P-Set":
        return {
            "r1": [("add", ("a",)), ("read", ())],
            "r2": [("add", ("b",)), ("read", ())],
        }
    if name == "G-Set":
        return {
            "r1": [("add", ("a",)), ("read", ())],
            "r2": [("add", ("b",)), ("read", ())],
        }
    if name == "RGA":
        from ..core.sentinels import ROOT

        return {
            "r1": [("addAfter", (ROOT, "a")), ("read", ())],
            "r2": [("addAfter", (ROOT, "b")), ("read", ())],
        }
    if name == "RGA-addAt":
        return {
            "r1": [("addAt", ("a", 0)), ("read", ())],
            "r2": [("addAt", ("b", 0)), ("read", ())],
        }
    if name == "Wooki":
        from ..core.sentinels import BEGIN, END

        return {
            "r1": [("addBetween", (BEGIN, "a", END)), ("read", ())],
            "r2": [("addBetween", (BEGIN, "b", END)), ("read", ())],
        }
    raise KeyError(f"no standard programs for {name}")
