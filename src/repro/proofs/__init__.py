"""Proof-methodology harness (the mechanization substitute for Boogie)."""

from .chaos import (
    ChaosReport,
    ReplayResult,
    chaos_soak,
    default_plans,
    dump_trace,
    format_chaos,
    plan_by_name,
    replay_trace,
    run_chaos,
)
from .commutativity import (
    CommutativityViolation,
    check_commutativity,
    sampled_states,
)
from .coverage import CoverageReport, format_coverage, measure_coverage
from .differential import DifferentialReport, run_differential
from .exhaustive import (
    ExhaustiveResult,
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from .mutants import mutant_catalogue, verify_mutant
from .parallel import (
    default_jobs,
    exhaustive_verify_parallel,
    standard_scopes,
    verify_entries_parallel,
    verify_scopes_parallel,
)
from .refinement import RefinementReport, check_refinement
from .steal import (
    STEAL_DEFAULT,
    StealStats,
    exhaustive_verify_steal,
    verify_scopes_steal,
)
from .registry import (
    ALL_ENTRIES,
    EXTRA_ENTRIES,
    FIGURE_12_ENTRIES,
    CRDTEntry,
    entry_by_name,
)
from .report import (
    VerificationResult,
    format_exhaustive,
    format_metrics,
    format_phases,
    format_table,
    verify_all,
    verify_entry,
    verify_op_based,
    verify_state_based,
)
from .statebased import (
    StateBasedReport,
    check_fold_oracle,
    check_properties,
    collected_states,
)

__all__ = [
    "ChaosReport",
    "CoverageReport",
    "DifferentialReport",
    "ReplayResult",
    "chaos_soak",
    "default_plans",
    "dump_trace",
    "format_chaos",
    "plan_by_name",
    "replay_trace",
    "run_chaos",
    "exhaustive_verify_state",
    "format_coverage",
    "measure_coverage",
    "run_differential",
    "ExhaustiveResult",
    "default_jobs",
    "exhaustive_verify",
    "exhaustive_verify_parallel",
    "mutant_catalogue",
    "standard_programs",
    "standard_scopes",
    "verify_entries_parallel",
    "verify_mutant",
    "verify_scopes_parallel",
    "STEAL_DEFAULT",
    "StealStats",
    "exhaustive_verify_steal",
    "verify_scopes_steal",
    "ALL_ENTRIES",
    "CRDTEntry",
    "CommutativityViolation",
    "EXTRA_ENTRIES",
    "FIGURE_12_ENTRIES",
    "RefinementReport",
    "StateBasedReport",
    "VerificationResult",
    "check_commutativity",
    "check_fold_oracle",
    "check_properties",
    "check_refinement",
    "collected_states",
    "entry_by_name",
    "format_exhaustive",
    "format_metrics",
    "format_phases",
    "format_table",
    "sampled_states",
    "verify_all",
    "verify_entry",
    "verify_op_based",
    "verify_state_based",
]
