"""repro — Replication-Aware Linearizability (PLDI 2019), reproduced.

A library for specifying, implementing, simulating, and *checking* CRDTs
against the RA-linearizability criterion of Enea, Mutluergil, Petri, and
Wang:

* :mod:`repro.core` — labels, histories, sequential specifications,
  query-update rewritings, and the RA-linearizability checkers.
* :mod:`repro.specs` — sequential specifications of every data type the
  paper studies.
* :mod:`repro.crdts` — op-based and state-based CRDT implementations.
* :mod:`repro.runtime` — the paper's operational semantics, executable:
  causal-delivery op-based systems, adversarial state-based systems,
  compositions ⊗ / ⊗ts, schedulers.
* :mod:`repro.proofs` — the proof-methodology harness (Commutativity,
  Refinement, Prop1–Prop6) and the Fig. 12 verification table.
* :mod:`repro.clients` — client-program verification (Sec. 3.3).
"""

from .core import (
    BOTTOM,
    ComposedSpec,
    History,
    Label,
    RAResult,
    Timestamp,
    TimestampGenerator,
    VersionVector,
    check_ra_linearizable,
    check_strong_linearizable,
    check_update_order,
    execution_order_check,
    rewrite_history,
    timestamp_order_check,
)
from .core.sentinels import BEGIN, END, ROOT
from .runtime import Cluster, OpBasedSystem, StateBasedSystem

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "BEGIN",
    "BOTTOM",
    "ComposedSpec",
    "END",
    "History",
    "Label",
    "OpBasedSystem",
    "RAResult",
    "ROOT",
    "StateBasedSystem",
    "Timestamp",
    "TimestampGenerator",
    "VersionVector",
    "__version__",
    "check_ra_linearizable",
    "check_strong_linearizable",
    "check_update_order",
    "execution_order_check",
    "rewrite_history",
    "timestamp_order_check",
]
