"""JSON encoding of the value domain.

Arguments and return values of operations range over a small value domain —
scalars, tuples, frozensets, FrozenDicts, timestamps, version vectors.
``encode``/``decode`` map them to/from JSON-compatible structures (tagged
dicts for the non-JSON-native types), used by the schedule recorder to
persist executions and counterexamples.
"""

from typing import Any

from .freeze import FrozenDict
from .timestamp import BOTTOM, Timestamp, VersionVector

_TAG = "__repro__"


def encode(value: Any) -> Any:
    """Encode a domain value into JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if value is BOTTOM:
        return {_TAG: "bottom"}
    if isinstance(value, Timestamp):
        return {_TAG: "ts", "counter": value.counter, "replica": value.replica}
    if isinstance(value, VersionVector):
        return {_TAG: "vv", "entries": [list(e) for e in value.entries]}
    if isinstance(value, FrozenDict):
        return {
            _TAG: "fdict",
            "items": [[encode(k), encode(v)] for k, v in sorted(
                value.items(), key=repr
            )],
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode(v) for v in value]}
    if isinstance(value, frozenset):
        return {
            _TAG: "fset",
            "items": sorted((encode(v) for v in value), key=repr),
        }
    raise TypeError(f"cannot encode {value!r} ({type(value).__name__})")


def decode(data: Any) -> Any:
    """Inverse of :func:`encode`."""
    if not isinstance(data, dict):
        return data
    tag = data.get(_TAG)
    if tag == "bottom":
        return BOTTOM
    if tag == "ts":
        return Timestamp(data["counter"], data["replica"])
    if tag == "vv":
        return VersionVector(tuple(tuple(e) for e in data["entries"]))
    if tag == "fdict":
        return FrozenDict(
            (decode(k), decode(v)) for k, v in data["items"]
        )
    if tag == "tuple":
        return tuple(decode(v) for v in data["items"])
    if tag == "fset":
        return frozenset(decode(v) for v in data["items"])
    raise TypeError(f"cannot decode {data!r}")
