"""Causal convergence — the related-work criterion of Sec. 7.

Burckhardt et al.'s *causal convergence* (as recast by Bouajjani et al.
2017) differs from RA-linearizability in one load-bearing way: the total
order of updates explaining the execution is **arbitrary** — it need not be
consistent with the visibility relation.  (Queries are still justified by
the sub-sequence of updates visible to them.)  The paper pins the
non-compositionality of causal convergence on exactly this existential
choice.

This checker makes the comparison executable: RA-linearizability implies
causal convergence (every RA witness is a CC witness), and the Fig. 10
⊗-composition history *separates* them — causally convergent but not
RA-linearizable — which the tests and benchmarks demonstrate.
"""

from typing import Optional

from .history import History
from .linearization import iter_topological_orders
from .ralin import RAResult, _partition, _query_ok
from .rewriting import QueryUpdateRewriting, rewrite_history
from .spec import SequentialSpec


def check_causal_convergence(
    history: History,
    spec: SequentialSpec,
    gamma: Optional[QueryUpdateRewriting] = None,
    max_orders: Optional[int] = None,
) -> RAResult:
    """Decide causal convergence of ``history`` w.r.t. ``spec``.

    Identical to :func:`~repro.core.ralin.check_ra_linearizable` except the
    candidate update orders range over *all* permutations of the updates,
    not just the linear extensions of visibility.
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    updates, queries = _partition(rewritten, spec)

    prefix_frontiers = [spec.initial_frontier()]

    def prune(prefix, candidate) -> bool:
        del prefix_frontiers[len(prefix) + 1:]
        nxt = spec.step_frontier(prefix_frontiers[len(prefix)], candidate)
        if not nxt:
            return False
        prefix_frontiers.append(nxt)
        return True

    explored = 0
    # Empty predecessor map: any permutation is a candidate.
    for order in iter_topological_orders(
        sorted(updates, key=lambda l: l.uid), {}, prune=prune,
        max_orders=max_orders,
    ):
        explored += 1
        if all(_query_ok(rewritten, spec, order, updates, q) for q in queries):
            return RAResult(
                True,
                "found causal-convergence witness",
                update_order=order,
                explored=explored,
                rewritten=rewritten,
            )
    return RAResult(
        False,
        "no update permutation satisfies causal convergence",
        explored=explored,
        rewritten=rewritten,
    )
