"""Query-update rewritings γ and history rewriting (Def. 3.7, Example 3.6).

A query-update rewriting maps every label to one label (queries and updates)
or to a *pair* ``(query, update)`` (query-updates such as OR-Set's
``remove``).  Rewriting a history replaces each label by its image and
re-wires visibility:

* for a pair ``(q, u)``, the query is ordered before the update:
  ``(q, u) ∈ vis'``;
* for every ``(ℓ, ℓ') ∈ vis``: ``(upd(γℓ), qry(γℓ')) ∈ vis'`` — the query
  part of ``ℓ'`` sees exactly what ``ℓ'`` saw, and whoever saw ``ℓ`` sees its
  update part.
"""

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple, Union

from .history import History
from .label import Label

Rewritten = Union[Tuple[Label], Tuple[Label, Label]]


class QueryUpdateRewriting(ABC):
    """A query-update rewriting γ : L → L^{≤2}."""

    @abstractmethod
    def rewrite(self, label: Label) -> Rewritten:
        """Image of ``label``: a 1-tuple, or a (query, update) 2-tuple."""

    def qry(self, label: Label) -> Label:
        """``qry(γ(ℓ))``: the singleton itself, or the pair's first part."""
        return self.rewrite(label)[0]

    def upd(self, label: Label) -> Label:
        """``upd(γ(ℓ))``: the singleton itself, or the pair's second part."""
        return self.rewrite(label)[-1]


class IdentityRewriting(QueryUpdateRewriting):
    """γ = identity — for data types with no query-update operations."""

    def rewrite(self, label: Label) -> Rewritten:
        return (label,)


def rewrite_history(history: History, gamma: QueryUpdateRewriting) -> History:
    """The γ-rewriting ``γ(h)`` of a history (Def. 3.7)."""
    images: Dict[Label, Rewritten] = {}
    labels: List[Label] = []
    edges = []
    for label in history.labels:
        image = gamma.rewrite(label)
        if len(image) not in (1, 2):
            raise ValueError(
                f"rewriting must map to one or two labels, got {image!r}"
            )
        images[label] = image
        labels.extend(image)
        if len(image) == 2:
            edges.append((image[0], image[1]))
    for src, dst in history.effective():
        edges.append((images[src][-1], images[dst][0]))
    # The Def. 3.7 rules define vis' exactly; do not re-close it.  A cycle
    # in vis' would alternate within-pair (q → u) and cross edges that
    # follow original vis edges, so it would project to a cycle in vis —
    # rewriting an acyclic history stays acyclic and needs no re-check.
    return History(labels, edges, check=False, transitive=False)


class RewritingMap(QueryUpdateRewriting):
    """A rewriting given by a plain function ``Label -> tuple of labels``."""

    def __init__(self, fn) -> None:
        self._fn = fn
        self._cache: Dict[Label, Rewritten] = {}

    def rewrite(self, label: Label) -> Rewritten:
        # Cache so that repeated calls return the *same* label objects —
        # rewritten labels get fresh uids, and identity across calls matters
        # for building coherent histories.
        if label not in self._cache:
            self._cache[label] = self._fn(label)
        return self._cache[label]
