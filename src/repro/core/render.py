"""ASCII rendering of histories and linearizations.

Produces the per-replica-lane pictures the paper draws (Fig. 3, 5a, 9, 10):
one lane per origin replica, operations in generation order, followed by
the (transitively reduced) visibility edges that cross lanes.
"""

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .history import History
from .label import Label


def _short(label: Label) -> str:
    prefix = f"{label.obj}." if label.obj else ""
    inner = ",".join(repr(a) for a in label.args)
    suffix = ""
    if label.ret is not None:
        suffix = f"⇒{label.ret!r}"
    return f"{prefix}{label.method}({inner}){suffix}"


def transitive_reduction(history: History) -> Set[Tuple[Label, Label]]:
    """The minimal edge set whose closure is the history's closure."""
    closure = history.closure()
    reduced = set()
    for src, dst in closure:
        if not any(
            (src, mid) in closure and (mid, dst) in closure
            for mid in history.labels
            if mid != src and mid != dst
        ):
            reduced.add((src, dst))
    return reduced


def render_history(
    history: History,
    generation_order: Optional[Sequence[Label]] = None,
    title: str = "history",
) -> str:
    """Render a history as replica lanes plus cross-lane visibility edges."""
    order = [
        l for l in (generation_order or sorted(history.labels,
                                               key=lambda l: l.uid))
        if l in history.labels
    ]
    lanes: Dict[str, List[Label]] = {}
    for label in order:
        lanes.setdefault(label.origin or "?", []).append(label)

    names = {label: f"[{i}]" for i, label in enumerate(order)}
    lines = [f"{title}:"]
    for replica in sorted(lanes):
        steps = "  →  ".join(
            f"{names[l]} {_short(l)}" for l in lanes[replica]
        )
        lines.append(f"  {replica}: {steps}")

    cross = [
        (src, dst)
        for src, dst in sorted(
            transitive_reduction(history),
            key=lambda e: (names[e[0]], names[e[1]]),
        )
        if src.origin != dst.origin
    ]
    if cross:
        lines.append("  visibility across replicas:")
        for src, dst in cross:
            lines.append(f"    {names[src]} ≺ {names[dst]}")
    return "\n".join(lines)


def render_linearization(
    sequence: Sequence[Label], title: str = "linearization"
) -> str:
    """Render a witness linearization as a single arrow chain."""
    chain = " · ".join(_short(label) for label in sequence)
    return f"{title}: {chain}"
