"""Session guarantees (Terry et al. 1994) as history predicates.

Sec. 7 places RA-linearizability strictly above the session guarantees and
strictly below sequential consistency.  These checkers make the lower bound
executable on our histories: a *session* is the sequence of operations a
replica originated (recovered from label ``origin`` metadata and a
generation order).

* **Read Your Writes** — every operation sees all earlier operations of
  its own session.
* **Monotonic Reads** — the visible set only grows along a session.
* **Monotonic Writes** / **Writes Follow Reads** — visibility of an
  operation is inherited by whoever sees a later session operation; with a
  transitively-closed visibility (which the Fig. 7 semantics produces),
  both reduce to: if ℓ₁ precedes ℓ₂ in a session and ℓ₂ is visible to ℓ,
  then so is ℓ₁.

The op-based runtime guarantees all of these by construction; the checkers
exist to *verify* that (and to classify hand-built or adversarial
histories).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .history import History
from .label import Label


def sessions_of(order: Sequence[Label]) -> Dict[str, List[Label]]:
    """Group a generation order into per-origin sessions."""
    sessions: Dict[str, List[Label]] = {}
    for label in order:
        if label.origin is None:
            raise ValueError(f"label {label!r} has no origin replica")
        sessions.setdefault(label.origin, []).append(label)
    return sessions


@dataclass
class SessionReport:
    """Which session guarantees a history satisfies."""

    read_your_writes: bool = True
    monotonic_reads: bool = True
    session_order_inherited: bool = True
    violations: List[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return (
            self.read_your_writes
            and self.monotonic_reads
            and self.session_order_inherited
        )


def check_session_guarantees(
    history: History, generation_order: Sequence[Label]
) -> SessionReport:
    """Check the session guarantees over a history."""
    report = SessionReport()
    sessions = sessions_of(
        [l for l in generation_order if l in history.labels]
    )

    for replica, session in sessions.items():
        for i, later in enumerate(session):
            for earlier in session[:i]:
                if not history.sees(earlier, later):
                    report.read_your_writes = False
                    report.violations.append(
                        f"RYW: {later!r} at {replica} misses own earlier "
                        f"{earlier!r}"
                    )

    for replica, session in sessions.items():
        for earlier, later in zip(session, session[1:]):
            missing = history.visible_to(earlier) - history.visible_to(later)
            if missing - {later}:
                report.monotonic_reads = False
                report.violations.append(
                    f"MR: {later!r} at {replica} lost sight of "
                    f"{sorted(missing, key=lambda l: l.uid)!r}"
                )

    for replica, session in sessions.items():
        for i, later in enumerate(session):
            for earlier in session[:i]:
                for observer in history.visibly_after(later):
                    if not history.sees(earlier, observer):
                        report.session_order_inherited = False
                        report.violations.append(
                            f"MW/WFR: {observer!r} sees {later!r} but not "
                            f"its session predecessor {earlier!r}"
                        )

    return report
