"""Sequential specifications (Def. 3.1, Sec. 3.2).

A specification is described operationally: an initial abstract state and a
transition relation ``ϕ —ℓ→ ϕ'``.  Because some specifications are
nondeterministic (Wooki's ``addBetween``, the ``addAt3`` list spec of
Appendix C), ``step`` returns the *set* of successor states; an empty result
means the label is not admitted from that state.

Specification labels are partitioned into *queries* (identity transitions
that validate a return value) and *updates* (state transformers).  After the
query-update rewriting γ (Def. 3.7) has been applied, these are the only two
roles — the rewriting eliminates query-updates.
"""

import enum
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Iterable, List, Optional, Sequence, Set

from .label import Label


class Role(enum.Enum):
    """Role of a method in a specification or implementation."""

    QUERY = "query"
    UPDATE = "update"
    QUERY_UPDATE = "query-update"


class SequentialSpec(ABC):
    """Abstract base class of sequential specifications."""

    #: Human-readable name, e.g. ``"Spec(OR-Set)"``.
    name: str = "Spec"

    #: Guard on the replay frontier: nondeterministic specifications
    #: (Wooki, addAt2) can have exponentially many reachable states in the
    #: sequence length; rather than exhaust memory, replay raises
    #: :class:`~repro.core.errors.SpecViolation` past this many states.
    frontier_limit: int = 100_000

    @abstractmethod
    def initial(self) -> Any:
        """The initial abstract state ϕ₀ (hashable)."""

    @abstractmethod
    def step(self, state: Any, label: Label) -> Iterable[Any]:
        """Successor states of ``state`` under ``label`` (may be empty)."""

    @abstractmethod
    def role(self, method: str) -> Role:
        """Role of ``method`` — after rewriting, QUERY or UPDATE."""

    # ------------------------------------------------------------------
    # Replay machinery shared by all checkers
    # ------------------------------------------------------------------

    def is_query(self, label: Label) -> bool:
        return self.role(label.method) is Role.QUERY

    def is_update(self, label: Label) -> bool:
        return self.role(label.method) is Role.UPDATE

    def initial_frontier(self) -> FrozenSet[Any]:
        return frozenset([self.initial()])

    def step_frontier(
        self, frontier: Iterable[Any], label: Label
    ) -> FrozenSet[Any]:
        """Image of a set of states under one label."""
        from .errors import SpecViolation

        result: Set[Any] = set()
        for state in frontier:
            result.update(self.step(state, label))
            if len(result) > self.frontier_limit:
                raise SpecViolation(
                    f"{self.name}: replay frontier exceeded "
                    f"{self.frontier_limit} states at {label!r} — the "
                    "nondeterministic specification is intractable at this "
                    "history size"
                )
        return frozenset(result)

    def replay(self, sequence: Sequence[Label]) -> FrozenSet[Any]:
        """States reachable by executing ``sequence`` from the initial state.

        The sequence is admitted (``(L, seq) ∈ Spec``) iff the result is
        non-empty.
        """
        frontier = self.initial_frontier()
        for label in sequence:
            frontier = self.step_frontier(frontier, label)
            if not frontier:
                return frontier
        return frontier

    def admits(self, sequence: Sequence[Label]) -> bool:
        """``seq ∈ Spec``?"""
        return bool(self.replay(sequence))

    def first_rejected(self, sequence: Sequence[Label]) -> Optional[Label]:
        """The first label at which replay fails, or None if admitted."""
        frontier = self.initial_frontier()
        for label in sequence:
            frontier = self.step_frontier(frontier, label)
            if not frontier:
                return label
        return None


class ComposedSpec(SequentialSpec):
    """Composition ``Spec₁ ⊗ Spec₂ ⊗ …`` of per-object specifications.

    A sequence is admitted iff its projection on each object's labels is
    admitted by that object's specification (Sec. 5.1).  Operationally the
    composed state is a tuple of per-object states and each label steps only
    its own component — which accepts exactly the interleavings.
    """

    def __init__(self, specs: "dict[str, SequentialSpec]") -> None:
        self._names: List[str] = sorted(specs)
        self._specs = dict(specs)
        self.name = "⊗".join(self._specs[n].name for n in self._names)

    def initial(self) -> Any:
        return tuple(self._specs[n].initial() for n in self._names)

    def step(self, state: Any, label: Label) -> Iterable[Any]:
        if label.obj not in self._specs:
            return []
        index = self._names.index(label.obj)
        spec = self._specs[label.obj]
        successors = []
        for nxt in spec.step(state[index], label):
            successors.append(state[:index] + (nxt,) + state[index + 1:])
        return successors

    def role(self, method: str) -> Role:
        for spec in self._specs.values():
            try:
                return spec.role(method)
            except KeyError:
                continue
        raise KeyError(method)

    def role_of(self, label: Label) -> Role:
        """Role resolved through the label's object."""
        return self._specs[label.obj].role(label.method)

    def is_query(self, label: Label) -> bool:
        return self.role_of(label) is Role.QUERY

    def is_update(self, label: Label) -> bool:
        return self.role_of(label) is Role.UPDATE
