"""Sequential specifications (Def. 3.1, Sec. 3.2).

A specification is described operationally: an initial abstract state and a
transition relation ``ϕ —ℓ→ ϕ'``.  Because some specifications are
nondeterministic (Wooki's ``addBetween``, the ``addAt3`` list spec of
Appendix C), ``step`` returns the *set* of successor states; an empty result
means the label is not admitted from that state.

Specification labels are partitioned into *queries* (identity transitions
that validate a return value) and *updates* (state transformers).  After the
query-update rewriting γ (Def. 3.7) has been applied, these are the only two
roles — the rewriting eliminates query-updates.
"""

import enum
from abc import ABC, abstractmethod
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .label import Label


class Role(enum.Enum):
    """Role of a method in a specification or implementation."""

    QUERY = "query"
    UPDATE = "update"
    QUERY_UPDATE = "query-update"


class SequentialSpec(ABC):
    """Abstract base class of sequential specifications."""

    #: Human-readable name, e.g. ``"Spec(OR-Set)"``.
    name: str = "Spec"

    #: Guard on the replay frontier: nondeterministic specifications
    #: (Wooki, addAt2) can have exponentially many reachable states in the
    #: sequence length; rather than exhaust memory, replay raises
    #: :class:`~repro.core.errors.SpecViolation` past this many states.
    frontier_limit: int = 100_000

    @abstractmethod
    def initial(self) -> Any:
        """The initial abstract state ϕ₀ (hashable)."""

    @abstractmethod
    def step(self, state: Any, label: Label) -> Iterable[Any]:
        """Successor states of ``state`` under ``label`` (may be empty)."""

    @abstractmethod
    def role(self, method: str) -> Role:
        """Role of ``method`` — after rewriting, QUERY or UPDATE."""

    # ------------------------------------------------------------------
    # Replay machinery shared by all checkers
    # ------------------------------------------------------------------

    def is_query(self, label: Label) -> bool:
        return self.role(label.method) is Role.QUERY

    def is_update(self, label: Label) -> bool:
        return self.role(label.method) is Role.UPDATE

    def initial_frontier(self) -> FrozenSet[Any]:
        return frozenset([self.initial()])

    def step_frontier(
        self, frontier: Iterable[Any], label: Label
    ) -> FrozenSet[Any]:
        """Image of a set of states under one label."""
        from .errors import SpecViolation

        result: Set[Any] = set()
        for state in frontier:
            result.update(self.step(state, label))
            if len(result) > self.frontier_limit:
                raise SpecViolation(
                    f"{self.name}: replay frontier exceeded "
                    f"{self.frontier_limit} states at {label!r} — the "
                    "nondeterministic specification is intractable at this "
                    "history size"
                )
        return frozenset(result)

    def replay(self, sequence: Sequence[Label]) -> FrozenSet[Any]:
        """States reachable by executing ``sequence`` from the initial state.

        The sequence is admitted (``(L, seq) ∈ Spec``) iff the result is
        non-empty.
        """
        frontier = self.initial_frontier()
        for label in sequence:
            frontier = self.step_frontier(frontier, label)
            if not frontier:
                return frontier
        return frontier

    def admits(self, sequence: Sequence[Label]) -> bool:
        """``seq ∈ Spec``?"""
        return bool(self.replay(sequence))

    def first_rejected(self, sequence: Sequence[Label]) -> Optional[Label]:
        """The first label at which replay fails, or None if admitted."""
        frontier = self.initial_frontier()
        for label in sequence:
            frontier = self.step_frontier(frontier, label)
            if not frontier:
                return label
        return None


def label_content_key(label: Label) -> Tuple:
    """The label's content, without its unique identifier.

    Specifications are functions of a label's *content* — method,
    arguments, return value, timestamp, object (see the contract in
    ``docs/api.md``: ``step`` must never read ``uid``).  Replay results can
    therefore be shared between labels that agree on this key, which is
    what lets :class:`FrontierCache` reuse frontiers across the fresh-uid
    labels of distinct explored configurations.
    """
    return label.content_key


class _FrontierNode:
    """One prefix of replayed labels: its frontier and cached extensions."""

    __slots__ = ("frontier", "children")

    def __init__(self, frontier: FrozenSet[Any]) -> None:
        self.frontier = frontier
        self.children: Dict[Tuple, "_FrontierNode"] = {}


class FrontierCache:
    """A prefix trie of replay frontiers for one specification.

    ``SequentialSpec.replay`` recomputes every step of a sequence from the
    initial state.  The RA-linearizability checkers replay *many* closely
    related sequences — per query, the candidate update order restricted to
    the query's visible set; per configuration of an exhaustive run, a
    candidate that differs from the previous configuration's in a suffix —
    so consecutive replays share long prefixes.  The trie stores one node
    per distinct replayed prefix (keyed by :func:`label_content_key`, so
    fresh-uid copies of the same logical operation hit the same node) and
    computes each ``step_frontier`` exactly once.

    Rejected prefixes are cached too (an empty frontier), and walking
    stops at them: specifications are prefix-closed, so every extension of
    a rejected sequence is rejected.

    The trie is bounded by ``max_nodes``; past the bound, new nodes are
    still computed and returned but no longer attached (``unattached``
    counts them), so memory stays bounded at the cost of cache misses.
    """

    def __init__(self, spec: SequentialSpec, max_nodes: int = 100_000) -> None:
        self.spec = spec
        self.max_nodes = max_nodes
        self.hits = 0
        self.misses = 0
        self.unattached = 0
        self._root = _FrontierNode(spec.initial_frontier())
        self._count = 1

    def __len__(self) -> int:
        return self._count

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, Any]:
        """Cache counters as a plain dict (the observability snapshot).

        ``unattached`` is the trie's eviction analogue: nodes computed
        past ``max_nodes`` that were answered but never stored.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "nodes": self._count,
            "max_nodes": self.max_nodes,
            "unattached": self.unattached,
        }

    def _child(self, node: _FrontierNode, label: Label) -> _FrontierNode:
        key = label.content_key
        child = node.children.get(key)
        if child is not None:
            self.hits += 1
            return child
        self.misses += 1
        frontier = self.spec.step_frontier(node.frontier, label)
        child = _FrontierNode(frontier)
        if self._count < self.max_nodes:
            node.children[key] = child
            self._count += 1
        else:
            self.unattached += 1
        return child

    def replay(self, sequence: Sequence[Label]) -> FrozenSet[Any]:
        """Cached equivalent of :meth:`SequentialSpec.replay`."""
        node = self._root
        for label in sequence:
            node = self._child(node, label)
            if not node.frontier:
                return node.frontier
        return node.frontier

    def admits(self, sequence: Sequence[Label]) -> bool:
        """Cached equivalent of :meth:`SequentialSpec.admits`."""
        return bool(self.replay(sequence))

    def first_rejected(self, sequence: Sequence[Label]) -> Optional[Label]:
        """Cached equivalent of :meth:`SequentialSpec.first_rejected`."""
        node = self._root
        for label in sequence:
            node = self._child(node, label)
            if not node.frontier:
                return label
        return None

    def query_ok(self, updates: Sequence[Label], query: Label) -> bool:
        """``updates · query`` admitted?  (Condition (iii) of Def. 3.5.)

        Queries are cached as trie children like updates are — a query is
        just one more (identity) step of the replayed sequence.
        """
        node = self._root
        for label in updates:
            node = self._child(node, label)
            if not node.frontier:
                return False
        return bool(self._child(node, query).frontier)


class ComposedSpec(SequentialSpec):
    """Composition ``Spec₁ ⊗ Spec₂ ⊗ …`` of per-object specifications.

    A sequence is admitted iff its projection on each object's labels is
    admitted by that object's specification (Sec. 5.1).  Operationally the
    composed state is a tuple of per-object states and each label steps only
    its own component — which accepts exactly the interleavings.
    """

    def __init__(self, specs: "dict[str, SequentialSpec]") -> None:
        self._names: List[str] = sorted(specs)
        self._specs = dict(specs)
        self.name = "⊗".join(self._specs[n].name for n in self._names)

    def initial(self) -> Any:
        return tuple(self._specs[n].initial() for n in self._names)

    def step(self, state: Any, label: Label) -> Iterable[Any]:
        if label.obj not in self._specs:
            return []
        index = self._names.index(label.obj)
        spec = self._specs[label.obj]
        successors = []
        for nxt in spec.step(state[index], label):
            successors.append(state[:index] + (nxt,) + state[index + 1:])
        return successors

    def role(self, method: str) -> Role:
        for spec in self._specs.values():
            try:
                return spec.role(method)
            except KeyError:
                continue
        raise KeyError(method)

    def role_of(self, label: Label) -> Role:
        """Role resolved through the label's object."""
        return self._specs[label.obj].role(label.method)

    def is_query(self, label: Label) -> bool:
        return self.role_of(label) is Role.QUERY

    def is_update(self, label: Label) -> bool:
        return self.role_of(label) is Role.UPDATE
