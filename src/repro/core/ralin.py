"""RA-linearizability checkers (Def. 3.5 and Def. 3.7, Sec. 4).

Three checkers are provided:

* :func:`check_ra_linearizable` — the brute-force decision procedure for
  Def. 3.5/3.7: search over update linearizations consistent with
  visibility, with specification-prefix pruning.
* :func:`check_update_order` — validate one *candidate* update order
  against conditions (i)–(iii); used by the two proof-methodology
  instantiations below.
* :func:`execution_order_check` / :func:`timestamp_order_check` — the
  Sec. 4.1 (execution-order) and Sec. 4.2 (timestamp-order, virtual
  timestamps) candidate constructions.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from .history import History
from .label import Label
from .linearization import (
    history_timestamp,
    induced_predecessors,
    iter_topological_orders,
    merge_queries,
    ts_sort_key,
)
from .rewriting import QueryUpdateRewriting, rewrite_history
from .spec import SequentialSpec


@dataclass
class RAResult:
    """Outcome of an RA-linearizability check."""

    ok: bool
    reason: str = ""
    #: Witness update linearization (rewritten labels), when ``ok``.
    update_order: Optional[List[Label]] = None
    #: Witness full linearization (queries merged in), when ``ok``.
    linearization: Optional[List[Label]] = None
    #: Number of candidate update orders examined.
    explored: int = 0
    #: The rewritten history the check ran on.
    rewritten: Optional[History] = None
    #: Label at which the failing condition was detected (best effort).
    culprit: Optional[Label] = field(default=None)

    def __bool__(self) -> bool:
        return self.ok


def _partition(history: History, spec: SequentialSpec):
    updates = frozenset(l for l in history.labels if spec.is_update(l))
    queries = frozenset(l for l in history.labels if spec.is_query(l))
    rest = history.labels - updates - queries
    if rest:
        raise ValueError(
            f"labels {sorted(rest, key=lambda l: l.uid)!r} are neither "
            "queries nor updates of the specification; apply a query-update "
            "rewriting first"
        )
    return updates, queries


def _query_ok(
    history: History,
    spec: SequentialSpec,
    update_order: Sequence[Label],
    updates: FrozenSet[Label],
    query: Label,
) -> bool:
    """Condition (iii): ``seq↓vis⁻¹(q)∩Updates · q ∈ Spec``."""
    visible = history.visible_to(query) & updates
    subsequence = [u for u in update_order if u in visible]
    frontier = spec.replay(subsequence)
    if not frontier:
        return False
    return bool(spec.step_frontier(frontier, query))


def check_update_order(
    history: History,
    spec: SequentialSpec,
    update_order: Sequence[Label],
) -> RAResult:
    """Validate a candidate update linearization against Def. 3.5.

    ``history`` must already be rewritten (no query-updates).  Checks:
    (i) the candidate is consistent with visibility, (ii) it is admitted by
    the specification, (iii) every query is justified by its visible
    sub-sequence.
    """
    updates, queries = _partition(history, spec)
    if set(update_order) != set(updates):
        return RAResult(False, "candidate does not cover exactly the updates")

    position = {u: i for i, u in enumerate(update_order)}
    for src, dst in history.closure():
        if src in position and dst in position and position[src] > position[dst]:
            return RAResult(
                False,
                f"candidate violates visibility: {dst!r} precedes {src!r}",
                culprit=dst,
            )

    rejected = spec.first_rejected(list(update_order))
    if rejected is not None:
        return RAResult(
            False,
            f"update sequence not admitted by {spec.name} at {rejected!r}",
            culprit=rejected,
        )

    for query in sorted(queries, key=lambda l: l.uid):
        if not _query_ok(history, spec, update_order, updates, query):
            return RAResult(
                False,
                f"query {query!r} not justified by its visible updates",
                culprit=query,
            )

    full = merge_queries(history, list(update_order), queries)
    return RAResult(
        True,
        "candidate update order is an RA-linearization witness",
        update_order=list(update_order),
        linearization=full,
        explored=1,
        rewritten=history,
    )


def check_ra_linearizable(
    history: History,
    spec: SequentialSpec,
    gamma: Optional[QueryUpdateRewriting] = None,
    max_orders: Optional[int] = None,
    prune_with_spec: bool = True,
) -> RAResult:
    """Decide RA-linearizability of ``history`` w.r.t. ``spec`` (Def. 3.7).

    When ``gamma`` is given the history is first γ-rewritten.  The search
    enumerates linear extensions of the visibility closure restricted to
    updates; ``prune_with_spec`` abandons prefixes the specification already
    rejects (sound because specifications here are prefix-closed).
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    updates, queries = _partition(rewritten, spec)
    preds = induced_predecessors(rewritten, updates)

    prefix_frontiers: List[FrozenSet] = [spec.initial_frontier()]

    def prune(prefix: List[Label], candidate: Label) -> bool:
        if not prune_with_spec:
            return True
        # Keep the frontier stack in sync with the DFS prefix.
        del prefix_frontiers[len(prefix) + 1:]
        nxt = spec.step_frontier(prefix_frontiers[len(prefix)], candidate)
        if not nxt:
            return False
        if len(prefix_frontiers) == len(prefix) + 1:
            prefix_frontiers.append(nxt)
        else:
            prefix_frontiers[len(prefix) + 1] = nxt
        return True

    explored = 0
    for order in iter_topological_orders(
        sorted(updates, key=lambda l: l.uid), preds, prune=prune,
        max_orders=max_orders,
    ):
        explored += 1
        if not prune_with_spec and not spec.admits(order):
            continue
        ok = all(
            _query_ok(rewritten, spec, order, updates, q) for q in queries
        )
        if ok:
            full = merge_queries(rewritten, order, queries)
            return RAResult(
                True,
                "found RA-linearization",
                update_order=order,
                linearization=full,
                explored=explored,
                rewritten=rewritten,
            )
    reason = "no update linearization satisfies Def. 3.5"
    if max_orders is not None and explored >= max_orders:
        reason = f"gave up after exploring {explored} candidate orders"
    return RAResult(False, reason, explored=explored, rewritten=rewritten)


def execution_order_candidate(
    history: History, generation_order: Sequence[Label]
) -> List[Label]:
    """The execution-order update linearization (Sec. 4.1).

    ``generation_order`` lists the history's labels in the order their
    generators executed (the trace order); the candidate is its restriction
    to the labels of ``history``.
    """
    in_history = [l for l in generation_order if l in history.labels]
    missing = history.labels - set(in_history)
    if missing:
        raise ValueError(f"generation order misses labels: {missing!r}")
    return in_history


def execution_order_check(
    history: History,
    spec: SequentialSpec,
    generation_order: Sequence[Label],
    gamma: Optional[QueryUpdateRewriting] = None,
) -> RAResult:
    """Check the execution-order linearization (Theorem 4.4 instance).

    Rewritten labels inherit the generation position of the label they came
    from (the γ image of ℓ executes "where ℓ executed").
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    position: Dict[Label, int] = {}
    for index, original in enumerate(generation_order):
        if gamma is not None:
            for image in gamma.rewrite(original):
                position[image] = index
        else:
            position[original] = index
    updates = [l for l in rewritten.labels if spec.is_update(l)]
    updates.sort(key=lambda l: (position[l], l.uid))
    return check_update_order(rewritten, spec, updates)


def timestamp_order_check(
    history: History,
    spec: SequentialSpec,
    generation_order: Sequence[Label],
    gamma: Optional[QueryUpdateRewriting] = None,
) -> RAResult:
    """Check the timestamp-order linearization (Theorem 4.6 instance).

    Updates are ordered by ``tsh`` — their own timestamp, or the maximal
    visible ("virtual") timestamp — with ties broken by generation order, as
    prescribed in Sec. 4.2.
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    position: Dict[Label, int] = {}
    for index, original in enumerate(generation_order):
        if gamma is not None:
            for image in gamma.rewrite(original):
                position[image] = index
        else:
            position[original] = index
    updates = [l for l in rewritten.labels if spec.is_update(l)]
    updates.sort(
        key=lambda l: (
            ts_sort_key(history_timestamp(rewritten, l)),
            position[l],
            l.uid,
        )
    )
    return check_update_order(rewritten, spec, updates)
