"""RA-linearizability checkers (Def. 3.5 and Def. 3.7, Sec. 4).

Three checkers are provided:

* :func:`check_ra_linearizable` — the brute-force decision procedure for
  Def. 3.5/3.7: search over update linearizations consistent with
  visibility, with specification-prefix pruning.
* :func:`check_update_order` — validate one *candidate* update order
  against conditions (i)–(iii); used by the two proof-methodology
  instantiations below.
* :func:`execution_order_check` / :func:`timestamp_order_check` — the
  Sec. 4.1 (execution-order) and Sec. 4.2 (timestamp-order, virtual
  timestamps) candidate constructions.

For checking many related histories (the exhaustive explorers, the Fig. 12
harness), :class:`RACheckContext` wraps the candidate checkers with two
caches (see ``docs/performance.md``):

* a shared :class:`~repro.core.spec.FrontierCache` so condition-(ii)/(iii)
  replays that share visible-update prefixes reuse spec frontiers, and
* a verdict memo keyed on a canonical history fingerprint, so
  configurations with identical histories (distinct delivery
  interleavings, same visibility) are checked once.
"""

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .history import History
from .label import Label
from .linearization import (
    history_timestamp,
    induced_predecessors,
    iter_topological_orders,
    merge_queries,
    ts_sort_key,
)
from .rewriting import QueryUpdateRewriting, rewrite_history
from .spec import FrontierCache, SequentialSpec


@dataclass
class RAResult:
    """Outcome of an RA-linearizability check."""

    ok: bool
    reason: str = ""
    #: Witness update linearization (rewritten labels), when ``ok``.
    update_order: Optional[List[Label]] = None
    #: Witness full linearization (queries merged in), when ``ok`` and the
    #: caller asked for a witness (``want_witness``).
    linearization: Optional[List[Label]] = None
    #: Number of candidate update orders examined.
    explored: int = 0
    #: The rewritten history the check ran on.
    rewritten: Optional[History] = None
    #: Label at which the failing condition was detected (best effort).
    culprit: Optional[Label] = field(default=None)
    #: Which Def. 3.5 condition failed — ``"i"`` (visibility), ``"ii"``
    #: (admission), ``"iii"`` (query justification), or ``"cover"`` when
    #: the candidate does not even cover the updates.  None on success.
    condition: Optional[str] = None

    def __bool__(self) -> bool:
        return self.ok


def _partition(history: History, spec: SequentialSpec):
    updates = frozenset(l for l in history.labels if spec.is_update(l))
    queries = frozenset(l for l in history.labels if spec.is_query(l))
    rest = history.labels - updates - queries
    if rest:
        raise ValueError(
            f"labels {sorted(rest, key=lambda l: l.uid)!r} are neither "
            "queries nor updates of the specification; apply a query-update "
            "rewriting first"
        )
    return updates, queries


def _query_ok(
    history: History,
    spec: SequentialSpec,
    update_order: Sequence[Label],
    updates: FrozenSet[Label],
    query: Label,
    frontiers: Optional[FrontierCache] = None,
) -> bool:
    """Condition (iii): ``seq↓vis⁻¹(q)∩Updates · q ∈ Spec``."""
    visible = history.visible_to(query) & updates
    subsequence = [u for u in update_order if u in visible]
    if frontiers is not None:
        return frontiers.query_ok(subsequence, query)
    frontier = spec.replay(subsequence)
    if not frontier:
        return False
    return bool(spec.step_frontier(frontier, query))


def _violates_visibility(
    history: History, position: Dict[Label, int]
) -> bool:
    """Condition (i) violation test, without materializing the closure.

    The candidate extends ``vis`` restricted to updates iff no update has a
    (possibly transitive, possibly through queries) visibility ancestor
    placed at or after it.  One DP pass over the direct edges computes each
    label's maximal ancestor position — O(|L| + |vis|) instead of the
    quadratic transitive closure.
    """
    preds: Dict[Label, List[Label]] = {}
    for src, dst in history.vis:
        preds.setdefault(dst, []).append(src)
    anc: Dict[Label, int] = {}
    for root in preds:
        if root in anc:
            continue
        stack = [root]
        while stack:
            node = stack[-1]
            if node in anc:
                stack.pop()
                continue
            direct = preds.get(node, ())
            pending = [p for p in direct if p not in anc]
            if pending:
                stack.extend(pending)
                continue
            best = -1
            for p in direct:
                if anc[p] > best:
                    best = anc[p]
                pos = position.get(p, -1)
                if pos > best:
                    best = pos
            anc[node] = best
            stack.pop()
    return any(
        anc.get(update, -1) >= pos for update, pos in position.items()
    )


def check_update_order(
    history: History,
    spec: SequentialSpec,
    update_order: Sequence[Label],
    frontiers: Optional[FrontierCache] = None,
    want_witness: bool = True,
    check_vis: bool = True,
    timings: Optional[Dict[str, float]] = None,
) -> RAResult:
    """Validate a candidate update linearization against Def. 3.5.

    ``history`` must already be rewritten (no query-updates).  Checks:
    (i) the candidate is consistent with visibility, (ii) it is admitted by
    the specification, (iii) every query is justified by its visible
    sub-sequence.

    ``frontiers`` — an optional shared :class:`FrontierCache` for ``spec``;
    conditions (ii) and (iii) then replay through the trie instead of from
    scratch.  ``want_witness=False`` skips constructing the merged full
    linearization on success (the verdict and ``update_order`` witness are
    unaffected) — the exhaustive checkers only consume the verdict, and the
    merge is a large share of a successful check's cost.
    ``check_vis=False`` skips condition (i) — only pass it when the caller
    has already established that the candidate extends visibility (e.g. the
    execution-order candidate of a history whose visibility follows the
    generation order; see :class:`RACheckContext`).
    ``timings`` — an optional dict accumulating wall seconds per condition
    under keys ``"i"``/``"ii"``/``"iii"`` (instrumentation hook; adds two
    clock reads per condition when provided, nothing when None).
    """
    updates, queries = _partition(history, spec)
    if set(update_order) != set(updates):
        return RAResult(False, "candidate does not cover exactly the updates",
                        condition="cover")

    started = _time.perf_counter() if timings is not None else 0.0
    position = {u: i for i, u in enumerate(update_order)}
    violates = check_vis and _violates_visibility(history, position)
    if timings is not None:
        timings["i"] = timings.get("i", 0.0) + _time.perf_counter() - started
    if violates:
        # Rare path: rescan the closure for the exact offending pair.
        for src, dst in history.closure():
            if (src in position and dst in position
                    and position[src] > position[dst]):
                return RAResult(
                    False,
                    f"candidate violates visibility: {dst!r} precedes "
                    f"{src!r}",
                    culprit=dst,
                    condition="i",
                )

    started = _time.perf_counter() if timings is not None else 0.0
    if frontiers is not None:
        rejected = frontiers.first_rejected(list(update_order))
    else:
        rejected = spec.first_rejected(list(update_order))
    if timings is not None:
        timings["ii"] = timings.get("ii", 0.0) + _time.perf_counter() - started
    if rejected is not None:
        return RAResult(
            False,
            f"update sequence not admitted by {spec.name} at {rejected!r}",
            culprit=rejected,
            condition="ii",
        )

    started = _time.perf_counter() if timings is not None else 0.0
    failed_query = None
    for query in sorted(queries, key=lambda l: l.uid):
        if not _query_ok(history, spec, update_order, updates, query,
                         frontiers):
            failed_query = query
            break
    if timings is not None:
        timings["iii"] = (
            timings.get("iii", 0.0) + _time.perf_counter() - started
        )
    if failed_query is not None:
        return RAResult(
            False,
            f"query {failed_query!r} not justified by its visible updates",
            culprit=failed_query,
            condition="iii",
        )

    full = (
        merge_queries(history, list(update_order), queries)
        if want_witness else None
    )
    return RAResult(
        True,
        "candidate update order is an RA-linearization witness",
        update_order=list(update_order),
        linearization=full,
        explored=1,
        rewritten=history,
    )


def check_ra_linearizable(
    history: History,
    spec: SequentialSpec,
    gamma: Optional[QueryUpdateRewriting] = None,
    max_orders: Optional[int] = None,
    prune_with_spec: bool = True,
) -> RAResult:
    """Decide RA-linearizability of ``history`` w.r.t. ``spec`` (Def. 3.7).

    When ``gamma`` is given the history is first γ-rewritten.  The search
    enumerates linear extensions of the visibility closure restricted to
    updates; ``prune_with_spec`` abandons prefixes the specification already
    rejects (sound because specifications here are prefix-closed).
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    updates, queries = _partition(rewritten, spec)
    preds = induced_predecessors(rewritten, updates)

    prefix_frontiers: List[FrozenSet] = [spec.initial_frontier()]

    def prune(prefix: List[Label], candidate: Label) -> bool:
        if not prune_with_spec:
            return True
        # Keep the frontier stack in sync with the DFS prefix.
        del prefix_frontiers[len(prefix) + 1:]
        nxt = spec.step_frontier(prefix_frontiers[len(prefix)], candidate)
        if not nxt:
            return False
        if len(prefix_frontiers) == len(prefix) + 1:
            prefix_frontiers.append(nxt)
        else:
            prefix_frontiers[len(prefix) + 1] = nxt
        return True

    explored = 0
    for order in iter_topological_orders(
        sorted(updates, key=lambda l: l.uid), preds, prune=prune,
        max_orders=max_orders,
    ):
        explored += 1
        if not prune_with_spec and not spec.admits(order):
            continue
        ok = all(
            _query_ok(rewritten, spec, order, updates, q) for q in queries
        )
        if ok:
            full = merge_queries(rewritten, order, queries)
            return RAResult(
                True,
                "found RA-linearization",
                update_order=order,
                linearization=full,
                explored=explored,
                rewritten=rewritten,
            )
    reason = "no update linearization satisfies Def. 3.5"
    if max_orders is not None and explored >= max_orders:
        reason = f"gave up after exploring {explored} candidate orders"
    return RAResult(False, reason, explored=explored, rewritten=rewritten)


def execution_order_candidate(
    history: History, generation_order: Sequence[Label]
) -> List[Label]:
    """The execution-order update linearization (Sec. 4.1).

    ``generation_order`` lists the history's labels in the order their
    generators executed (the trace order); the candidate is its restriction
    to the labels of ``history``.
    """
    in_history = [l for l in generation_order if l in history.labels]
    missing = history.labels - set(in_history)
    if missing:
        raise ValueError(f"generation order misses labels: {missing!r}")
    return in_history


def _generation_positions(
    generation_order: Sequence[Label],
    gamma: Optional[QueryUpdateRewriting],
) -> Dict[Label, int]:
    """Generation position of every (rewritten) label.

    Rewritten labels inherit the generation position of the label they came
    from (the γ image of ℓ executes "where ℓ executed").
    """
    position: Dict[Label, int] = {}
    for index, original in enumerate(generation_order):
        if gamma is not None:
            for image in gamma.rewrite(original):
                position[image] = index
        else:
            position[original] = index
    return position


def execution_order_check(
    history: History,
    spec: SequentialSpec,
    generation_order: Sequence[Label],
    gamma: Optional[QueryUpdateRewriting] = None,
    frontiers: Optional[FrontierCache] = None,
    want_witness: bool = True,
    check_vis: bool = True,
    timings: Optional[Dict[str, float]] = None,
) -> RAResult:
    """Check the execution-order linearization (Theorem 4.4 instance).

    Updates are ordered by generation position, ties (impossible for
    distinct labels, but kept for defensive determinism) by uid.

    ``check_vis=False`` skips condition (i); sound when every visibility
    edge of ``history`` runs forward in ``generation_order`` (then every
    closure path only increases generation position, γ-rewriting included,
    so the execution-order candidate extends visibility by construction).
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    position = _generation_positions(generation_order, gamma)
    updates = [l for l in rewritten.labels if spec.is_update(l)]
    updates.sort(key=lambda l: (position[l], l.uid))
    return check_update_order(rewritten, spec, updates, frontiers=frontiers,
                              want_witness=want_witness, check_vis=check_vis,
                              timings=timings)


def timestamp_order_check(
    history: History,
    spec: SequentialSpec,
    generation_order: Sequence[Label],
    gamma: Optional[QueryUpdateRewriting] = None,
    frontiers: Optional[FrontierCache] = None,
    want_witness: bool = True,
    timings: Optional[Dict[str, float]] = None,
) -> RAResult:
    """Check the timestamp-order linearization (Theorem 4.6 instance).

    Updates are ordered by ``tsh`` — their own timestamp, or the maximal
    visible ("virtual") timestamp — with ties broken by generation position
    and then uid, as prescribed in Sec. 4.2.
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    position = _generation_positions(generation_order, gamma)
    updates = [l for l in rewritten.labels if spec.is_update(l)]
    updates.sort(
        key=lambda l: (
            ts_sort_key(history_timestamp(rewritten, l)),
            position[l],
            l.uid,
        )
    )
    return check_update_order(rewritten, spec, updates, frontiers=frontiers,
                              want_witness=want_witness, timings=timings)


# ----------------------------------------------------------------------
# Incremental checking context (shared caches across many histories)
# ----------------------------------------------------------------------


@dataclass
class CheckStats:
    """Counters describing one :class:`RACheckContext`'s cache behavior."""

    #: Candidate checks requested.
    checks: int = 0
    #: Checks answered by the verdict memo (canonical-fingerprint hit).
    verdict_hits: int = 0
    #: Checks whose history could not be canonicalized (memo bypassed).
    unkeyed: int = 0
    #: Frontier-trie step hits / misses (from the shared FrontierCache).
    frontier_hits: int = 0
    frontier_misses: int = 0
    #: Frontier-trie size / nodes computed past the bound ("evictions" —
    #: the trie never detaches nodes, it stops attaching new ones).
    frontier_nodes: int = 0
    frontier_unattached: int = 0
    #: Wall seconds per Def. 3.5 condition (only filled by a ``timed``
    #: context; keys "i"/"ii"/"iii").
    cond_seconds: Dict[str, float] = field(default_factory=dict)
    #: Failing checks per condition ("i"/"ii"/"iii"/"cover").
    failed_conditions: Dict[str, int] = field(default_factory=dict)

    @property
    def verdict_hit_ratio(self) -> float:
        return self.verdict_hits / self.checks if self.checks else 0.0

    @property
    def frontier_hit_ratio(self) -> float:
        total = self.frontier_hits + self.frontier_misses
        return self.frontier_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checks": self.checks,
            "verdict_hits": self.verdict_hits,
            "verdict_hit_ratio": self.verdict_hit_ratio,
            "unkeyed": self.unkeyed,
            "frontier_hits": self.frontier_hits,
            "frontier_misses": self.frontier_misses,
            "frontier_hit_ratio": self.frontier_hit_ratio,
            "frontier_nodes": self.frontier_nodes,
            "frontier_unattached": self.frontier_unattached,
            "cond_seconds": dict(self.cond_seconds),
            "failed_conditions": dict(self.failed_conditions),
        }


class RACheckContext:
    """Incremental EO/TO checking over many histories of one data type.

    Construct once per (spec, γ, linearization class) — e.g. per registry
    entry — and call :meth:`check` per history.  Two cache layers:

    * **Frontier reuse.**  All condition-(ii)/(iii) replays go through one
      shared :class:`FrontierCache`, so sequences sharing visible-update
      prefixes (across queries *and* across histories) cost one trie walk.
    * **Verdict memoization.**  The verdict of a candidate check is a pure
      function of the history and generation order *up to uid renaming*:
      the canonical fingerprint records label content in generation order
      plus visibility as position pairs, which determines the candidate
      order and every condition of Def. 3.5.  Histories with equal
      fingerprints (isomorphic histories — same operations, returns,
      timestamps, and visibility, differing only in label identity)
      therefore share one verdict; the memoized :class:`RAResult` is
      returned as-is, so its witness labels belong to the *first* such
      history.  Treat memoized results as read-only.

    Witness construction (``merge_queries``) is skipped by default
    (``want_witness=False``): the harnesses consume verdicts only.
    """

    def __init__(
        self,
        spec: SequentialSpec,
        gamma: Optional[QueryUpdateRewriting] = None,
        lin_class: str = "EO",
        want_witness: bool = False,
        max_frontier_nodes: int = 100_000,
        max_verdicts: int = 100_000,
        timed: bool = False,
    ) -> None:
        if lin_class not in ("EO", "TO"):
            raise ValueError(f"unknown linearization class {lin_class!r}")
        self.spec = spec
        self.gamma = gamma
        self.lin_class = lin_class
        self.want_witness = want_witness
        self.frontiers = FrontierCache(spec, max_nodes=max_frontier_nodes)
        self.max_verdicts = max_verdicts
        #: ``timed=True`` additionally accumulates per-condition wall time
        #: in ``stats.cond_seconds`` (a handful of clock reads per check;
        #: left off on uninstrumented runs).
        self.timed = timed
        self.stats = CheckStats()
        self._verdicts: Dict[Tuple, RAResult] = {}

    # -- canonical history fingerprint ---------------------------------

    @staticmethod
    def history_key(
        history: History, generation_order: Sequence[Label]
    ) -> Optional[Tuple]:
        """Canonical fingerprint of ``(history, generation_order)``.

        Labels are named by their position in the generation order, so the
        key is invariant under uid renaming but captures everything the
        candidate checks read: label content (method, args, return,
        timestamp, object, origin), generation positions (which determine
        the EO candidate and break TO ties), and the effective visibility
        relation.  Returns None when the history's labels are not all in
        the generation order (hand-built calls) — the check then simply
        runs unmemoized.
        """
        index = {label: i for i, label in enumerate(generation_order)}
        labels = history.labels
        if len(index) != len(generation_order):
            return None
        if not all(label in index for label in labels):
            return None
        if len(labels) == len(generation_order):
            # All checks passed above, so the sets coincide (the common
            # case: quiescent configurations contain every generated label).
            content = tuple(label.content_key for label in generation_order)
        else:
            content = tuple(
                label.content_key
                for label in generation_order if label in labels
            )
        edges = frozenset(
            (index[src], index[dst]) for src, dst in history.effective()
        )
        return (content, edges)

    # -- checking ------------------------------------------------------

    def check(
        self, history: History, generation_order: Sequence[Label]
    ) -> RAResult:
        """EO/TO candidate check with frontier reuse and verdict memo."""
        self.stats.checks += 1
        key = self.history_key(history, generation_order)
        if key is None:
            self.stats.unkeyed += 1
        else:
            cached = self._verdicts.get(key)
            if cached is not None:
                self.stats.verdict_hits += 1
                if not cached.ok and cached.condition is not None:
                    self.stats.failed_conditions[cached.condition] = (
                        self.stats.failed_conditions.get(cached.condition, 0)
                        + 1
                    )
                return cached
        hits, misses = self.frontiers.hits, self.frontiers.misses
        timings: Optional[Dict[str, float]] = {} if self.timed else None
        if self.lin_class == "EO":
            # When visibility runs forward in the generation order (always
            # true for runtime-produced histories), the EO candidate extends
            # it by construction — condition (i) can be skipped.
            vis_forward = key is not None and all(s < d for s, d in key[1])
            result = execution_order_check(
                history, self.spec, generation_order, self.gamma,
                frontiers=self.frontiers, want_witness=self.want_witness,
                check_vis=not vis_forward, timings=timings,
            )
        else:
            result = timestamp_order_check(
                history, self.spec, generation_order, self.gamma,
                frontiers=self.frontiers, want_witness=self.want_witness,
                timings=timings,
            )
        stats = self.stats
        stats.frontier_hits += self.frontiers.hits - hits
        stats.frontier_misses += self.frontiers.misses - misses
        stats.frontier_nodes = len(self.frontiers)
        stats.frontier_unattached = self.frontiers.unattached
        if timings:
            for cond, seconds in timings.items():
                stats.cond_seconds[cond] = (
                    stats.cond_seconds.get(cond, 0.0) + seconds
                )
        if not result.ok and result.condition is not None:
            stats.failed_conditions[result.condition] = (
                stats.failed_conditions.get(result.condition, 0) + 1
            )
        if key is not None and len(self._verdicts) < self.max_verdicts:
            self._verdicts[key] = result
        return result
