"""Timestamps, the bottom element ⊥, and version vectors.

The paper (Sec. 3.1) assumes a totally-ordered timestamp domain ``T`` with a
distinguished minimal element ⊥ used by operations that do not generate a
timestamp.  The standard CRDT realization — which the paper also adopts when
discussing ⊗ts (Sec. 5.3) — is a *Lamport timestamp*: a pair of a
monotonically-increasing counter and a replica identifier, ordered
lexicographically.  Replica identifiers break ties, so distinct replicas can
never produce equal timestamps.

Multi-value registers (Appendix E.1) use *version vectors* instead: maps
from replica ids to counters, with the usual product partial order.
"""

from dataclasses import dataclass
from functools import total_ordering
from typing import Dict, Iterable, Mapping, Optional, Tuple


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A Lamport timestamp ``(counter, replica)``, totally ordered."""

    counter: int
    replica: str

    def __post_init__(self) -> None:
        # Timestamps sit inside label content keys and spec states, so they
        # are hashed constantly by the caching layers; compute the hash once.
        object.__setattr__(self, "_hash", hash((self.counter, self.replica)))

    def __hash__(self) -> int:  # type: ignore[override]
        return self._hash

    def _key(self) -> Tuple[int, str]:
        return (self.counter, self.replica)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _Bottom):
            return False
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._key() < other._key()

    def __repr__(self) -> str:
        return f"ts({self.counter},{self.replica})"


class _Bottom:
    """The distinguished minimal timestamp ⊥ (a singleton).

    ``BOTTOM < ts`` for every real timestamp ``ts``; ``BOTTOM == BOTTOM``.
    """

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other: object) -> bool:
        return isinstance(other, Timestamp)

    def __le__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False

    def __ge__(self, other: object) -> bool:
        return other is BOTTOM

    def __eq__(self, other: object) -> bool:
        return other is BOTTOM

    _HASH = hash("⊥-timestamp")

    def __hash__(self) -> int:
        return self._HASH

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class TimestampGenerator:
    """Issues globally unique, monotonically increasing Lamport timestamps.

    A single generator instance models the per-object timestamp source of the
    operational semantics (Fig. 7): a fresh timestamp must be strictly larger
    than every timestamp of an operation *visible* at the issuing replica.
    The generator keeps one logical clock per replica; ``observe`` advances a
    replica's clock when effectors (or merged states) carrying larger
    timestamps arrive.

    The shared-timestamp composition ⊗ts (Sec. 5.3) is obtained by handing
    the *same* generator instance to several objects.

    ``persistent=True`` switches the clock table to copy-on-write: every
    mutation replaces ``_clocks`` with a fresh dict, so :meth:`snapshot`
    can return the table itself by reference (O(1)) instead of copying it.
    The exploration engine's persistent-snapshot mode takes hundreds of
    thousands of snapshots over tables of a handful of replicas — the
    reference snapshot is the win; the per-mutation copy is a few entries.
    """

    def __init__(self, persistent: bool = False) -> None:
        self._clocks: Dict[str, int] = {}
        self._persistent = persistent

    def fresh(self, replica: str) -> Timestamp:
        """Sample a fresh timestamp at ``replica``."""
        counter = self._clocks.get(replica, 0) + 1
        if self._persistent:
            self._clocks = {**self._clocks, replica: counter}
        else:
            self._clocks[replica] = counter
        return Timestamp(counter, replica)

    def observe(self, replica: str, ts: object) -> None:
        """Advance ``replica``'s clock past an observed timestamp."""
        if isinstance(ts, Timestamp):
            self.advance(replica, ts.counter)

    def advance(self, replica: str, counter: int) -> None:
        """Advance ``replica``'s clock to at least ``counter``.

        The message-clock half of the Lamport discipline: a delivered
        message carries its origin's clock value, which may exceed the
        carried operation's own timestamp (or the operation may not have
        one at all).
        """
        if counter > self._clocks.get(replica, 0):
            if self._persistent:
                self._clocks = {**self._clocks, replica: counter}
            else:
                self._clocks[replica] = counter

    def clock(self, replica: str) -> int:
        """Current logical clock value at ``replica`` (0 if never used)."""
        return self._clocks.get(replica, 0)

    def snapshot(self) -> Mapping[str, int]:
        """A token capturing every replica clock, for :meth:`restore`.

        The public face of the generator's state: runtime systems
        snapshot/restore through this pair instead of reaching into the
        private clock table.  The token is independent of later
        ``fresh``/``observe`` calls — an explicit copy normally, the
        never-mutated table itself under ``persistent=True``.
        """
        if self._persistent:
            return self._clocks
        return dict(self._clocks)

    def restore(self, token: Mapping[str, int]) -> None:
        """Rewind the clocks to a :meth:`snapshot` token (reusable)."""
        if self._persistent:
            # The token is an immutable-by-convention table: adopt it as-is
            # and keep it unmutated (the next mutation replaces the dict).
            self._clocks = dict(token) if not isinstance(token, dict) else token
        else:
            self._clocks = dict(token)


@dataclass(frozen=True)
class VersionVector:
    """An immutable version vector: replica id → counter, partially ordered.

    Used by the state-based multi-value register (Listing 7 / Appendix E.1).
    Missing entries count as 0.
    """

    entries: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(mapping: Mapping[str, int]) -> "VersionVector":
        """Build a vector from a mapping, dropping zero entries."""
        items = tuple(sorted((r, c) for r, c in mapping.items() if c > 0))
        return VersionVector(items)

    def get(self, replica: str) -> int:
        for r, c in self.entries:
            if r == replica:
                return c
        return 0

    def replicas(self) -> Tuple[str, ...]:
        return tuple(r for r, _ in self.entries)

    def bump(self, replica: str) -> "VersionVector":
        """Return a copy with ``replica``'s entry incremented."""
        mapping = dict(self.entries)
        mapping[replica] = mapping.get(replica, 0) + 1
        return VersionVector.of(mapping)

    def join(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum (least upper bound)."""
        mapping = dict(self.entries)
        for r, c in other.entries:
            if c > mapping.get(r, 0):
                mapping[r] = c
        return VersionVector.of(mapping)

    def leq(self, other: "VersionVector") -> bool:
        """Product partial order: every component ≤."""
        return all(c <= other.get(r) for r, c in self.entries)

    def lt(self, other: "VersionVector") -> bool:
        """Strictly less: ≤ and differs somewhere."""
        return self.leq(other) and self != other

    def concurrent(self, other: "VersionVector") -> bool:
        """Neither ≤ in either direction."""
        return not self.leq(other) and not other.leq(self)

    def __repr__(self) -> str:
        inner = ",".join(f"{r}:{c}" for r, c in self.entries)
        return f"vv[{inner}]"


def max_timestamp(timestamps: Iterable[object]) -> object:
    """Maximum of a collection of timestamps, ⊥ if empty.

    Used to compute the "virtual" timestamp of operations that do not
    generate one (Sec. 4.2): the maximal timestamp of any visible operation.
    """
    best: object = BOTTOM
    for ts in timestamps:
        if best is BOTTOM:
            if ts is not BOTTOM:
                best = ts
        elif ts is not BOTTOM and best < ts:  # type: ignore[operator]
            best = ts
    return best
