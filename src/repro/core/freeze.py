"""Helpers to turn values into hashable, immutable equivalents.

Operation labels (and replica states of the pure-functional CRDT
implementations) must be hashable so they can live in visibility relations,
sets of labels, and memo tables.  ``freeze`` converts the mutable containers
that naturally show up in return values (lists, sets, dicts) into their
immutable counterparts, recursively.
"""

from typing import Any


class FrozenDict(dict):
    """An immutable, hashable dictionary.

    Mutation methods raise :class:`TypeError`; the hash is computed lazily
    from the frozenset of items and cached.
    """

    def _immutable(self, *args, **kwargs):
        raise TypeError("FrozenDict is immutable")

    __setitem__ = _immutable
    __delitem__ = _immutable
    pop = _immutable
    popitem = _immutable
    clear = _immutable
    update = _immutable
    setdefault = _immutable

    def __copy__(self) -> "FrozenDict":
        return self

    def __deepcopy__(self, memo) -> "FrozenDict":
        # Immutable with immutable contents: sharing is safe.
        return self

    def __reduce__(self):
        return (FrozenDict, (dict(self),))

    def __hash__(self):  # type: ignore[override]
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(frozenset(self.items()))
            self.__dict__["_hash"] = cached
        return cached

    def set(self, key, value) -> "FrozenDict":
        """Return a new FrozenDict with ``key`` mapped to ``value``."""
        items = dict(self)
        items[key] = value
        return FrozenDict(items)

    def discard(self, key) -> "FrozenDict":
        """Return a new FrozenDict without ``key`` (no-op if absent)."""
        if key not in self:
            return self
        items = dict(self)
        del items[key]
        return FrozenDict(items)


#: Exact types that freeze to themselves; checked first because the vast
#: majority of frozen values (method args, return scalars, timestamps'
#: components) are plain scalars and the isinstance ladder dominated the
#: explorers' label-construction cost.
_ATOMIC = (str, int, float, bool, bytes, type(None))


def freeze(value: Any) -> Any:
    """Return a hashable, immutable version of ``value``.

    Lists and tuples become tuples, sets and frozensets become frozensets,
    dicts become :class:`FrozenDict`.  Scalars pass through unchanged.
    """
    if type(value) in _ATOMIC:
        return value
    if isinstance(value, (list, tuple)):
        return tuple([freeze(item) for item in value])
    if isinstance(value, (set, frozenset)):
        return frozenset([freeze(item) for item in value])
    if isinstance(value, dict):
        return FrozenDict(
            [(freeze(k), freeze(v)) for k, v in value.items()]
        )
    return value
