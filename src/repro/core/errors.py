"""Exception hierarchy for the RA-linearizability library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PreconditionViolation(ReproError):
    """A CRDT operation's generator precondition does not hold.

    The paper's pseudo-code (Listing 1, 5) annotates generators with
    ``precondition`` clauses that are *assumed* about the origin replica's
    state.  Invoking an operation whose precondition fails is a client error,
    reported through this exception.
    """


class IllFormedHistory(ReproError):
    """A history violates a structural requirement (e.g. cyclic visibility)."""


class SpecViolation(ReproError):
    """A sequence of labels is not admitted by a sequential specification."""


class CompositionError(ReproError):
    """Invalid use of the object-composition operators."""


class SchedulingError(ReproError):
    """An invalid step was requested from the replicated-system simulator."""
