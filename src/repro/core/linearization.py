"""Linear-extension machinery shared by the RA-linearizability checkers.

The brute-force checker of Def. 3.5 searches over *update* linearizations
only: because queries are validated against the sub-sequence of updates
visible to them, the order of updates (a linear extension of the visibility
closure restricted — through intermediate labels — to updates) completely
determines whether a witness exists.  Queries can then always be inserted
into any such update order consistently with visibility.

This module provides the topological-order enumeration with optional
specification-prefix pruning used by that search.
"""

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from .history import History
from .label import Label
from .timestamp import BOTTOM, Timestamp, max_timestamp


def induced_predecessors(
    history: History, nodes: Iterable[Label]
) -> Dict[Label, Set[Label]]:
    """Predecessor map of the visibility closure restricted to ``nodes``.

    Because the closure is taken over *all* labels first, orderings forced
    through intermediate labels (e.g. update ≺ query ≺ update) are kept.
    """
    node_set = set(nodes)
    preds: Dict[Label, Set[Label]] = {n: set() for n in node_set}
    for src, dst in history.closure():
        if src in node_set and dst in node_set:
            preds[dst].add(src)
    return preds


def iter_topological_orders(
    nodes: Sequence[Label],
    preds: Dict[Label, Set[Label]],
    prune: Optional[Callable[[List[Label], Label], bool]] = None,
    max_orders: Optional[int] = None,
) -> Iterator[List[Label]]:
    """Enumerate linear extensions of ``preds`` over ``nodes``.

    ``prune(prefix, candidate)`` — when provided — is called before extending
    ``prefix`` with ``candidate``; returning False abandons that branch.
    ``max_orders`` bounds the number of *complete* orders yielded.

    Nodes are explored in uid order for determinism.
    """
    ordered = sorted(nodes, key=lambda l: l.uid)
    remaining_preds = {n: set(preds.get(n, ())) & set(ordered) for n in ordered}
    prefix: List[Label] = []
    used: Set[Label] = set()
    yielded = 0

    def backtrack() -> Iterator[List[Label]]:
        nonlocal yielded
        if max_orders is not None and yielded >= max_orders:
            return
        if len(prefix) == len(ordered):
            yielded += 1
            yield list(prefix)
            return
        for node in ordered:
            if node in used:
                continue
            if remaining_preds[node] - used:
                continue
            if prune is not None and not prune(prefix, node):
                continue
            prefix.append(node)
            used.add(node)
            yield from backtrack()
            prefix.pop()
            used.remove(node)

    return backtrack()


def merge_queries(
    history: History,
    update_order: Sequence[Label],
    queries: Iterable[Label],
) -> List[Label]:
    """A full linear extension of visibility containing ``update_order``.

    Builds the constraint graph (visibility closure plus consecutive-update
    edges) and topologically sorts it, preferring to place each query as
    early as possible (right after the updates visible to it).
    """
    all_labels = list(update_order) + [q for q in queries]
    update_pos = {u: i for i, u in enumerate(update_order)}
    preds: Dict[Label, Set[Label]] = {l: set() for l in all_labels}
    label_set = set(all_labels)
    for src, dst in history.closure():
        if src in label_set and dst in label_set:
            preds[dst].add(src)
    for earlier, later in zip(update_order, update_order[1:]):
        preds[later].add(earlier)

    result: List[Label] = []
    placed: Set[Label] = set()
    # Deterministic ready-queue: queries first (eager), then updates in order.
    def sort_key(label: Label):
        if label in update_pos:
            return (1, update_pos[label], label.uid)
        return (0, 0, label.uid)

    pending = set(all_labels)
    while pending:
        ready = [l for l in pending if not (preds[l] - placed)]
        if not ready:
            raise ValueError("constraint graph is cyclic; update order "
                             "inconsistent with visibility")
        nxt = min(ready, key=sort_key)
        result.append(nxt)
        placed.add(nxt)
        pending.remove(nxt)
    return result


def ts_sort_key(ts: object):
    """A sort key placing ⊥ first and Lamport timestamps in order."""
    if ts is BOTTOM:
        return (0, 0, "")
    assert isinstance(ts, Timestamp)
    return (1, ts.counter, ts.replica)


def history_timestamp(history: History, label: Label) -> object:
    """``tsh(ℓ)`` (Sec. 4.2): the label's own timestamp, or the maximal
    timestamp among operations visible to it ("virtual" timestamp)."""
    if label.ts is not BOTTOM:
        return label.ts
    return max_timestamp(l.ts for l in history.visible_to(label))


def visible_updates(
    history: History, label: Label, updates: FrozenSet[Label]
) -> FrozenSet[Label]:
    """``vis⁻¹(ℓ) ∩ Updates``."""
    return history.visible_to(label) & updates
