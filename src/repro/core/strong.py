"""A classic, strong linearizability-style checker (for the Fig. 5a split).

The paper motivates RA-linearizability by showing (Fig. 5a) an OR-Set
execution that no *standard* linearization explains: if every operation —
including queries — must see the whole prefix of the linearization, the two
``read`` operations (which see all updates) cannot both return ``{a, b}``.

This checker decides exactly that stronger criterion: does there exist a
linear extension of visibility such that the *entire* sequence (queries
evaluated in place, seeing the whole prefix) is admitted by the sequential
specification?  RA-linearizability relaxes it by letting queries see a
sub-sequence; comparing the two on the same history reproduces the paper's
separation argument.
"""

from typing import List, Optional

from .history import History
from .label import Label
from .linearization import induced_predecessors, iter_topological_orders
from .rewriting import QueryUpdateRewriting, rewrite_history
from .spec import SequentialSpec


def check_strong_linearizable(
    history: History,
    spec: SequentialSpec,
    gamma: Optional[QueryUpdateRewriting] = None,
    max_orders: Optional[int] = None,
) -> Optional[List[Label]]:
    """Return a witness linearization, or None when none exists.

    Enumerates linear extensions of the visibility closure over *all* labels
    with specification-prefix pruning; a witness is a sequence admitted by
    the specification with every query evaluated against its full prefix.
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    labels = sorted(rewritten.labels, key=lambda l: l.uid)
    preds = induced_predecessors(rewritten, labels)

    frontiers = [spec.initial_frontier()]

    def prune(prefix: List[Label], candidate: Label) -> bool:
        del frontiers[len(prefix) + 1:]
        nxt = spec.step_frontier(frontiers[len(prefix)], candidate)
        if not nxt:
            return False
        frontiers.append(nxt)
        return True

    for order in iter_topological_orders(
        labels, preds, prune=prune, max_orders=max_orders
    ):
        return order
    return None
