"""Descriptive statistics over histories.

Used by the scaling benchmarks and by anyone tuning workloads: the cost of
RA-linearizability checking is driven not by operation count but by the
*shape* of the visibility relation — how many updates there are, how
concurrent they are, and how wide the widest antichain is (the search
branches over linear extensions of the update order).
"""

from dataclasses import dataclass
from typing import Optional

from .history import History
from .spec import SequentialSpec


@dataclass(frozen=True)
class HistoryStats:
    """Shape summary of one history."""

    operations: int
    updates: int
    queries: int
    vis_edges: int
    closure_edges: int
    concurrent_pairs: int
    max_antichain: int

    @property
    def closure_density(self) -> float:
        """Fraction of ordered pairs related by visibility (1 = total)."""
        n = self.operations
        possible = n * (n - 1) // 2
        return self.closure_edges / possible if possible else 1.0


def history_stats(
    history: History, spec: Optional[SequentialSpec] = None
) -> HistoryStats:
    """Compute :class:`HistoryStats`; update/query split needs ``spec``."""
    labels = history.labels
    updates = queries = 0
    if spec is not None:
        for label in labels:
            if spec.is_update(label):
                updates += 1
            elif spec.is_query(label):
                queries += 1
    return HistoryStats(
        operations=len(labels),
        updates=updates,
        queries=queries,
        vis_edges=len(history.vis),
        closure_edges=len(history.closure()),
        concurrent_pairs=len(history.concurrent_pairs()),
        max_antichain=greedy_max_antichain(history),
    )


def greedy_max_antichain(history: History) -> int:
    """A lower bound on the largest antichain (mutually concurrent set).

    Greedy: scan labels in uid order, keep those concurrent with everything
    kept so far; repeat from each starting label and take the best.  Exact
    for the small histories the checkers handle; a bound otherwise.
    """
    labels = sorted(history.labels, key=lambda l: l.uid)
    best = 0
    for start in range(len(labels)):
        chain = [labels[start]]
        for candidate in labels[start + 1:]:
            if all(history.concurrent(candidate, kept) for kept in chain):
                chain.append(candidate)
        best = max(best, len(chain))
    return best
