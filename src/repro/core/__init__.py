"""Core formalism: labels, histories, specifications, RA-linearizability."""

from .causal import check_causal_convergence
from .encoding import decode, encode
from .errors import (
    CompositionError,
    IllFormedHistory,
    PreconditionViolation,
    ReproError,
    SchedulingError,
    SpecViolation,
)
from .freeze import FrozenDict, freeze
from .history import History
from .render import render_history, render_linearization, transitive_reduction
from .sessions import SessionReport, check_session_guarantees, sessions_of
from .speccheck import SpecLintReport, lint_spec
from .stats import HistoryStats, greedy_max_antichain, history_stats
from .label import Label, fresh_uid
from .linearization import history_timestamp, ts_sort_key
from .ralin import (
    RAResult,
    check_ra_linearizable,
    check_update_order,
    execution_order_check,
    timestamp_order_check,
)
from .rewriting import (
    IdentityRewriting,
    QueryUpdateRewriting,
    RewritingMap,
    rewrite_history,
)
from .spec import ComposedSpec, Role, SequentialSpec
from .strong import check_strong_linearizable
from .timestamp import (
    BOTTOM,
    Timestamp,
    TimestampGenerator,
    VersionVector,
    max_timestamp,
)

__all__ = [
    "SpecLintReport",
    "lint_spec",
    "HistoryStats",
    "greedy_max_antichain",
    "history_stats",
    "SessionReport",
    "transitive_reduction",
    "sessions_of",
    "render_linearization",
    "render_history",
    "encode",
    "decode",
    "check_session_guarantees",
    "check_causal_convergence",
    "BOTTOM",
    "ComposedSpec",
    "CompositionError",
    "FrozenDict",
    "History",
    "IdentityRewriting",
    "IllFormedHistory",
    "Label",
    "PreconditionViolation",
    "QueryUpdateRewriting",
    "RAResult",
    "ReproError",
    "RewritingMap",
    "Role",
    "SchedulingError",
    "SequentialSpec",
    "SpecViolation",
    "Timestamp",
    "TimestampGenerator",
    "VersionVector",
    "check_ra_linearizable",
    "check_strong_linearizable",
    "check_update_order",
    "execution_order_check",
    "freeze",
    "fresh_uid",
    "history_timestamp",
    "max_timestamp",
    "rewrite_history",
    "timestamp_order_check",
    "ts_sort_key",
]
