"""Histories ``(L, vis)`` — the abstract view of CRDT executions (Sec. 3.1).

A history is a set of operation labels together with an acyclic *visibility*
relation: ``(l1, l2) ∈ vis`` when the effector of ``l1`` had been applied at
the origin replica of ``l2`` before ``l2`` executed.  For single-object
(op-based, causal-delivery) executions visibility is a strict partial order;
for object compositions it is merely acyclic (Sec. 5.1).
"""

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from .errors import IllFormedHistory
from .label import Label

Edge = Tuple[Label, Label]


class History:
    """An immutable history ``(L, vis)``.

    ``transitive`` controls what "visible" means:

    * ``True`` (default, for hand-built histories): the stored edges are a
      generator set and visibility is their transitive closure — matching
      the paper's single-object histories, where causal delivery makes
      visibility a (transitively closed) strict partial order.
    * ``False`` (used by the runtime): the stored edges are the *exact*
      visibility relation.  This matters for object compositions
      (Sec. 5.1), where causal delivery holds per object only and
      visibility is acyclic but **not** transitive — an operation may see
      another whose own dependencies (on a different object) it has not
      seen.

    Either way :meth:`closure` gives the transitive closure, which the
    checkers use for ordering constraints (linear extensions of a relation
    and of its closure coincide).
    """

    def __init__(
        self,
        labels: Iterable[Label],
        vis: Iterable[Edge] = (),
        check: bool = True,
        transitive: bool = True,
    ) -> None:
        self._labels: FrozenSet[Label] = frozenset(labels)
        self._vis: FrozenSet[Edge] = frozenset(vis)
        self._closure: Optional[FrozenSet[Edge]] = None
        self._preds: Optional[Dict[Label, Set[Label]]] = None
        self.transitive = transitive
        if check:
            self._validate()

    def _validate(self) -> None:
        for src, dst in self._vis:
            if src not in self._labels or dst not in self._labels:
                raise IllFormedHistory(
                    f"visibility edge ({src!r}, {dst!r}) mentions a label "
                    "outside the history"
                )
            if src == dst:
                raise IllFormedHistory(f"self-visibility on {src!r}")
        if self._has_cycle():
            raise IllFormedHistory("visibility relation is cyclic")

    def _has_cycle(self) -> bool:
        succs = self.successors_map()
        state: Dict[Label, int] = {}  # 0 = visiting, 1 = done

        for root in self._labels:
            if root in state:
                continue
            stack: List[Tuple[Label, Iterable[Label]]] = [
                (root, iter(succs.get(root, ())))
            ]
            state[root] = 0
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in state:
                        state[nxt] = 0
                        stack.append((nxt, iter(succs.get(nxt, ()))))
                        advanced = True
                        break
                    if state[nxt] == 0:
                        return True
                if not advanced:
                    state[node] = 1
                    stack.pop()
        return False

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def labels(self) -> FrozenSet[Label]:
        return self._labels

    @property
    def vis(self) -> FrozenSet[Edge]:
        return self._vis

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Label) -> bool:
        return label in self._labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return (
            self._labels == other._labels
            and self.effective() == other.effective()
        )

    def __hash__(self) -> int:
        return hash((self._labels, self.effective()))

    def __repr__(self) -> str:
        return f"History({len(self._labels)} labels, {len(self._vis)} vis edges)"

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------

    def successors_map(self) -> Dict[Label, Set[Label]]:
        """Direct-successor adjacency of the stored (unclosed) relation."""
        succs: Dict[Label, Set[Label]] = {}
        for src, dst in self._vis:
            succs.setdefault(src, set()).add(dst)
        return succs

    def closure(self) -> FrozenSet[Edge]:
        """Transitive closure of the visibility relation (cached)."""
        if self._closure is None:
            succs = self.successors_map()
            reach: Dict[Label, Set[Label]] = {}

            def explore(node: Label) -> Set[Label]:
                if node in reach:
                    return reach[node]
                reach[node] = set()  # placeholder; graph is acyclic
                acc: Set[Label] = set()
                for nxt in succs.get(node, ()):
                    acc.add(nxt)
                    acc |= explore(nxt)
                reach[node] = acc
                return acc

            edges: Set[Edge] = set()
            for label in self._labels:
                for target in explore(label):
                    edges.add((label, target))
            self._closure = frozenset(edges)
        return self._closure

    def effective(self) -> FrozenSet[Edge]:
        """The semantic visibility relation (see class docstring)."""
        return self.closure() if self.transitive else self._vis

    def sees(self, earlier: Label, later: Label) -> bool:
        """True when ``earlier`` is visible to ``later``."""
        return (earlier, later) in self.effective()

    def predecessors_map(self) -> Dict[Label, Set[Label]]:
        """``vis⁻¹`` of the effective relation, as a map (cached).

        Built once per history; the checkers call :meth:`visible_to` once
        per query per candidate order, so the O(|vis|) scan is paid a
        single time instead of per call.
        """
        if self._preds is None:
            acc: Dict[Label, Set[Label]] = {}
            for src, dst in self.effective():
                acc.setdefault(dst, set()).add(src)
            # Values stay plain sets: callers only take unions and
            # intersections, and the conversion pass showed up in the
            # exhaustive-suite profile.  Treat them as read-only.
            self._preds = acc
        return self._preds

    def visible_to(self, label: Label) -> AbstractSet[Label]:
        """All labels visible to ``label``: ``vis⁻¹(label)``."""
        return self.predecessors_map().get(label, frozenset())

    def visibly_after(self, label: Label) -> FrozenSet[Label]:
        """All labels that see ``label``."""
        return frozenset(dst for src, dst in self.effective() if src == label)

    def concurrent(self, l1: Label, l2: Label) -> bool:
        """``l1 ▷◁vis l2``: neither sees the other (Sec. 4.1)."""
        return l1 != l2 and not self.sees(l1, l2) and not self.sees(l2, l1)

    def concurrent_pairs(self) -> List[Tuple[Label, Label]]:
        """All unordered concurrent pairs (each reported once)."""
        ordered = sorted(self._labels, key=lambda l: l.uid)
        pairs = []
        for i, l1 in enumerate(ordered):
            for l2 in ordered[i + 1:]:
                if self.concurrent(l1, l2):
                    pairs.append((l1, l2))
        return pairs

    # ------------------------------------------------------------------
    # Derived histories
    # ------------------------------------------------------------------

    def restrict(self, keep: AbstractSet[Label]) -> "History":
        """Sub-history induced by the labels in ``keep``.

        The effective visibility is restricted, so the result is exact
        (``transitive=False``); for transitive inputs, orderings through
        dropped labels are preserved via the closure.
        """
        kept = self._labels & frozenset(keep)
        edges = [
            (a, b) for a, b in self.effective() if a in kept and b in kept
        ]
        return History(kept, edges, check=False, transitive=False)

    def project(self, obj: str) -> "History":
        """Projection on the operations of a single object (Sec. 5.1)."""
        return self.restrict({l for l in self._labels if l.obj == obj})

    def objects(self) -> FrozenSet[str]:
        """The set of object names occurring in the history."""
        return frozenset(l.obj for l in self._labels if l.obj is not None)

    def is_consistent_with(self, sequence: List[Label]) -> bool:
        """``vis ∪ seq`` acyclic — i.e. seq is a linear extension of vis."""
        position = {label: i for i, label in enumerate(sequence)}
        if set(position) != set(self._labels):
            return False
        return all(position[a] < position[b] for a, b in self.closure())
