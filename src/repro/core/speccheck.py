"""A linter for sequential specifications.

The checkers rely on structural properties of every ``SequentialSpec``:

* **queries are pure** — a query step never moves to a different state
  (Def. 3.5's condition (iii) silently assumes it: queries are *justified*,
  not replayed);
* **query verdicts are decisive** — at a given state, a query label either
  validates (returning exactly that state) or rejects;
* **prefix closure** — the spec-pruning search assumes a rejected prefix
  cannot be extended into an admitted sequence (true by construction for
  transition systems: ``replay`` of a longer sequence factors through the
  shorter one);
* **determinism report** — whether any explored update produced multiple
  successors (allowed — Wooki, addAt2 — but worth surfacing);
* **statelessness** — ``step``/``replay`` never mutate the spec object
  itself.  The incremental checkers construct one spec per registry entry
  and share it across every visited configuration (and one
  :class:`~repro.core.spec.FrontierCache` on top of it), which is only
  sound if replay keeps all state in the replayed values;
* **uid-independence** — ``step`` reads a label's *content* only, never
  its ``uid``.  The frontier trie keys prefixes by
  :func:`~repro.core.spec.label_content_key`, sharing replay results
  between fresh-uid copies of the same logical operation.

``lint_spec`` explores the spec's reachable states under a caller-provided
label alphabet and checks each property, reporting violations.
"""

import copy
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Sequence, Set

from .label import Label, fresh_uid
from .spec import Role, SequentialSpec

_MISSING = object()


@dataclass
class SpecLintReport:
    """Outcome of linting one specification."""

    spec_name: str
    ok: bool = True
    nondeterministic: bool = False
    states_explored: int = 0
    violations: List[str] = field(default_factory=list)

    def record(self, message: str) -> None:
        self.ok = False
        if len(self.violations) < 10:
            self.violations.append(message)


def lint_spec(
    spec: SequentialSpec,
    update_alphabet: Sequence[Label],
    query_probes: Callable[[object], Iterable[Label]],
    max_states: int = 200,
) -> SpecLintReport:
    """Explore reachable spec states and check the structural properties.

    ``update_alphabet`` — update labels to drive exploration with;
    ``query_probes(state)`` — query labels (with candidate returns) to
    evaluate at each reachable state.
    """
    report = SpecLintReport(spec.name)
    try:
        snapshot = copy.deepcopy(vars(spec))
    except Exception:  # pragma: no cover - exotic un-copyable spec state
        snapshot = None
    frontier = [spec.initial()]
    seen: Set = set(frontier)

    while frontier and report.states_explored < max_states:
        state = frontier.pop()
        report.states_explored += 1

        for query in query_probes(state):
            if spec.role(query.method) is not Role.QUERY:
                report.record(f"probe {query!r} is not a query")
                continue
            successors = list(spec.step(state, query))
            if len(successors) > 1:
                report.record(
                    f"query {query!r} has several successors at {state!r}"
                )
            for nxt in successors:
                if nxt != state:
                    report.record(
                        f"query {query!r} changed the state: "
                        f"{state!r} -> {nxt!r}"
                    )

        for update in update_alphabet:
            if spec.role(update.method) is Role.QUERY:
                report.record(f"alphabet label {update!r} is a query")
                continue
            successors = list(spec.step(state, update))
            if len(set(successors)) > 1:
                report.nondeterministic = True
            renamed = replace(update, uid=fresh_uid())
            if set(spec.step(state, renamed)) != set(successors):
                report.record(
                    f"step of {update!r} depends on the label uid "
                    "(frontier caching would be unsound)"
                )
            for nxt in successors:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    if snapshot is not None and vars(spec) != snapshot:
        changed = sorted(
            name for name in set(snapshot) | set(vars(spec))
            if snapshot.get(name, _MISSING) != vars(spec).get(name, _MISSING)
        )
        report.record(
            f"replay mutated the specification object (fields: {changed}); "
            "specs must be stateless to be shared across configurations"
        )
    return report


def counterexample_free(report: SpecLintReport) -> bool:
    """Convenience alias used by the tests."""
    return report.ok
