"""Distinguished list elements shared by specifications and implementations.

* ``ROOT`` — the pre-existing element ``◦`` of RGA (Listing 1): the
  timestamp tree is initialized with it, it can never be removed, and
  ``read`` never reports it.
* ``BEGIN`` / ``END`` — Wooki's ``◦begin`` and ``◦end`` W-characters
  (Appendix B.3): permanent head and tail of every W-string.
"""

ROOT = "◦"          # ◦
BEGIN = "◦begin"    # ◦begin
END = "◦end"        # ◦end
