"""Convergence / strong-eventual-consistency oracles.

RA-linearizability implies convergence (Sec. 4.1 discussion and Sec. 7):
since there is a unique total order of updates, any two replicas that have
seen the same set of updates are in the same state, and queries issued there
return the same values.  These helpers check that property directly on
executions produced by the runtime.
"""

from typing import Any, Dict, Iterable, List, Tuple


def all_states_equal(states: Iterable[Any]) -> bool:
    """True when every state in ``states`` compares equal."""
    iterator = iter(states)
    try:
        first = next(iterator)
    except StopIteration:
        return True
    return all(state == first for state in iterator)


def grouped_by_seen(
    replica_views: Dict[str, Tuple[frozenset, Any]]
) -> List[List[str]]:
    """Group replicas by the set of operations they have seen.

    ``replica_views`` maps replica id → (set of visible labels, state).
    Returns the groups (lists of replica ids) with more than one member —
    the groups on which convergence is checkable.
    """
    buckets: Dict[frozenset, List[str]] = {}
    for replica, (seen, _state) in replica_views.items():
        buckets.setdefault(seen, []).append(replica)
    return [sorted(group) for group in buckets.values() if len(group) > 1]


def check_convergence(
    replica_views: Dict[str, Tuple[frozenset, Any]]
) -> Tuple[bool, List[str]]:
    """Check that replicas with equal visible sets have equal states.

    Returns ``(ok, offending_replicas)``; ``offending_replicas`` is empty
    when convergence holds.
    """
    for group in grouped_by_seen(replica_views):
        states = [replica_views[r][1] for r in group]
        if not all_states_equal(states):
            return False, group
    return True, []
