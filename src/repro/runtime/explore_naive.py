"""Naive exhaustive explorers — the differential oracle baseline.

These are the original brute-force explorers: they branch by deep-copying
the whole system at every step and enumerate *raw* interleavings with no
partial-order reduction and no state deduplication.  They are kept (a) as
the ground truth the optimized :mod:`repro.runtime.explore_engine` is
differentially tested against — both must visit the same *set* of final
configurations up to history equivalence — and (b) as the baseline of the
``benchmarks/test_bench_explore_engine.py`` speedup measurement.

Two deliberate fixes over the historical code, preserved here because they
do not change which configurations are reachable:

* the ``max_configurations`` cutoff is *exact*: once the cap is reached the
  whole search stops, instead of merely suppressing further recursion while
  sibling branches keep visiting;
* ``counters`` and ``returns`` are flat dicts of ints/lists and are copied
  shallowly per branch instead of riding along in the whole-system
  ``deepcopy``.
"""

import copy
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import PreconditionViolation
from .state_system import StateBasedSystem
from .system import OpBasedSystem

#: A straight-line per-replica program: ``(method, args)`` steps, or
#: ``(method, args, obj)`` when the system hosts several objects.
Program = List[Tuple[Any, ...]]


def _branch_bookkeeping(
    counters: Dict[str, int], returns: Dict[str, List[Any]]
) -> Tuple[Dict[str, int], Dict[str, List[Any]]]:
    """Cheap per-branch copies of the program bookkeeping.

    ``counters`` maps replicas to ints and ``returns`` to flat lists of
    (already frozen) return values — a shallow per-key copy is enough.
    """
    return dict(counters), {r: list(v) for r, v in returns.items()}


def explore_op_programs_naive(
    make_system: Callable[[], OpBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[OpBasedSystem, Dict[str, List[Any]]], None],
    require_quiescence: bool = True,
    max_configurations: Optional[int] = None,
) -> int:
    """Run per-replica ``programs`` under **every** raw interleaving.

    ``visit(system, returns)`` is called on each final configuration, where
    ``returns[replica]`` lists the return values of that replica's program
    in order.  When ``require_quiescence`` is set, final configurations are
    fully delivered before visiting.  Returns the number of final
    configurations visited (counting revisits along distinct paths).
    """
    visited = 0

    def at_cap() -> bool:
        return max_configurations is not None and visited >= max_configurations

    def step(
        system: OpBasedSystem,
        counters: Dict[str, int],
        returns: Dict[str, List[Any]],
    ) -> None:
        nonlocal visited
        if at_cap():
            return
        moved = False
        for replica, program in programs.items():
            index = counters[replica]
            if index < len(program):
                moved = True
                b_system = copy.deepcopy(system)
                b_counters, b_returns = _branch_bookkeeping(counters, returns)
                step_spec = program[index]
                method, args = step_spec[0], step_spec[1]
                obj = step_spec[2] if len(step_spec) > 2 else None
                try:
                    label = b_system.invoke(replica, method, args, obj=obj)
                except PreconditionViolation:
                    continue  # this interleaving cannot run the op yet
                b_counters[replica] += 1
                b_returns[replica].append(label.ret)
                step(b_system, b_counters, b_returns)
                if at_cap():
                    return
        for replica in list(programs):
            for label in system.deliverable(replica):
                moved = True
                b_system = copy.deepcopy(system)
                b_counters, b_returns = _branch_bookkeeping(counters, returns)
                # Re-locate the copied label by uid inside the copy.
                copies = [
                    l for l in b_system.generation_order if l.uid == label.uid
                ]
                b_system.deliver(replica, copies[0])
                step(b_system, b_counters, b_returns)
                if at_cap():
                    return
        if not moved:
            visited += 1
            visit(system, returns)
        elif not require_quiescence and all(
            counters[r] == len(p) for r, p in programs.items()
        ):
            # Also report configurations where programs finished but
            # deliveries are still pending.
            visited += 1
            visit(system, returns)

    initial = make_system()
    step(
        initial,
        {replica: 0 for replica in programs},
        {replica: [] for replica in programs},
    )
    return visited


def explore_state_programs_naive(
    make_system: Callable[[], StateBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[StateBasedSystem, Dict[str, List[Any]]], None],
    max_gossips: int = 3,
    max_configurations: Optional[int] = None,
) -> int:
    """Run ``programs`` under every bounded state-based interleaving.

    Explores all interleavings of the next program operation of each
    replica and up to ``max_gossips`` gossip steps; ``visit`` fires on
    every configuration whose programs have finished — including ones with
    leftover gossip budget (partial propagation).
    """
    visited = 0

    def at_cap() -> bool:
        return max_configurations is not None and visited >= max_configurations

    def step(
        system: StateBasedSystem,
        counters: Dict[str, int],
        returns: Dict[str, List[Any]],
        gossip_budget: int,
    ) -> None:
        nonlocal visited
        if at_cap():
            return
        if all(counters[r] == len(p) for r, p in programs.items()):
            visited += 1
            visit(system, returns)

        for replica, program in programs.items():
            index = counters[replica]
            if index >= len(program):
                continue
            b_system = copy.deepcopy(system)
            b_counters, b_returns = _branch_bookkeeping(counters, returns)
            method, args = program[index]
            try:
                label = b_system.invoke(replica, method, args)
            except PreconditionViolation:
                continue
            b_counters[replica] += 1
            b_returns[replica].append(label.ret)
            step(b_system, b_counters, b_returns, gossip_budget)
            if at_cap():
                return

        if gossip_budget > 0:
            replicas = list(programs)
            for source in replicas:
                for target in replicas:
                    if source == target:
                        continue
                    b_system = copy.deepcopy(system)
                    b_counters, b_returns = _branch_bookkeeping(
                        counters, returns
                    )
                    b_system.gossip(source, target)
                    step(b_system, b_counters, b_returns, gossip_budget - 1)
                    if at_cap():
                        return

    step(
        make_system(),
        {replica: 0 for replica in programs},
        {replica: [] for replica in programs},
        max_gossips,
    )
    return visited
