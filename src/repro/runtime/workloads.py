"""Randomized workload generators, one per data type.

A workload proposes, given a replica's current state, a *valid* next
invocation (respecting the generator preconditions of Listing 1/5 etc.).
Workloads are deliberately biased toward the conflict patterns each paper
example exercises: OR-Set draws from a small value pool so concurrent
add/remove conflicts actually happen; list workloads insert fresh values at
observed anchors; 2P-Set adds each value at most once (the paper's usage
assumption).
"""

import itertools
import random
from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

from ..core.sentinels import BEGIN, END, ROOT
from ..crdts.opbased.rga import traverse, tree_elements

Invocation = Tuple[str, Tuple[Any, ...]]


class Workload(ABC):
    """Proposes the next invocation for a replica, given its state."""

    @abstractmethod
    def propose(self, state: Any, rng: random.Random) -> Optional[Invocation]:
        """A valid ``(method, args)``, or None when nothing applies."""


class CounterWorkload(Workload):
    def propose(self, state, rng) -> Optional[Invocation]:
        return rng.choice([("inc", ()), ("dec", ()), ("read", ())])


class GCounterWorkload(Workload):
    def propose(self, state, rng) -> Optional[Invocation]:
        return rng.choice([("inc", ()), ("inc", ()), ("read", ())])


class RegisterWorkload(Workload):
    def __init__(self, values: Tuple[Any, ...] = ("a", "b", "c", "d")):
        self._values = values

    def propose(self, state, rng) -> Optional[Invocation]:
        if rng.random() < 0.6:
            return ("write", (rng.choice(self._values),))
        return ("read", ())


class ORSetWorkload(Workload):
    def __init__(self, values: Tuple[Any, ...] = ("a", "b", "c")):
        self._values = values

    def propose(self, state, rng) -> Optional[Invocation]:
        roll = rng.random()
        if roll < 0.45:
            return ("add", (rng.choice(self._values),))
        if roll < 0.8:
            return ("remove", (rng.choice(self._values),))
        return ("read", ())


class TwoPSetWorkload(Workload):
    """Adds are globally fresh; removes only target live elements."""

    def __init__(self) -> None:
        self._fresh = itertools.count(1)

    def propose(self, state, rng) -> Optional[Invocation]:
        added, removed = state
        live = sorted(added - removed)
        roll = rng.random()
        if roll < 0.5 or not live:
            return ("add", (f"e{next(self._fresh)}",))
        if roll < 0.8:
            return ("remove", (rng.choice(live),))
        return ("read", ())


class GSetWorkload(Workload):
    def __init__(self, values: Tuple[Any, ...] = ("a", "b", "c", "d")):
        self._values = values

    def propose(self, state, rng) -> Optional[Invocation]:
        if rng.random() < 0.7:
            return ("add", (rng.choice(self._values),))
        return ("read", ())


class LWWSetWorkload(Workload):
    def __init__(self, values: Tuple[Any, ...] = ("a", "b", "c")):
        self._values = values

    def propose(self, state, rng) -> Optional[Invocation]:
        roll = rng.random()
        if roll < 0.4:
            return ("add", (rng.choice(self._values),))
        if roll < 0.75:
            return ("remove", (rng.choice(self._values),))
        return ("read", ())


class RGAWorkload(Workload):
    """Inserts fresh values after observed live anchors (or ◦)."""

    def __init__(self) -> None:
        self._fresh = itertools.count(1)

    def propose(self, state, rng) -> Optional[Invocation]:
        nodes, tombs = state
        live = [e for e in tree_elements(nodes) if e not in tombs]
        roll = rng.random()
        if roll < 0.55 or not live:
            anchor = rng.choice(live + [ROOT]) if live else ROOT
            return ("addAfter", (anchor, f"x{next(self._fresh)}"))
        if roll < 0.8:
            return ("remove", (rng.choice(sorted(live)),))
        return ("read", ())


class RGAAddAtWorkload(Workload):
    def __init__(self) -> None:
        self._fresh = itertools.count(1)

    def propose(self, state, rng) -> Optional[Invocation]:
        nodes, tombs = state
        visible = traverse(nodes, tombs)
        roll = rng.random()
        if roll < 0.55 or not visible:
            index = rng.randint(0, len(visible) + 1)
            return ("addAt", (f"x{next(self._fresh)}", index))
        if roll < 0.8:
            return ("remove", (rng.choice(visible),))
        return ("read", ())


class WookiWorkload(Workload):
    def __init__(self) -> None:
        self._fresh = itertools.count(1)

    def propose(self, state, rng) -> Optional[Invocation]:
        chars = state
        values = [c.value for c in chars]
        visible_live = [
            c.value for c in chars
            if c.visible and c.value not in (BEGIN, END)
        ]
        roll = rng.random()
        if roll < 0.55 or not visible_live:
            lo = rng.randrange(0, len(values) - 1)
            hi = rng.randrange(lo + 1, len(values))
            return (
                "addBetween",
                (values[lo], f"w{next(self._fresh)}", values[hi]),
            )
        if roll < 0.8:
            return ("remove", (rng.choice(visible_live),))
        return ("read", ())


class MVRegisterWorkload(Workload):
    def __init__(self, values: Tuple[Any, ...] = ("a", "b", "c", "d")):
        self._values = values

    def propose(self, state, rng) -> Optional[Invocation]:
        if rng.random() < 0.6:
            return ("write", (rng.choice(self._values),))
        return ("read", ())
