"""Causal broadcast over an adversarial network (compatibility module).

The op-based semantics (Fig. 7) *assumes* causal delivery with
exactly-once application; :class:`UnreliableCausalBroadcast` implements
that assumption over a network that drops, duplicates, delays, and
partitions.  The implementation now lives in
:mod:`repro.runtime.faults`, where one declarative :class:`FaultPlan`
drives both this op-based network and the state-based lossy gossip
driver — this module re-exports the op-based names for existing callers.
"""

from .faults import (  # noqa: F401  (re-exported API)
    BUFFERED,
    DELAYED,
    DELIVERED,
    DROPPED,
    DUPLICATE,
    IDLE,
    NetworkStats,
    UnreliableCausalBroadcast,
)

__all__ = [
    "BUFFERED",
    "DELAYED",
    "DELIVERED",
    "DROPPED",
    "DUPLICATE",
    "IDLE",
    "NetworkStats",
    "UnreliableCausalBroadcast",
]
