"""Causal broadcast over an adversarial network.

The op-based semantics (Fig. 7) *assumes* causal delivery with
exactly-once application.  Real networks duplicate, reorder, and drop.
This module closes the gap the paper takes as given: a broadcast layer
that, over such a network, still feeds
:class:`~repro.runtime.system.OpBasedSystem` deliveries in causal order,
exactly once.

Mechanics (the classic recipe):

* every generated label is broadcast as *packets*, one per target replica;
* the network adversary may duplicate a packet, delay it arbitrarily
  (reordering), or drop it;
* receivers **deduplicate** by label identity (exactly-once),
* **buffer** packets whose causal predecessors have not been applied yet
  (the Fig. 7 ``minvis`` check — the system itself tells us via
  ``deliverable``), and
* senders **retransmit** until every packet is acknowledged, so loss only
  delays delivery (eventual delivery).

``run_to_quiescence`` drives the adversary until every effector is applied
everywhere; the underlying system raises if causal order were ever
violated, so a clean run *is* the proof that the layer implements the
assumption.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.label import Label
from .system import OpBasedSystem


@dataclass
class NetworkStats:
    """What the adversary did during a run."""

    packets_sent: int = 0
    duplicates: int = 0
    drops: int = 0
    buffered: int = 0
    delivered: int = 0
    retransmissions: int = 0


class UnreliableCausalBroadcast:
    """Causal broadcast for one :class:`OpBasedSystem` over a bad network."""

    def __init__(
        self,
        system: OpBasedSystem,
        seed: int = 0,
        duplicate_probability: float = 0.2,
        drop_probability: float = 0.2,
    ) -> None:
        self.system = system
        self.rng = random.Random(seed)
        self.duplicate_probability = duplicate_probability
        self.drop_probability = drop_probability
        #: Packets in flight: (target replica, label).
        self.in_flight: List[Tuple[str, Label]] = []
        self._announced: Set[Label] = set()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def broadcast_new(self) -> None:
        """Put packets on the wire for labels not yet announced."""
        for label in self.system.generation_order:
            if label in self._announced:
                continue
            self._announced.add(label)
            for target in self.system.replicas:
                if target == label.origin:
                    continue
                self._send(target, label)

    def _send(self, target: str, label: Label) -> None:
        self.stats.packets_sent += 1
        if self.rng.random() < self.drop_probability:
            self.stats.drops += 1
            return  # lost; a later retransmission round resends it
        self.in_flight.append((target, label))
        if self.rng.random() < self.duplicate_probability:
            self.stats.duplicates += 1
            self.in_flight.append((target, label))

    def retransmit_missing(self) -> None:
        """Resend packets for labels still unapplied somewhere."""
        in_flight_pairs = set(self.in_flight)
        for label in self._announced:
            for target in self.system.replicas:
                if target == label.origin:
                    continue
                if label in self.system.seen(target):
                    continue
                if (target, label) not in in_flight_pairs:
                    self.stats.retransmissions += 1
                    self._send(target, label)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def deliver_one(self) -> bool:
        """Process one random in-flight packet; True when one was handled."""
        if not self.in_flight:
            return False
        index = self.rng.randrange(len(self.in_flight))
        target, label = self.in_flight.pop(index)
        if label in self.system.seen(target):
            return True  # duplicate: deduplicated, dropped on the floor
        if label in self.system.deliverable(target):
            self.system.deliver(target, label)
            self.stats.delivered += 1
        else:
            # Causal predecessor still missing: buffer (requeue).
            self.stats.buffered += 1
            self.in_flight.append((target, label))
        return True

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_to_quiescence(self, max_rounds: int = 10000) -> None:
        """Deliver everything everywhere despite the adversary."""
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("network failed to quiesce")
            self.broadcast_new()
            progressed = self.deliver_one()
            if not progressed or rounds % 25 == 0:
                self.retransmit_missing()
            if (
                not self.in_flight
                and self.system.pending_count() == 0
            ):
                self.retransmit_missing()
                if not self.in_flight:
                    return
