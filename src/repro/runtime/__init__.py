"""Replicated-system runtime: the paper's operational semantics, executable."""

from .causal_broadcast import NetworkStats, UnreliableCausalBroadcast
from .cluster import Cluster, ReplicaHandle
from .faults import (
    AdversaryTrace,
    CrashSpec,
    FaultPlan,
    GossipStats,
    LossyGossipDriver,
    PartitionWindow,
    RELIABLE_PLAN,
)
from .composition import (
    check_composed_ra_linearizable,
    combine_per_object,
    composed,
    composed_spec,
    composed_ts,
    per_object_rewriting,
)
from .explore_engine import (
    ExploreStats,
    explore_state_programs,
    op_config_key,
    op_orbit_key,
    state_config_key,
    state_orbit_key,
)
from .explore_naive import (
    explore_op_programs_naive,
    explore_state_programs_naive,
)
from .symmetry import SymmetryGroup, build_group, canon_key, replica_classes
from .recording import dumps, loads, record_schedule, replay_schedule
from .schedule import (
    explore_op_programs,
    random_op_execution,
    random_state_execution,
)
from .state_composition import ComposedStateSystem, ObjectMessage
from .state_system import Message, StateBasedSystem
from .system import DEFAULT_OBJECT, OpBasedSystem
from .workloads import (
    CounterWorkload,
    GCounterWorkload,
    GSetWorkload,
    LWWSetWorkload,
    MVRegisterWorkload,
    ORSetWorkload,
    RGAAddAtWorkload,
    RGAWorkload,
    RegisterWorkload,
    TwoPSetWorkload,
    Workload,
    WookiWorkload,
)

__all__ = [
    "AdversaryTrace",
    "CrashSpec",
    "FaultPlan",
    "GossipStats",
    "LossyGossipDriver",
    "NetworkStats",
    "PartitionWindow",
    "RELIABLE_PLAN",
    "UnreliableCausalBroadcast",
    "ComposedStateSystem",
    "ObjectMessage",
    "Cluster",
    "ReplicaHandle",
    "dumps",
    "loads",
    "record_schedule",
    "replay_schedule",
    "check_composed_ra_linearizable",
    "combine_per_object",
    "composed",
    "composed_spec",
    "composed_ts",
    "per_object_rewriting",
    "CounterWorkload",
    "DEFAULT_OBJECT",
    "GCounterWorkload",
    "GSetWorkload",
    "LWWSetWorkload",
    "MVRegisterWorkload",
    "Message",
    "ORSetWorkload",
    "OpBasedSystem",
    "RGAAddAtWorkload",
    "RGAWorkload",
    "RegisterWorkload",
    "StateBasedSystem",
    "TwoPSetWorkload",
    "Workload",
    "WookiWorkload",
    "ExploreStats",
    "explore_op_programs",
    "explore_op_programs_naive",
    "explore_state_programs",
    "explore_state_programs_naive",
    "op_config_key",
    "op_orbit_key",
    "random_op_execution",
    "random_state_execution",
    "state_config_key",
    "state_orbit_key",
    "SymmetryGroup",
    "build_group",
    "canon_key",
    "replica_classes",
]
