"""Exhaustive small-scope exploration of state-based executions.

The state-based semantics has an unbounded action alphabet (any snapshot
may be re-applied anywhere, any number of times), so exhaustive coverage
needs a bound: we explore all interleavings of

* the next program operation of each replica, and
* up to ``max_gossips`` gossip steps — a GENERATE immediately followed by
  one APPLY at a chosen target (message *loss* is covered by branches that
  simply never gossip; *duplication* by allowing a replica to re-apply the
  most recent snapshot of a peer it already applied).

``visit`` is called on every configuration whose programs have finished —
including ones with leftover gossip budget (partial propagation).
"""

import copy
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import PreconditionViolation
from .schedule import Program
from .state_system import StateBasedSystem


def explore_state_programs(
    make_system: Callable[[], StateBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[StateBasedSystem, Dict[str, List[Any]]], None],
    max_gossips: int = 3,
    max_configurations: Optional[int] = None,
) -> int:
    """Run ``programs`` under every bounded state-based interleaving."""
    visited = 0

    def step(
        system: StateBasedSystem,
        counters: Dict[str, int],
        returns: Dict[str, List[Any]],
        gossip_budget: int,
    ) -> None:
        nonlocal visited
        if max_configurations is not None and visited >= max_configurations:
            return
        if all(counters[r] == len(p) for r, p in programs.items()):
            visited += 1
            visit(system, returns)

        for replica, program in programs.items():
            index = counters[replica]
            if index >= len(program):
                continue
            branch = copy.deepcopy((system, counters, returns))
            b_system, b_counters, b_returns = branch
            method, args = program[index]
            try:
                label = b_system.invoke(replica, method, args)
            except PreconditionViolation:
                continue
            b_counters[replica] += 1
            b_returns[replica].append(label.ret)
            step(b_system, b_counters, b_returns, gossip_budget)

        if gossip_budget > 0:
            replicas = list(programs)
            for source in replicas:
                for target in replicas:
                    if source == target:
                        continue
                    branch = copy.deepcopy((system, counters, returns))
                    b_system, b_counters, b_returns = branch
                    b_system.gossip(source, target)
                    step(b_system, b_counters, b_returns, gossip_budget - 1)

    step(
        make_system(),
        {replica: 0 for replica in programs},
        {replica: [] for replica in programs},
        max_gossips,
    )
    return visited
