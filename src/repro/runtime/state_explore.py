"""Exhaustive small-scope exploration of state-based executions.

The state-based semantics has an unbounded action alphabet (any snapshot
may be re-applied anywhere, any number of times), so exhaustive coverage
needs a bound: we explore all interleavings of

* the next program operation of each replica, and
* up to ``max_gossips`` gossip steps — a GENERATE immediately followed by
  one APPLY at a chosen target (message *loss* is covered by branches that
  simply never gossip; *duplication* by allowing a replica to re-apply the
  most recent snapshot of a peer it already applied).

``visit`` is called on every configuration whose programs have finished —
including ones with leftover gossip budget (partial propagation).

The implementation lives in :mod:`repro.runtime.explore_engine` (sleep
sets, state dedup, copy-on-write snapshots — see ``docs/exploration.md``)
and is re-exported here under its historical name; the unoptimized
baseline survives as
:func:`repro.runtime.explore_naive.explore_state_programs_naive`.
"""

from .explore_engine import (  # noqa: F401  (re-exported API)
    ExploreStats,
    explore_state_programs,
)
from .schedule import Program  # noqa: F401  (historical import path)

__all__ = ["ExploreStats", "Program", "explore_state_programs"]
