"""Replica-symmetry machinery for the exploration engine.

Replicas running *identical* programs are interchangeable: permuting their
identities maps one reachable configuration onto another with the same
RA-linearizability verdict.  The engine therefore dedups configurations on
a canonical *orbit representative*: every replica-indexed component of the
fingerprint (states, seen-sets, visibility, clocks, counters, returns) is
renamed under each permutation of the symmetric replicas, and the
lexicographically least image is the orbit key.

Pinning rule
------------
Only replicas whose whole programs are syntactically equal are permuted;
a replica distinguished by an asymmetric program is *pinned* (mapped to
itself by every group element).  Two further guards pin everything:

* **Data collision** — if a symmetric replica's name occurs as a *value*
  inside any program step (method, argument, object name), renaming would
  corrupt payload data that merely happens to equal a replica id.
* **Group size** — the permutation group is capped at
  :data:`GROUP_LIMIT` elements; larger scopes fall back to the identity.

Soundness
---------
The orbit key only merges true syntactic permutation images, so every
merged configuration is observably equal to the kept representative up to
replica renaming.  Lamport timestamps tie-break on the replica *string*
(:class:`~repro.core.timestamp.Timestamp`), so a permuted execution can
leave a different tie-breaking footprint and simply be unreachable — then
no merge happens and nothing is lost.  Verdict invariance is enforced the
same way PR 1 enforced POR soundness: the naive engine stays the
differential oracle (``tests/runtime/test_explore_symmetry.py``) and
``CRDTEntry.symmetry`` is the per-entry escape hatch.
"""

from dataclasses import dataclass, fields, is_dataclass
from itertools import permutations
from math import factorial
from typing import AbstractSet, Any, Dict, List, Mapping, Sequence, Tuple

from ..core.freeze import FrozenDict, freeze
from ..core.timestamp import BOTTOM, Timestamp, VersionVector

#: Maximum permutation-group order the reducer will enumerate.  Scopes are
#: 2–3 replicas in practice (group order 2 or 6); the cap is a safety
#: valve against pathological many-replica programs.
GROUP_LIMIT = 720

#: Per-permutation memo caches are cleared past this many entries.
_CACHE_LIMIT = 1 << 15


def replica_classes(
    programs: Mapping[str, Sequence[Tuple]]
) -> Tuple[Tuple[str, ...], ...]:
    """Group replicas by syntactically identical programs."""
    grouped: Dict[Any, List[str]] = {}
    for replica, program in programs.items():
        grouped.setdefault(freeze(list(program)), []).append(replica)
    return tuple(tuple(members) for members in grouped.values())


def _mentions(value: Any, names) -> bool:
    """Does any string equal to a replica name occur (deeply) in ``value``?"""
    t = type(value)
    if t is str:
        return value in names
    if t in (tuple, list, set, frozenset):
        return any(_mentions(item, names) for item in value)
    if isinstance(value, dict):
        return any(
            _mentions(k, names) or _mentions(v, names)
            for k, v in value.items()
        )
    return False


@dataclass
class SymmetryGroup:
    """The replica-permutation group of a scope.

    ``maps`` lists every group element as a fixed-point-free mapping
    (identity pairs omitted; ``maps[0]`` is the identity ``{}``).
    """

    maps: List[Dict[str, str]]
    classes: Tuple[Tuple[str, ...], ...]
    pinned: Tuple[str, ...]

    @property
    def enabled(self) -> bool:
        return len(self.maps) > 1

    @property
    def order(self) -> int:
        return len(self.maps)


def build_group(
    programs: Mapping[str, Sequence[Tuple]],
    extra_names: Sequence[str] = (),
    limit: int = GROUP_LIMIT,
) -> SymmetryGroup:
    """The permutation group of ``programs`` under the pinning rule.

    ``extra_names`` are non-replica identifiers living in the same string
    namespace (object names): a collision with a symmetric replica name
    disables the reduction, like a data collision inside program steps.
    """
    classes = replica_classes(programs)
    symmetric = [members for members in classes if len(members) > 1]
    trivial = SymmetryGroup([{}], classes, tuple(programs))
    if not symmetric:
        return trivial
    names = frozenset(r for members in symmetric for r in members)
    if any(name in names for name in extra_names):
        return trivial
    for program in programs.values():
        for step in program:
            if _mentions(tuple(step), names):
                return trivial
    order = 1
    for members in symmetric:
        order *= factorial(len(members))
    if order > limit:
        return trivial
    maps: List[Dict[str, str]] = [{}]
    for members in symmetric:
        extended = []
        for image in permutations(members):
            delta = {a: b for a, b in zip(members, image) if a != b}
            for base in maps:
                combined = dict(base)
                combined.update(delta)
                extended.append(combined)
        # permutations() yields the identity image first, so the identity
        # mapping stays at index 0 through every extension round.
        maps = extended
    maps.sort(key=len)
    pinned = tuple(r for r in programs if r not in names)
    return SymmetryGroup(maps, classes, pinned)


def canon_key(value: Any, mapping: Mapping[str, str]) -> Any:
    """Rename replicas and build a totally ordered key in one pass.

    The result is a nested tuple whose leaves are type-tagged — every two
    keys produced from same-shaped values compare under ``<`` — and whose
    unordered containers (frozensets, :class:`FrozenDict`s,
    version-vector entries) are sorted *after* renaming, so a rename
    inside them re-normalizes.  Ordered tuples keep their order (sequence
    CRDT states are semantically ordered).  The key depends only on the
    value, never on hash seeds or object identity, so keys built in
    different worker processes compare and merge exactly.
    """
    t = type(value)
    if t is str:
        return ("s", mapping.get(value, value))
    if t is int:
        return ("i", value)
    if t is tuple:
        return ("t", tuple([canon_key(item, mapping) for item in value]))
    if t is frozenset:
        return (
            "f",
            tuple(sorted([canon_key(item, mapping) for item in value])),
        )
    if t is Timestamp:
        return ("T", value.counter, mapping.get(value.replica, value.replica))
    if value is BOTTOM:
        return ("⊥",)
    if t is bool:
        return ("b", value)
    if t is float:
        return ("x", value)
    if value is None:
        return ("n",)
    if t is FrozenDict:
        return (
            "d",
            tuple(sorted(
                [(canon_key(k, mapping), canon_key(v, mapping))
                 for k, v in value.items()]
            )),
        )
    if t is VersionVector:
        return (
            "v",
            tuple(sorted(
                [(mapping.get(r, r), c) for r, c in value.entries]
            )),
        )
    if t is bytes:
        return ("y", value)
    if is_dataclass(value):
        # Frozen record types (e.g. Wooki's WChar): field order is part of
        # the type, so the key keeps it.
        return (
            "c",
            t.__name__,
            tuple([canon_key(getattr(value, f.name), mapping)
                   for f in fields(value)]),
        )
    # Opaque leaf: reprs in this codebase are deterministic value renders.
    return ("o", t.__name__, repr(value))


def _canon_keys(value: Any, maps: Sequence[Mapping[str, str]],
                names: AbstractSet[str],
                memo: Dict[Any, Tuple[Any, bool]]) -> Tuple[Any, bool]:
    """:func:`canon_key` under every group element, in one traversal.

    Returns ``(key, True)`` when ``value`` mentions no renameable replica
    (its key is the same under every element — computed once and shared),
    or ``(keys, False)`` with one key per element of ``maps``.  Key
    equality with per-map :func:`canon_key` calls is exact; sharing the
    pure subkeys across fragment slots additionally lets downstream
    comparisons short-circuit on object identity.  ``memo`` caches
    container results by ``(type, value)`` — the same label ids, seen
    sets, and timestamps recur across thousands of fingerprint parts.
    """
    t = type(value)
    if t is str:
        if value in names:
            return [("s", m.get(value, value)) for m in maps], False
        return ("s", value), True
    if t is int:
        return ("i", value), True
    if t is tuple or t is frozenset:
        mk = (t, value)
        hit = memo.get(mk)
        if hit is not None:
            return hit
        subs = []
        pure = True
        for item in value:
            ks, p = _canon_keys(item, maps, names, memo)
            subs.append((ks, p))
            pure = pure and p
        tag = "t" if t is tuple else "f"
        if pure:
            items = [ks for ks, _ in subs]
            if t is frozenset:
                items.sort()
            result: Tuple[Any, bool] = ((tag, tuple(items)), True)
        elif t is tuple:
            result = ([
                (tag, tuple([ks if p else ks[i] for ks, p in subs]))
                for i in range(len(maps))
            ], False)
        else:
            result = ([
                (tag, tuple(sorted([ks if p else ks[i] for ks, p in subs])))
                for i in range(len(maps))
            ], False)
        if len(memo) > _CACHE_LIMIT:
            memo.clear()
        memo[mk] = result
        return result
    if t is Timestamp:
        if value.replica in names:
            return [
                ("T", value.counter, m.get(value.replica, value.replica))
                for m in maps
            ], False
        return ("T", value.counter, value.replica), True
    if value is BOTTOM:
        return ("⊥",), True
    if t is bool:
        return ("b", value), True
    if t is float:
        return ("x", value), True
    if value is None:
        return ("n",), True
    if t is FrozenDict:
        mk = (t, value)
        hit = memo.get(mk)
        if hit is not None:
            return hit
        subs = []
        pure = True
        for k, v in value.items():
            kks, kp = _canon_keys(k, maps, names, memo)
            vks, vp = _canon_keys(v, maps, names, memo)
            subs.append((kks, kp, vks, vp))
            pure = pure and kp and vp
        if pure:
            result = (
                ("d", tuple(sorted((kks, vks) for kks, _, vks, _ in subs))),
                True,
            )
        else:
            result = ([
                ("d", tuple(sorted(
                    (kks if kp else kks[i], vks if vp else vks[i])
                    for kks, kp, vks, vp in subs
                )))
                for i in range(len(maps))
            ], False)
        if len(memo) > _CACHE_LIMIT:
            memo.clear()
        memo[mk] = result
        return result
    if t is VersionVector:
        entries = value.entries
        if any(r in names for r, _ in entries):
            return [
                ("v", tuple(sorted((m.get(r, r), c) for r, c in entries)))
                for m in maps
            ], False
        return ("v", tuple(sorted(entries))), True
    if t is bytes:
        return ("y", value), True
    if is_dataclass(value):
        subs = []
        pure = True
        for f in fields(value):
            ks, p = _canon_keys(getattr(value, f.name), maps, names, memo)
            subs.append((ks, p))
            pure = pure and p
        if pure:
            return ("c", t.__name__, tuple(ks for ks, _ in subs)), True
        return [
            ("c", t.__name__, tuple(ks if p else ks[i] for ks, p in subs))
            for i in range(len(maps))
        ], False
    return ("o", t.__name__, repr(value)), True


def rename_transition(
    transition: Tuple, mapping: Mapping[str, str]
) -> Tuple:
    """Apply a replica permutation to an engine transition."""
    kind = transition[0]
    if kind == "inv":
        return (kind, mapping.get(transition[1], transition[1]),
                transition[2])
    if kind == "del":
        origin, seq = transition[2]
        return (kind, mapping.get(transition[1], transition[1]),
                (mapping.get(origin, origin), seq))
    return (kind, mapping.get(transition[1], transition[1]),
            mapping.get(transition[2], transition[2]))


class CanonFP:
    """A canonical fingerprint with a cached hash.

    The canonical key is a large nested tuple; plain tuples recompute
    their hash on every dict operation, which dominated the DFS hot path.
    Equality stays structural (with an identity fast path), so sets of
    ``CanonFP`` built in different worker processes union correctly —
    unpickling rebuilds the object and recomputes the hash locally, which
    keeps it valid under per-process string-hash randomization.
    """

    __slots__ = ("key", "_hash", "_enc")

    def __init__(self, key: Tuple) -> None:
        self.key = key
        self._hash = hash(key)
        #: Stable byte encoding, filled lazily by the fingerprint store
        #: (:mod:`repro.runtime.fp_store`); not pickled — digests are
        #: recomputed locally in each process.
        self._enc: Any = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, CanonFP)
            and self._hash == other._hash
            and self.key == other.key
        )

    def __reduce__(self):
        return (CanonFP, (self.key,))

    def __repr__(self) -> str:
        return f"CanonFP({self.key!r})"


class SymmetryReducer:
    """Maps fingerprints to the least image over a replica-permutation group.

    A fingerprint arrives split into per-replica ``parts`` (everything
    indexed by a single replica) plus a ``glob`` component (label data,
    visibility, gossip budget).  The engine converts each part into its
    *fragment vector* — the tuple of its :func:`canon_key` images under
    every group element — exactly once when the part is (re)computed,
    via :meth:`part_fragments`; the vectors ride along with the domain's
    dirty-tracked part table.  :meth:`canonical` then only permutes slots
    and compares: it never hashes or renames configuration data on the
    per-node path.  Fragment vectors are memoized by part value, so a
    value recurring after a DFS pop reuses the *same* fragment objects
    and candidate comparisons short-circuit on identity.

    :attr:`last_map` is the minimizing element of the latest
    :meth:`canonical` call; the engine uses it to translate sleep sets
    into the same canonical frame before recording or comparing them.
    """

    def __init__(self, replicas: Sequence[str], group: SymmetryGroup) -> None:
        self.replicas = list(replicas)
        self.group = group
        self.maps = group.maps
        self._slot_sources: List[List[str]] = []
        for mapping in self.maps:
            inverse = {b: a for a, b in mapping.items()}
            self._slot_sources.append(
                [inverse.get(r, r) for r in self.replicas]
            )
        self._part_frags: Dict[Any, Tuple] = {}
        self._glob_frags: Dict[Any, Tuple] = {}
        #: Replicas moved by at least one group element — values mentioning
        #: none of them have identical fragments under every element.
        self._names: set = set()
        for mapping in self.maps:
            self._names.update(mapping)
        #: Sub-value fragment memo shared by every part (see _canon_keys).
        self._sub_memo: Dict[Any, Tuple[Any, bool]] = {}
        self.last_map: Dict[str, str] = {}

    def part_fragments(self, part: Tuple) -> Tuple:
        """The tuple of ``part``'s canonical images, one per group element."""
        frags = self._part_frags.get(part)
        if frags is None:
            if len(self._part_frags) > _CACHE_LIMIT:
                self._part_frags.clear()
            keys, pure = _canon_keys(
                part, self.maps, self._names, self._sub_memo
            )
            frags = (keys,) * len(self.maps) if pure else tuple(keys)
            self._part_frags[part] = frags
        return frags

    def glob_fragments(self, glob: Tuple) -> Tuple:
        """Like :meth:`part_fragments`, for the replica-free component."""
        frags = self._glob_frags.get(glob)
        if frags is None:
            if len(self._glob_frags) > _CACHE_LIMIT:
                self._glob_frags.clear()
            keys, pure = _canon_keys(
                glob, self.maps, self._names, self._sub_memo
            )
            frags = (keys,) * len(self.maps) if pure else tuple(keys)
            self._glob_frags[glob] = frags
        return frags

    def canonical(
        self, part_frags: Mapping[str, Tuple], glob_frags: Tuple
    ) -> CanonFP:
        """The least candidate over the group; sets :attr:`last_map`."""
        best = None
        best_index = 0
        for index, sources in enumerate(self._slot_sources):
            candidate = (
                tuple([part_frags[source][index] for source in sources]),
                glob_frags[index],
            )
            if best is None or candidate < best:
                best = candidate
                best_index = index
        self.last_map = self.maps[best_index]
        return CanonFP(best)  # type: ignore[arg-type]

    def rename_transitions(self, transitions) -> Any:
        """Translate a sleep set by the latest minimizing permutation."""
        mapping = self.last_map
        if not mapping:
            return transitions
        return frozenset(
            rename_transition(t, mapping) for t in transitions
        )

    def unrename_transitions(self, transitions) -> Any:
        """Pull canonical-frame transitions back to the live frame.

        The inverse of :meth:`rename_transitions` under the *same*
        ``last_map`` — callers must use it before the next
        :meth:`canonical` call replaces the minimizing permutation.
        """
        mapping = self.last_map
        if not mapping:
            return transitions
        inverse = {b: a for a, b in mapping.items()}
        return frozenset(
            rename_transition(t, inverse) for t in transitions
        )
