"""The fast exploration engine behind the exhaustive small-scope checkers.

The naive explorers (:mod:`repro.runtime.explore_naive`) enumerate raw
interleavings and branch by deep-copying the whole system — cost explodes
factorially in the number of operations and deliveries.  This engine ports
both :func:`explore_op_programs` and :func:`explore_state_programs` onto a
single DFS core with three stacked optimizations:

1. **Commutativity-based sleep sets (DPOR).**  The paper's Commutativity
   property (Fig. 11, checked by :mod:`repro.proofs.commutativity`) proves
   that concurrent effectors commute, which is exactly the soundness
   condition for partial-order reduction: of two independent transitions,
   only one order per Mazurkiewicz trace needs exploring.  Actions at
   *distinct* replicas are independent structurally (they touch disjoint
   replica-local data); same-replica delivery pairs are declared
   independent only after a **dynamic commutativity probe** — the two
   effectors are applied in both orders to the replica's current state and
   compared — so a CRDT whose commutativity fails (e.g. a mutant) is
   automatically explored without reduction on exactly the branches where
   it matters.  ``reduction=False`` switches sleep sets off entirely.

2. **Visited-configuration deduplication.**  Each configuration gets a
   canonical fingerprint — program counters, per-replica CRDT state
   fingerprints (the :meth:`~repro.crdts.base.OpBasedCRDT.fingerprint`
   hook, default ``freeze``-based), label data in generation order,
   seen-sets and visibility over *logical* label ids, return values, and
   logical clocks.  Converging branches (e.g. delivery diamonds) are
   explored once.  Fingerprints are exact: two configurations merge only
   when observably equal, so deduplication is sound for arbitrary (even
   broken) CRDTs.

3. **Copy-on-write branching.**  Instead of ``copy.deepcopy`` per branch,
   the engine uses the O(|configuration|) ``snapshot``/``restore``
   protocol of :class:`~repro.runtime.system.OpBasedSystem` and
   :class:`~repro.runtime.state_system.StateBasedSystem`, which shares the
   immutable CRDT states between snapshots.  CRDTs with mutable states opt
   out via ``snapshot_safe = False`` and get the deepcopy fallback.

4. **Replica-symmetry reduction** (``symmetry=True``, off by default at
   this layer).  Replicas running identical programs are interchangeable;
   the fingerprint is mapped to the lexicographically least image under
   the permutation group of the symmetric replicas
   (:mod:`repro.runtime.symmetry`), so an orbit of configurations is
   explored once.  Replicas distinguished by asymmetric programs are
   pinned.  Sleep sets are translated into the same canonical frame
   before the subsumption check, keeping reductions 1 and 4 composable.

Fingerprints are computed *incrementally*: each replica-indexed component
(counter, returns, seen-set, clocks, state fingerprints) lives in a
per-replica part that ``apply`` dirties and ``push``/``pop`` save and
restore, so the per-node cost is proportional to the step's delta rather
than the whole configuration.

Correctness is guarded by a differential oracle (see
``tests/runtime/test_explore_engine.py`` and
``tests/runtime/test_explore_symmetry.py``): on every registry entry's
standard programs the engine visits the same *set* of final
configurations — same histories up to label-identity equivalence — as the
naive explorer, and with symmetry on its visits are a system of orbit
representatives partitioning the naive configuration set.

The engine reports an :class:`ExploreStats` record (configurations,
dedup hits, sleep-set prunes, peak DFS frontier, wall time) that
:class:`repro.proofs.exhaustive.ExhaustiveResult` surfaces.
"""

import copy
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import PreconditionViolation
from ..obs.instrument import Instrumentation, NULL_INSTRUMENTATION
from . import pstate
from .fp_store import stable_encode
from .state_system import StateBasedSystem
from .symmetry import (
    SymmetryReducer,
    build_group,
    canon_key,
)
from .system import OpBasedSystem

#: Per-state fingerprint caches are cleared past this many entries; the
#: peak size is reported via ``ExploreStats.state_fp_cache_peak`` and the
#: ``explore.state_fp_cache`` gauge.
_STATE_FP_CACHE_LIMIT = 1 << 13

#: A straight-line per-replica program: ``(method, args)`` steps, or
#: ``(method, args, obj)`` when the system hosts several objects.
Program = List[Tuple[Any, ...]]

#: A transition: ``("inv", replica, program index)``,
#: ``("del", replica, logical label id)`` or ``("gos", source, target)``.
Transition = Tuple[Any, ...]

#: A logical label id ``(origin replica, per-origin sequence number)`` —
#: stable across branches, unlike ``Label.uid`` which is freshly drawn on
#: every re-execution of the same program step.
Lid = Tuple[str, int]

#: Shared empty sleep set — the overwhelmingly common child sleep in the
#: source-DPOR loop, interned to skip per-step frozenset construction.
_EMPTY_SLEEP: FrozenSet[Transition] = frozenset()

#: Entry bound of the deferred-reversal dedup LRU (see
#: :class:`_DigestLRU`): long steal sessions previously grew
#: ``_deferred_seen`` without limit.
_DEFERRED_SEEN_LIMIT = 1 << 14

#: A wakeup (sub)tree: ordered transitions to child subtrees; ``None``
#: is the empty tree.  A frame's backtrack dict maps each candidate to
#: the pending subtree that should guide the child's schedule
#: (``por="optimal"``) or to ``None`` (``por="source"``).
WakeupTree = Optional[Dict[Transition, Any]]

#: Optimal DPOR: maximum size of the recorded-sleep difference a
#: re-converged state may patch-explore instead of re-walking its whole
#: subtree.  Larger differences fall back to a full re-exploration — a
#: patch of n branches costs n subtree entries, so past a few branches
#: the full walk's dedup is the better bet.
_PATCH_LIMIT = 4


@dataclass
class ExploreStats:
    """Counters describing one exploration run."""

    #: Final configurations reported to ``visit`` (distinct under dedup).
    configurations: int = 0
    #: Interior + final configurations expanded by the DFS.
    states_visited: int = 0
    #: Subtrees skipped because their fingerprint was already explored.
    states_deduped: int = 0
    #: Transitions skipped by the sleep-set reduction.
    branches_pruned: int = 0
    #: Dynamic effector/merge commutativity probes performed.
    commute_checks: int = 0
    #: Snapshot tokens taken (copy-on-write branching).
    snapshots: int = 0
    #: Whole-system deepcopies (fallback for ``snapshot_safe=False``).
    deepcopies: int = 0
    #: Maximum DFS stack depth (outstanding snapshots).
    peak_frontier: int = 0
    #: Wall-clock seconds spent exploring.
    wall_time: float = 0.0
    #: True when ``max_configurations`` stopped the search.
    capped: bool = False
    #: Order of the replica-permutation group used for orbit dedup
    #: (1 = symmetry off or fully pinned).
    symmetry_group: int = 1
    #: Replicas pinned by asymmetric programs (or by the data-collision
    #: guard) when symmetry was requested.
    pinned_replicas: int = 0
    #: Peak entry count of the per-state fingerprint cache.
    state_fp_cache_peak: int = 0
    #: Work-stealing only: nodes whose unexplored siblings were offloaded
    #: back onto the shared task queue.
    steal_splits: int = 0
    #: Work-stealing only: subtree tasks spawned by those splits.
    steal_spawned: int = 0
    #: Source-DPOR only: reversible races detected along executions.
    dpor_races: int = 0
    #: Source-DPOR only: enabled transitions never scheduled because no
    #: race required them — the interleavings sleep sets alone would
    #: still have explored.
    dpor_redundant_avoided: int = 0
    #: Source-DPOR only: race reversals at stolen-prefix nodes, re-run
    #: locally as deferred subtree tasks.
    dpor_deferred: int = 0
    #: Source-DPOR only: frames conservatively re-expanded to the full
    #: enabled set (missing footprint or disabled race candidate).
    dpor_full_expansions: int = 0
    #: Optimal DPOR only: race reversals grafted into a frame's wakeup
    #: tree with a non-empty pending continuation.
    dpor_wakeup_branches: int = 0
    #: Optimal DPOR only: frames re-expanded because a race candidate
    #: failed its precondition at apply time — the narrow residue of the
    #: source engine's full expansions (never counted there).
    dpor_wakeup_fallbacks: int = 0
    #: Optimal DPOR only: disabled residual demands dropped because the
    #: vacuity walk proved the demanded event ordered after the race
    #: frame's transition in every execution.
    dpor_vacuity_drops: int = 0
    #: Source/optimal DPOR: peak entry count of the deferred-reversal
    #: dedup LRU (bounded; evictions cost re-runs, never coverage).
    dpor_deferred_seen: int = 0
    #: Optimal DPOR only: re-converged states cut by exploring just the
    #: recorded-sleep difference instead of the whole subtree.
    dpor_patch_cuts: int = 0
    #: Persistent-snapshot mode: hash-trie nodes allocated (path copies).
    pstate_copied: int = 0
    #: Persistent-snapshot mode: child pointers reused by those copies —
    #: structure shared instead of duplicated.
    pstate_shared: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of expansions avoided by deduplication."""
        total = self.states_visited + self.states_deduped
        return self.states_deduped / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "configurations": self.configurations,
            "states_visited": self.states_visited,
            "states_deduped": self.states_deduped,
            "branches_pruned": self.branches_pruned,
            "commute_checks": self.commute_checks,
            "snapshots": self.snapshots,
            "deepcopies": self.deepcopies,
            "peak_frontier": self.peak_frontier,
            "wall_time": self.wall_time,
            "capped": self.capped,
            "dedup_ratio": self.dedup_ratio,
            "symmetry_group": self.symmetry_group,
            "pinned_replicas": self.pinned_replicas,
            "state_fp_cache_peak": self.state_fp_cache_peak,
            "steal_splits": self.steal_splits,
            "steal_spawned": self.steal_spawned,
            "dpor_races": self.dpor_races,
            "dpor_redundant_avoided": self.dpor_redundant_avoided,
            "dpor_deferred": self.dpor_deferred,
            "dpor_full_expansions": self.dpor_full_expansions,
            "dpor_wakeup_branches": self.dpor_wakeup_branches,
            "dpor_wakeup_fallbacks": self.dpor_wakeup_fallbacks,
            "dpor_vacuity_drops": self.dpor_vacuity_drops,
            "dpor_deferred_seen": self.dpor_deferred_seen,
            "dpor_patch_cuts": self.dpor_patch_cuts,
            "pstate_copied": self.pstate_copied,
            "pstate_shared": self.pstate_shared,
        }


class _SearchCapped(Exception):
    """Raised internally to stop the whole search at the exact cap."""


class _DigestLRU:
    """Bounded dedup of deferred race-reversal tasks.

    Keys — ``(prefix, transition)`` pairs — are collapsed to 16-byte
    :func:`~repro.runtime.fp_store.stable_encode` digests so a long
    steal session holds a fixed 16 bytes per remembered task instead of
    an unbounded set of transition tuples.  Eviction at the LRU bound
    only costs a duplicate subtree task (deferred tasks are idempotent
    under the merged fingerprint union), never coverage.
    """

    __slots__ = ("_entries", "_limit", "peak")

    def __init__(self, limit: int = _DEFERRED_SEEN_LIMIT) -> None:
        self._entries: OrderedDict = OrderedDict()
        self._limit = limit
        self.peak = 0

    def seen(self, key: Any) -> bool:
        """Record ``key``; True when it was already present."""
        digest = blake2b(stable_encode(key), digest_size=16).digest()
        entries = self._entries
        if digest in entries:
            entries.move_to_end(digest)
            return True
        entries[digest] = None
        if len(entries) > self._limit:
            entries.popitem(last=False)
        elif len(entries) > self.peak:
            self.peak = len(entries)
        return False


def _logical_ids(generation_order: Sequence) -> Dict[int, Lid]:
    """Map ``Label.uid`` to the branch-stable ``(origin, seq)`` id.

    Each replica executes its program in order, so the k-th label generated
    at a replica denotes the same program step in every branch.
    """
    lids: Dict[int, Lid] = {}
    per_origin: Dict[Any, int] = {}
    for label in generation_order:
        seq = per_origin.get(label.origin, 0)
        per_origin[label.origin] = seq + 1
        lids[label.uid] = (label.origin, seq)
    return lids


# ----------------------------------------------------------------------
# Domains: the op-based and state-based semantics behind a common DFS
# ----------------------------------------------------------------------


class _OpDomain:
    """Op-based semantics: invoke / causal-delivery transitions."""

    def __init__(
        self,
        system: OpBasedSystem,
        programs: Dict[str, Program],
        require_quiescence: bool,
        reduction: bool,
        stats: ExploreStats,
        symmetry: bool = False,
    ) -> None:
        self.system = system
        self.programs = programs
        self.replicas = list(programs)
        self.require_quiescence = require_quiescence
        self.reduction = reduction
        self.stats = stats
        self.use_snapshots = system.snapshot_safe
        self.counters: Dict[str, int] = {r: 0 for r in programs}
        self.returns: Dict[str, List[Any]] = {r: [] for r in programs}
        # Incremental logical-id maps (see _logical_ids): extended on each
        # invoke, saved/restored with the DFS tokens.  transitions() and
        # fingerprint() are called several times per DFS node, so the maps
        # must not be rebuilt from the whole generation order every time.
        self._lids: Dict[int, Lid] = {}
        self._per_origin: Dict[Any, int] = {}
        self._lid_to_label: Dict[Lid, Any] = {}
        self._lid_order: List[Lid] = []
        #: Label content keyed by logical id, maintained with the lid maps
        #: so fingerprint() does not re-collect the whole order per DFS
        #: node.  A *set*, not a sequence: the generation order of
        #: concurrent operations is not observable in the configuration
        #: (the lid pins each label to its program step, and visibility
        #: carries the causal structure), and an order-insensitive label
        #: component is what lets permuted-interleaving orbit members —
        #: and plain interleaving variants — deduplicate.
        self._labels_data: FrozenSet[Tuple] = frozenset()
        self._sync_lids()
        # Lid-valued mirrors of the system's seen-sets and visibility,
        # updated alongside apply() (the system's update discipline is
        # small: invoke adds vis edges from the origin's seen labels plus
        # the label itself; deliver only adds to seen).  fingerprint()
        # then reads them directly instead of re-translating every label
        # per DFS node.  The naive-vs-engine differential oracle guards
        # the mirrors: a divergence changes the deduplicated visit set.
        self._rebuild_mirrors()
        # Per-state fingerprint cache: id(state) -> (state, fingerprint).
        # Holding the state reference pins the id against reuse.
        self._state_fps: Dict[int, Tuple[Any, Any]] = {}
        # The object and generator tables never change shape mid-search.
        self._objs = sorted(system.objects.items())
        self._gen_names = sorted(system._generators)
        self._state_keys = [
            ((r, name), crdt)
            for r in self.replicas for name, crdt in self._objs
        ]
        # Incremental fingerprint parts: one entry of replica-indexed
        # components per replica, None = dirty (recomputed lazily by
        # fingerprint()).  apply() dirties only the touched replica;
        # push()/pop() save and restore the table, so the per-node
        # fingerprint cost is O(delta), not O(configuration).  With
        # symmetry on, entries hold the part's *fragment vector* (its
        # canonical images under every group element) instead of the raw
        # part; _glob_frags is the analogous vector of the replica-free
        # component, dirtied only when labels/visibility change.
        self._parts: Dict[str, Optional[Tuple]] = {
            r: None for r in self.replicas
        }
        self._glob_frags: Optional[Tuple] = None
        self.sym: Optional[SymmetryReducer] = None
        if symmetry and len(self.replicas) > 1:
            group = build_group(programs, extra_names=tuple(system.objects))
            stats.symmetry_group = group.order
            stats.pinned_replicas = len(group.pinned)
            if group.enabled:
                self.sym = SymmetryReducer(self.replicas, group)

    def _sync_lids(self) -> None:
        """Extend the lid maps with labels generated since the last sync."""
        order = self.system.generation_order
        for label in order[len(self._lids):]:
            seq = self._per_origin.get(label.origin, 0)
            self._per_origin[label.origin] = seq + 1
            lid = (label.origin, seq)
            self._lids[label.uid] = lid
            self._lid_to_label[lid] = label
            self._lid_order.append(lid)
            self._labels_data |= {
                (lid, label.obj, label.method, label.args,
                 label.ret, label.ts),
            }

    def _rebuild_mirrors(self) -> None:
        lids = self._lids
        self._seen_lids: Dict[str, FrozenSet[Lid]] = {
            r: frozenset(lids[l.uid] for l in self.system._seen[r])
            for r in self.replicas
        }
        self._vis_lids: FrozenSet[Tuple[Lid, Lid]] = frozenset(
            (lids[a.uid], lids[b.uid]) for a, b in self.system._vis
        )
        self._causal_lids: Dict[Lid, FrozenSet[Lid]] = {
            lids[label.uid]: frozenset(lids[p.uid] for p in preds)
            for label, preds in self.system._causal_preds.items()
        }

    # -- transitions ----------------------------------------------------

    def transitions(self) -> List[Transition]:
        trans: List[Transition] = []
        for replica in self.replicas:
            if self.counters[replica] < len(self.programs[replica]):
                trans.append(("inv", replica, self.counters[replica]))
        # Causal delivery over the lid mirrors (same condition as
        # ``system.deliverable``; apply() passes ``prechecked=True`` so
        # the system does not re-derive it — the naive differential
        # oracle pins the mirrors against mis-scheduling).
        causal = self._causal_lids
        for replica in self.replicas:
            seen = self._seen_lids[replica]
            for lid in self._lid_order:
                if lid not in seen and causal[lid] <= seen:
                    trans.append(("del", replica, lid))
        return trans

    def should_visit(self, transitions: List[Transition]) -> bool:
        if not transitions:
            return True
        if self.require_quiescence:
            return False
        return all(
            self.counters[r] == len(p) for r, p in self.programs.items()
        )

    def apply(self, transition: Transition) -> bool:
        kind, replica, payload = transition
        if kind == "inv":
            step_spec = self.programs[replica][payload]
            method, args = step_spec[0], step_spec[1]
            obj = step_spec[2] if len(step_spec) > 2 else None
            try:
                label = self.system.invoke(replica, method, args, obj=obj)
            except PreconditionViolation:
                return False  # this interleaving cannot run the op yet
            self.counters[replica] += 1
            self.returns[replica].append(label.ret)
            self._sync_lids()
            lid = self._lids[label.uid]
            seen = self._seen_lids[replica]
            self._vis_lids |= {(prior, lid) for prior in seen}
            self._seen_lids[replica] = seen | {lid}
            lids = self._lids
            self._causal_lids[lid] = frozenset(
                lids[p.uid] for p in self.system._causal_preds[label]
            )
            self._parts[replica] = None
            self._glob_frags = None
            return True
        label = self._lid_to_label[payload]
        # prechecked: transitions() established deliverability from the
        # lid mirrors at this exact configuration.
        self.system.deliver(replica, label, prechecked=True)
        self._seen_lids[replica] = self._seen_lids[replica] | {payload}
        self._parts[replica] = None
        return True

    # -- branching ------------------------------------------------------

    def push(self) -> Tuple:
        if self.use_snapshots:
            self.stats.snapshots += 1
            system_token: Any = self.system.snapshot()
        else:
            self.stats.deepcopies += 1
            system_token = copy.deepcopy(self.system)
        return (
            system_token,
            dict(self.counters),
            {r: list(v) for r, v in self.returns.items()},
            dict(self._lids),
            dict(self._per_origin),
            dict(self._lid_to_label),
            tuple(self._lid_order),
            dict(self._causal_lids),
            self._labels_data,
            dict(self._seen_lids),
            self._vis_lids,
            dict(self._parts),
            self._glob_frags,
        )

    def pop(self, token: Tuple) -> None:
        (system_token, counters, returns, lids, per_origin, lid_to_label,
         lid_order, causal_lids, labels_data, seen_lids, vis_lids,
         parts, glob_frags) = token
        # Part entries are immutable values: restoring the shallow copy
        # re-marks exactly the replicas that were dirty at push time.
        self._parts = dict(parts)
        self._glob_frags = glob_frags
        if self.use_snapshots:
            self.system.restore(system_token)
            self._lids = dict(lids)
            self._per_origin = dict(per_origin)
            self._lid_to_label = dict(lid_to_label)
            self._lid_order = list(lid_order)
            self._causal_lids = dict(causal_lids)
            self._labels_data = labels_data
            self._seen_lids = dict(seen_lids)
            self._vis_lids = vis_lids
        else:
            # The deepcopy fallback replaces every label object, so the
            # lid resolution maps must be rebuilt from the fresh copy.
            self.stats.deepcopies += 1
            self.system = copy.deepcopy(system_token)
            self._lids = {}
            self._per_origin = {}
            self._lid_to_label = {}
            self._lid_order = []
            self._labels_data = frozenset()
            self._sync_lids()
            self._rebuild_mirrors()
            self._objs = sorted(self.system.objects.items())
            self._state_keys = [
                ((r, name), crdt)
                for r in self.replicas for name, crdt in self._objs
            ]
        self.counters = dict(counters)
        self.returns = {r: list(v) for r, v in returns.items()}

    # -- independence (the DPOR relation) -------------------------------

    def independent(self, a: Transition, b: Transition) -> bool:
        if not self.reduction:
            return False
        if a[1] != b[1]:
            # Distinct replicas touch disjoint replica-local data: their
            # states, seen-sets, and logical clocks are per-replica, and
            # visibility/effector tables only ever grow commutatively.
            return True
        if a[0] == "del" and b[0] == "del":
            first = self._lid_to_label.get(a[2])
            second = self._lid_to_label.get(b[2])
            if first is None or second is None:
                return False
            if first.obj != second.obj:
                return True  # different objects: disjoint state components
            return self._effectors_commute(a[1], first, second)
        # Invoke vs. anything at the same replica reads/writes that
        # replica's state, seen-set, and clock: dependent.
        return False

    def _effectors_commute(self, replica: str, first, second) -> bool:
        """Probe Commutativity (Fig. 11) on the replica's current state.

        Queries carry no effector and trivially commute; otherwise apply
        the two effectors in both orders and compare.  This keeps the
        reduction sound per-branch even for CRDTs that fail the global
        Commutativity property (the mutants): the non-commuting pair is
        simply not treated as independent.
        """
        eff1 = self.system.effector_of(first)
        eff2 = self.system.effector_of(second)
        if eff1 is None or eff2 is None:
            return True
        crdt = self.system.objects[first.obj]
        state = self.system.state(replica, first.obj)
        self.stats.commute_checks += 1
        one_two = crdt.apply_effector(crdt.apply_effector(state, eff1), eff2)
        two_one = crdt.apply_effector(crdt.apply_effector(state, eff2), eff1)
        return one_two == two_one

    # -- happens-before / races (the source-DPOR relations) -------------

    def hb_dependent(self, a: Transition, b: Transition) -> bool:
        """Structural dependence of a later event ``b`` on an earlier ``a``.

        This is the *coarse* relation source-DPOR computes races over; it
        may be coarser than :meth:`independent` (which additionally probes
        dynamic effector commutation) — a coarser happens-before merges
        fewer executions into one trace class, which only means more races
        are considered, never fewer, so mixing the two stays sound.

        Op-based events touch replica-local data (state, seen-set, clock),
        so two events are dependent iff they share a replica — plus the
        creation edge: a delivery depends on the invocation that generated
        its label (the k-th invocation at replica ``r`` has logical id
        ``(r, k)``, which is exactly ``("inv", r, k)``'s payload).

        With ``require_quiescence=False`` the visit hook observes interior
        configurations, where commuting adjacent events is not
        prefix-preserving; the engine demotes ``por="source"`` to the
        sleep path outright in that mode, and this relation answering
        "everything is dependent" is defense-in-depth should a caller
        reach the source machinery anyway.
        """
        if not self.require_quiescence:
            return True
        if a[1] == b[1]:
            return True
        if a[0] == "inv" and b[0] == "del" and b[2] == (a[1], a[2]):
            return True
        if b[0] == "inv" and a[0] == "del" and a[2] == (b[1], b[2]):
            return True  # symmetric guard; cannot occur in program order
        return False

    def race_reversible(self, a: Transition, b: Transition) -> bool:
        """Whether the race ``a`` before ``b`` has an executable reversal.

        Program order (two invocations at one replica), the creation edge
        (an invocation before a delivery of its own label), and causal
        delivery (a delivery before a same-replica delivery of a causal
        successor) are *enforced* orders — the reversed execution does not
        exist, so no backtrack point is needed.
        """
        if a[0] == "inv":
            if b[0] == "inv":
                return False  # program order at one replica
            if b[2] == (a[1], a[2]):
                return False  # creation: b delivers a's label
            return True
        if b[0] == "del" and a[0] == "del" and a[1] == b[1]:
            # Same-replica deliveries: irreversible when a's label is a
            # causal predecessor of b's (b was not deliverable before a).
            preds = self._causal_lids.get(b[2])
            if preds is not None and a[2] in preds:
                return False
        return True

    def must_schedule(self, transition: Transition) -> bool:
        """Whether a node must schedule ``transition`` unconditionally.

        Race reversals only ever request events that *occur* in explored
        executions, which covers a transition iff every maximal execution
        eventually takes it.  Op-based transitions all qualify —
        invocations run their programs out and deliveries stay enabled
        until taken, so leaves are exactly the quiescent configurations —
        hence nothing needs forced scheduling.
        """
        return False

    #: No transition ever needs forcing (see :meth:`must_schedule`): the
    #: engine skips the per-node seeding scan entirely.
    forces_schedule = False

    def residual_transitions(self) -> List[Transition]:
        """Every event that can still occur from this configuration.

        Dedup cuts replay these against the open frames in place of the
        pruned subtree's actual events.  Under quiescence the two sets
        coincide exactly: every maximal execution below this node runs
        all remaining invocations and drains every delivery, so the
        residual alphabet *is* the subtree footprint — no recording, no
        canonical-frame renaming, O(remaining work) to enumerate.
        """
        res: List[Transition] = []
        for replica in self.replicas:
            for i in range(
                self.counters[replica], len(self.programs[replica])
            ):
                res.append(("inv", replica, i))
        for target in self.replicas:
            seen = self._seen_lids[target]
            for replica in self.replicas:
                if replica == target:
                    continue  # origins see their own labels immediately
                done = self.counters[replica]
                for i in range(len(self.programs[replica])):
                    if i >= done or (replica, i) not in seen:
                        res.append(("del", target, (replica, i)))
        return res

    # Incremental happens-before masks: the engine notes each path event
    # once, and ``hb_dep_mask`` answers "which path indices is this event
    # hb-dependent on" as a bitmask in O(1) dict lookups instead of an
    # O(path) relation loop per event.  Must stay equivalent to
    # :meth:`hb_dependent`; the differential suite pins the pair.

    def hb_reset(self) -> None:
        self._hb_replica_masks: Dict[str, int] = {}
        self._hb_mk_bit: Dict[Lid, int] = {}

    def hb_note(self, transition: Transition, index: int) -> None:
        bit = 1 << index
        masks = self._hb_replica_masks
        masks[transition[1]] = masks.get(transition[1], 0) | bit
        if transition[0] == "inv":
            self._hb_mk_bit[(transition[1], transition[2])] = bit

    def hb_unnote(self, transition: Transition, index: int) -> None:
        self._hb_replica_masks[transition[1]] &= ~(1 << index)
        if transition[0] == "inv":
            self._hb_mk_bit.pop((transition[1], transition[2]), None)

    def hb_dep_mask(self, transition: Transition, length: int) -> int:
        if not self.require_quiescence:
            return (1 << length) - 1
        mask = self._hb_replica_masks.get(transition[1], 0)
        if transition[0] == "del":
            # The creation edge: the inv that generated this label.
            mask |= self._hb_mk_bit.get(transition[2], 0)
        return mask

    # -- fingerprinting -------------------------------------------------

    def _state_fp(self, crdt, state) -> Any:
        cache = self._state_fps
        cached = cache.get(id(state))
        if cached is not None and cached[0] is state:
            return cached[1]
        fp = crdt.fingerprint(state)
        if len(cache) >= _STATE_FP_CACHE_LIMIT:
            cache.clear()
        cache[id(state)] = (state, fp)
        if len(cache) > self.stats.state_fp_cache_peak:
            self.stats.state_fp_cache_peak = len(cache)
        return fp

    def _compute_part(self, replica: str) -> Tuple:
        """The replica-indexed fingerprint components of one replica."""
        system = self.system
        states = system._states
        generators = system._generators
        state_fp = self._state_fp
        return (
            self.counters[replica],
            tuple(self.returns[replica]),
            self._seen_lids[replica],
            tuple(
                generators[name].clock(replica) for name in self._gen_names
            ),
            tuple(
                state_fp(crdt, states[(replica, name)])
                for name, crdt in self._objs
            ),
        )

    def fingerprint(self) -> Any:
        parts = self._parts
        sym = self.sym
        if sym is None:
            for replica in self.replicas:
                if parts[replica] is None:
                    parts[replica] = self._compute_part(replica)
            return (
                tuple(parts[r] for r in self.replicas),
                (self._labels_data, self._vis_lids),
            )
        for replica in self.replicas:
            if parts[replica] is None:
                parts[replica] = sym.part_fragments(
                    self._compute_part(replica)
                )
        if self._glob_frags is None:
            self._glob_frags = sym.glob_fragments(
                (self._labels_data, self._vis_lids)
            )
        return sym.canonical(parts, self._glob_frags)

    def canon_sleep(self, sleep: FrozenSet[Transition]) -> Any:
        """Translate a sleep set into the frame of the latest fingerprint.

        With symmetry on, the fingerprint is the image of the
        configuration under the minimizing permutation π*; sleep sets
        recorded against it must live in the same frame, so subsumption
        compares schedules of the *canonical* configuration, not of
        whichever orbit member happened to arrive.
        """
        sym = self.sym
        if sym is None or not sleep:
            return sleep
        return sym.rename_transitions(sleep)

    def uncanon_transitions(
        self, transitions: FrozenSet[Transition]
    ) -> FrozenSet[Transition]:
        """Inverse of :meth:`canon_sleep` under the latest fingerprint."""
        sym = self.sym
        if sym is None or not transitions:
            return transitions
        return sym.unrename_transitions(transitions)

    def visit_args(self) -> Tuple[Any, Dict[str, List[Any]]]:
        return self.system, self.returns


class _StateDomain:
    """State-based semantics: invoke / bounded-gossip transitions."""

    def __init__(
        self,
        system: StateBasedSystem,
        programs: Dict[str, Program],
        max_gossips: int,
        reduction: bool,
        stats: ExploreStats,
        symmetry: bool = False,
    ) -> None:
        self.system = system
        self.programs = programs
        self.replicas = list(programs)
        self.budget = max_gossips
        self.reduction = reduction
        self.stats = stats
        self.use_snapshots = system.snapshot_safe
        self.counters: Dict[str, int] = {r: 0 for r in programs}
        self.returns: Dict[str, List[Any]] = {r: [] for r in programs}
        self._lids: Dict[int, Lid] = {}
        self._per_origin: Dict[Any, int] = {}
        self._labels_data: FrozenSet[Tuple] = frozenset()
        self._sync_lids()
        self._rebuild_mirrors()
        self._state_fps: Dict[int, Tuple[Any, Any]] = {}
        # Incremental fingerprint parts — same discipline as _OpDomain.
        self._parts: Dict[str, Optional[Tuple]] = {
            r: None for r in self.replicas
        }
        self._glob_frags: Optional[Tuple] = None
        self.sym: Optional[SymmetryReducer] = None
        if symmetry and len(self.replicas) > 1:
            group = build_group(programs)
            stats.symmetry_group = group.order
            stats.pinned_replicas = len(group.pinned)
            if group.enabled:
                self.sym = SymmetryReducer(self.replicas, group)

    def _sync_lids(self) -> None:
        """Extend the lid map with labels generated since the last sync."""
        order = self.system.generation_order
        for label in order[len(self._lids):]:
            seq = self._per_origin.get(label.origin, 0)
            self._per_origin[label.origin] = seq + 1
            lid = (label.origin, seq)
            self._lids[label.uid] = lid
            self._labels_data |= {
                (lid, label.method, label.args, label.ret, label.ts),
            }

    def _rebuild_mirrors(self) -> None:
        """Recompute the lid-based seen/vis mirrors from the system."""
        lids = self._lids
        self._seen_lids: Dict[str, FrozenSet[Lid]] = {
            r: frozenset(lids[l.uid] for l in self.system._seen[r])
            for r in self.replicas
        }
        self._vis_lids: FrozenSet[Tuple[Lid, Lid]] = frozenset(
            (lids[a.uid], lids[b.uid]) for a, b in self.system._vis
        )

    # -- transitions ----------------------------------------------------

    def transitions(self) -> List[Transition]:
        trans: List[Transition] = []
        for replica in self.replicas:
            if self.counters[replica] < len(self.programs[replica]):
                trans.append(("inv", replica, self.counters[replica]))
        if self.budget > 0:
            for source in self.replicas:
                for target in self.replicas:
                    if source != target:
                        trans.append(("gos", source, target))
        return trans

    def should_visit(self, transitions: List[Transition]) -> bool:
        return all(
            self.counters[r] == len(p) for r, p in self.programs.items()
        )

    def apply(self, transition: Transition) -> bool:
        kind, first, second = transition
        if kind == "inv":
            method, args = self.programs[first][second]
            try:
                label = self.system.invoke(first, method, args)
            except PreconditionViolation:
                return False
            self.counters[first] += 1
            self.returns[first].append(label.ret)
            self._sync_lids()
            lid = self._lids[label.uid]
            seen = self._seen_lids[first]
            self._vis_lids |= {(prior, lid) for prior in seen}
            self._seen_lids[first] = seen | {lid}
            self._parts[first] = None
            self._glob_frags = None
            return True
        self.system.gossip(first, second)
        self._seen_lids[second] = self._seen_lids[second] | self._seen_lids[first]
        self.budget -= 1
        # Gossip mutates only the target replica (the source is read) —
        # plus the global budget, which lives in the glob component.
        self._parts[second] = None
        self._glob_frags = None
        return True

    # -- branching ------------------------------------------------------

    def push(self) -> Tuple:
        if self.use_snapshots:
            self.stats.snapshots += 1
            system_token: Any = self.system.snapshot()
        else:
            self.stats.deepcopies += 1
            system_token = copy.deepcopy(self.system)
        return (
            system_token,
            dict(self.counters),
            {r: list(v) for r, v in self.returns.items()},
            self.budget,
            dict(self._lids),
            dict(self._per_origin),
            self._labels_data,
            dict(self._seen_lids),
            self._vis_lids,
            dict(self._parts),
            self._glob_frags,
        )

    def pop(self, token: Tuple) -> None:
        (system_token, counters, returns, budget, lids, per_origin,
         labels_data, seen_lids, vis_lids, parts, glob_frags) = token
        self._parts = dict(parts)
        self._glob_frags = glob_frags
        if self.use_snapshots:
            self.system.restore(system_token)
            self._lids = dict(lids)
            self._per_origin = dict(per_origin)
            self._labels_data = labels_data
            self._seen_lids = dict(seen_lids)
            self._vis_lids = vis_lids
        else:
            self.stats.deepcopies += 1
            self.system = copy.deepcopy(system_token)
            self._lids = {}
            self._per_origin = {}
            self._labels_data = frozenset()
            self._sync_lids()
            self._rebuild_mirrors()
        self.counters = dict(counters)
        self.returns = {r: list(v) for r, v in returns.items()}
        self.budget = budget

    # -- independence ---------------------------------------------------

    def _replicas_of(self, transition: Transition) -> Tuple[str, ...]:
        if transition[0] == "inv":
            return (transition[1],)
        return (transition[1], transition[2])

    def independent(self, a: Transition, b: Transition) -> bool:
        if not self.reduction:
            return False
        if a[0] == "gos" and b[0] == "gos":
            if self.budget < 2:
                return False  # taking one disables the other
            # Writers are the targets; sources are only read.
            if a[2] == b[2]:
                # Same merge target: sound iff the two source snapshots
                # merge commutatively into the target's current state
                # (lattice joins do; mutants may not — probe dynamically).
                if b[1] == a[2] or a[1] == b[2]:
                    return False
                return self._merges_commute(a[1], b[1], a[2])
            if a[2] in (b[1], b[2]) or b[2] in (a[1], a[2]):
                return False  # one's write is the other's read/write
            return True
        if a[0] == "inv" and b[0] == "inv":
            return a[1] != b[1]
        inv, gos = (a, b) if a[0] == "inv" else (b, a)
        return inv[1] not in (gos[1], gos[2])

    def _merges_commute(self, source1: str, source2: str, target: str) -> bool:
        crdt = self.system.crdt
        base = self.system.state(target)
        one = self.system.state(source1)
        two = self.system.state(source2)
        self.stats.commute_checks += 1
        return crdt.merge(crdt.merge(base, one), two) == crdt.merge(
            crdt.merge(base, two), one
        )

    # -- happens-before / races (the source-DPOR relations) -------------

    def hb_dependent(self, a: Transition, b: Transition) -> bool:
        """Structural dependence for the state-based semantics.

        Gossips are declared dependent on *everything* — deliberately
        coarser than :meth:`independent`.  The state-based visit hook
        fires on interior configurations too (program-complete nodes with
        leftover gossip budget), and source-DPOR only preserves maximal
        executions per trace class; making every gossip an ordering
        barrier forces each explored linearization to pass through every
        visitable interior configuration of its class (invocation-only
        commutations never change a program-complete prefix's
        configuration set), so the visited set stays exactly the sleep-set
        engine's.  The reduction then prunes invocation interleavings
        between gossips — and the persistent snapshots carry the rest.
        """
        if a[0] == "gos" or b[0] == "gos":
            return True
        return a[1] == b[1]

    def race_reversible(self, a: Transition, b: Transition) -> bool:
        """See :meth:`_OpDomain.race_reversible`.

        Only program order is enforced here: gossips are enabled whenever
        budget remains (it is never smaller earlier in the execution), so
        every non-program-order race has an executable reversal.
        """
        return not (a[0] == "inv" and b[0] == "inv" and a[1] == b[1])

    def must_schedule(self, transition: Transition) -> bool:
        """Gossips are *alternatives*, not mandatory events: they drain a
        shared budget, so a maximal execution that spends it on one
        gossip never contains the others — no explored execution need
        mention ``gos(2→1)``, and the race mechanism (which only reverses
        events that occur) would silently drop its configurations.  Every
        enabled gossip is therefore force-seeded into each node's source
        set; the reduction prunes invocation interleavings only.
        """
        return transition[0] == "gos"

    #: Gossips need forcing — the engine runs the per-node seeding scan.
    forces_schedule = True

    def residual_transitions(self) -> List[Transition]:
        """See :meth:`_OpDomain.residual_transitions`.

        Remaining invocations occur in every maximal execution below
        this node; gossips are alternatives (budget-bounded), so the
        residual alphabet over-approximates any one subtree's footprint
        — extra replayed races cost work, never soundness, and gossip
        reversals are almost always already covered (every open frame
        force-seeds its enabled gossips via :meth:`must_schedule`).
        """
        res: List[Transition] = []
        for replica in self.replicas:
            for i in range(
                self.counters[replica], len(self.programs[replica])
            ):
                res.append(("inv", replica, i))
        if self.budget > 0:
            for source in self.replicas:
                for target in self.replicas:
                    if source != target:
                        res.append(("gos", source, target))
        return res

    # Incremental happens-before masks — see :class:`_OpDomain`.

    def hb_reset(self) -> None:
        self._hb_replica_masks: Dict[str, int] = {}
        self._hb_gos_mask = 0

    def hb_note(self, transition: Transition, index: int) -> None:
        bit = 1 << index
        if transition[0] == "gos":
            self._hb_gos_mask |= bit
        else:
            masks = self._hb_replica_masks
            masks[transition[1]] = masks.get(transition[1], 0) | bit

    def hb_unnote(self, transition: Transition, index: int) -> None:
        if transition[0] == "gos":
            self._hb_gos_mask &= ~(1 << index)
        else:
            self._hb_replica_masks[transition[1]] &= ~(1 << index)

    def hb_dep_mask(self, transition: Transition, length: int) -> int:
        if transition[0] == "gos":
            return (1 << length) - 1  # the global ordering barrier
        return (
            self._hb_replica_masks.get(transition[1], 0)
            | self._hb_gos_mask
        )

    # -- fingerprinting -------------------------------------------------

    def _state_fp(self, state) -> Any:
        cache = self._state_fps
        cached = cache.get(id(state))
        if cached is not None and cached[0] is state:
            return cached[1]
        fp = self.system.crdt.fingerprint(state)
        if len(cache) >= _STATE_FP_CACHE_LIMIT:
            cache.clear()
        cache[id(state)] = (state, fp)
        if len(cache) > self.stats.state_fp_cache_peak:
            self.stats.state_fp_cache_peak = len(cache)
        return fp

    def _compute_part(self, replica: str) -> Tuple:
        """The replica-indexed fingerprint components of one replica."""
        system = self.system
        return (
            self.counters[replica],
            tuple(self.returns[replica]),
            self._seen_lids[replica],
            system._generator.clock(replica),
            self._state_fp(system._states[replica]),
        )

    def fingerprint(self) -> Any:
        parts = self._parts
        sym = self.sym
        # The message/event logs are excluded deliberately: exploration
        # never re-reads old messages (gossip snapshots afresh), and the
        # visit callbacks observe history/states only.
        if sym is None:
            for replica in self.replicas:
                if parts[replica] is None:
                    parts[replica] = self._compute_part(replica)
            return (
                tuple(parts[r] for r in self.replicas),
                (self._labels_data, self._vis_lids, self.budget),
            )
        for replica in self.replicas:
            if parts[replica] is None:
                parts[replica] = sym.part_fragments(
                    self._compute_part(replica)
                )
        if self._glob_frags is None:
            self._glob_frags = sym.glob_fragments(
                (self._labels_data, self._vis_lids, self.budget)
            )
        return sym.canonical(parts, self._glob_frags)

    def canon_sleep(self, sleep: FrozenSet[Transition]) -> Any:
        """See :meth:`_OpDomain.canon_sleep`."""
        sym = self.sym
        if sym is None or not sleep:
            return sleep
        return sym.rename_transitions(sleep)

    def uncanon_transitions(
        self, transitions: FrozenSet[Transition]
    ) -> FrozenSet[Transition]:
        """See :meth:`_OpDomain.uncanon_transitions`."""
        sym = self.sym
        if sym is None or not transitions:
            return transitions
        return sym.unrename_transitions(transitions)

    def visit_args(self) -> Tuple[Any, Dict[str, List[Any]]]:
        return self.system, self.returns


# ----------------------------------------------------------------------
# The DFS core: sleep sets / source sets + dedup over a domain
# ----------------------------------------------------------------------


class _Frame:
    """Per-node scheduling state of the source-DPOR search.

    ``mode`` distinguishes how race reversals landing here are handled:

    * ``"real"`` — a live node of this engine's DFS: reversals join the
      node's ``backtrack`` set and its candidate loop explores them.
    * ``"defer"`` — a replayed prefix node of a stolen subtree task: the
      node's sibling loop ran (or runs) on another worker, so reversals
      become fresh subtree tasks on this engine's deferred queue.
    * ``"ignore"`` — the root node of a static root-branch split: every
      root transition is seeded as its own branch task, so any reversal
      is already covered.
    """

    __slots__ = (
        "mode", "enabled", "enabled_set", "sleep", "backtrack", "tried",
        "done", "race_added", "progressed",
    )

    def __init__(
        self,
        mode: str,
        enabled: List[Transition],
        sleep: FrozenSet[Transition],
    ) -> None:
        self.mode = mode
        self.enabled = enabled
        #: Lazily materialized by :meth:`is_enabled` — most frames never
        #: receive a race reversal, so the set would be wasted work.
        self.enabled_set = None
        self.sleep = sleep
        #: Insertion-ordered candidate set (dict keys): the source set.
        self.backtrack: Dict[Transition, None] = {}
        self.tried: set = set()
        self.done: List[Transition] = []
        self.race_added: set = set()
        self.progressed = False

    def next_candidate(self) -> Optional[Transition]:
        for transition in self.backtrack:
            if transition not in self.tried:
                return transition
        return None

    def is_enabled(self, transition: Transition) -> bool:
        enabled_set = self.enabled_set
        if enabled_set is None:
            enabled_set = self.enabled_set = set(self.enabled)
        return transition in enabled_set


class _ProfiledDomain:
    """Phase-timing proxy around an exploration domain.

    Installed only when a :class:`~repro.obs.profile.PhaseProfiler` is
    attached, so the unprofiled hot loop stays on plain domain calls
    (its only profiling branch is one ``is None`` check per race walk,
    which times the ``race`` phase — pure engine work with no domain
    calls inside, so the domain phases never double-count it).  The
    proxy times the domain calls that dominate engine wall — snapshot
    push/pop, transition application, independence (commutativity)
    probes, happens-before maintenance, fingerprint/canonicalization —
    and forwards everything else untouched.  Per-call ``perf_counter``
    pairs are real overhead; that cost is the price of attribution and
    is only ever paid on profiled runs.
    """

    __slots__ = ("_domain", "_profile")

    def __init__(self, domain, profile) -> None:
        self._domain = domain
        self._profile = profile

    def __getattr__(self, name):
        return getattr(self._domain, name)

    def push(self):
        start = time.perf_counter()
        token = self._domain.push()
        self._profile.add("snapshot", time.perf_counter() - start)
        return token

    def pop(self, token) -> None:
        start = time.perf_counter()
        self._domain.pop(token)
        self._profile.add("restore", time.perf_counter() - start)

    def apply(self, transition) -> bool:
        start = time.perf_counter()
        ok = self._domain.apply(transition)
        self._profile.add("apply", time.perf_counter() - start)
        return ok

    def independent(self, a, b) -> bool:
        start = time.perf_counter()
        result = self._domain.independent(a, b)
        self._profile.add("commute", time.perf_counter() - start)
        return result

    def race_reversible(self, a, b) -> bool:
        start = time.perf_counter()
        result = self._domain.race_reversible(a, b)
        self._profile.add("commute", time.perf_counter() - start)
        return result

    def fingerprint(self):
        start = time.perf_counter()
        fp = self._domain.fingerprint()
        self._profile.add("fingerprint", time.perf_counter() - start)
        return fp

    def canon_sleep(self, sleep):
        start = time.perf_counter()
        result = self._domain.canon_sleep(sleep)
        self._profile.add("fingerprint", time.perf_counter() - start)
        return result

    def uncanon_transitions(self, transitions):
        start = time.perf_counter()
        result = self._domain.uncanon_transitions(transitions)
        self._profile.add("fingerprint", time.perf_counter() - start)
        return result

    def hb_dep_mask(self, transition, index):
        start = time.perf_counter()
        mask = self._domain.hb_dep_mask(transition, index)
        self._profile.add("hb", time.perf_counter() - start)
        return mask

    def hb_note(self, transition, index) -> None:
        start = time.perf_counter()
        self._domain.hb_note(transition, index)
        self._profile.add("hb", time.perf_counter() - start)

    def hb_unnote(self, transition, index) -> None:
        start = time.perf_counter()
        self._domain.hb_unnote(transition, index)
        self._profile.add("hb", time.perf_counter() - start)

    def residual_transitions(self):
        start = time.perf_counter()
        result = self._domain.residual_transitions()
        self._profile.add("hb", time.perf_counter() - start)
        return result


class _Engine:
    """Depth-first search with sleep sets (or source-DPOR) and
    fingerprint deduplication."""

    def __init__(
        self,
        domain,
        visit: Callable[[Any, Dict[str, List[Any]]], None],
        max_configurations: Optional[int],
        dedup: bool,
        stats: ExploreStats,
        fingerprints: Optional[set] = None,
        expanded: Optional[Dict] = None,
        fp_store: Optional[Any] = None,
        scheduler: Optional[Any] = None,
        budget: Optional[Any] = None,
        por: str = "sleep",
        profile: Optional[Any] = None,
        journal: Optional[Any] = None,
        heartbeat: Optional[Any] = None,
    ) -> None:
        #: Observatory hooks (``docs/observability.md``): each is None
        #: when off, so the hot paths pay one attribute check apiece.
        self.profile = profile
        self.journal = journal
        self.heartbeat = heartbeat
        if profile is not None:
            domain = _ProfiledDomain(domain, profile)
        self.domain = domain
        self.visit = visit
        self.max_configurations = max_configurations
        self.dedup = dedup
        self.stats = stats
        #: Optional :class:`~repro.runtime.fp_store.FingerprintStore`:
        #: when set, the visited/expanded records are keyed by fixed-width
        #: digests instead of raw fingerprint tuples.
        self.fp_store = fp_store
        #: Optional work-stealing hook (``should_split(depth)`` /
        #: ``offload(path, sleep)``); when set, the engine tracks the
        #: transition path from the root so unexplored siblings can be
        #: handed off as replayable subtree tasks.
        self.scheduler = scheduler
        #: Optional cross-worker configuration budget (``claim(fp)`` /
        #: ``exhausted()``) implementing an exact shared
        #: ``max_configurations`` cutoff under parallel exploration.
        self.budget = budget
        self._path: List[Transition] = []
        #: Fingerprints of configurations already reported to ``visit``.
        #: A caller-provided set is used in place (and thus observable
        #: afterwards) — the parallel frontier-split merge unions the
        #: per-branch sets to count distinct configurations globally.
        self._visited_fps: Any = (
            fingerprints if fingerprints is not None else set()
        )
        #: fingerprint -> sleep sets the subtree was explored under.  A new
        #: arrival is subsumed if some recorded sleep set is contained in
        #: the current one (then every schedule allowed now was allowed —
        #: and explored — before).
        self._expanded: Any = expanded if expanded is not None else {}
        if por not in ("sleep", "source", "optimal"):
            raise ValueError(f"unknown por mode {por!r}")
        if por != "sleep" and not getattr(domain, "reduction", True):
            # reduction=False means "explore every interleaving" (the
            # per-entry escape hatch / naive parity mode); the sleep path
            # with empty sleep sets is exactly that.
            por = "sleep"
        if por != "sleep" and not getattr(
            domain, "require_quiescence", True
        ):
            # Non-quiescent op exploration visits *interior*
            # configurations, which source-DPOR's maximal-execution
            # guarantee does not preserve (two trace-equivalent
            # executions pass through different interiors).  Fall back
            # to sleep sets, which visit every non-pruned node.
            por = "sleep"
        #: Partial-order reduction flavor: classic sleep sets,
        #: source-DPOR (sleep sets + race-driven source sets), or
        #: optimal DPOR (source sets + wakeup-tree continuations).
        self.por = por
        self._optimal = por == "optimal"
        #: Source-DPOR frame stack, aligned with ``_path`` (frame i is
        #: the node reached by ``_path[:i]``).
        self._frames: List[_Frame] = []
        #: Happens-before predecessor bitmask per path event.
        self._hb: List[int] = []
        #: Race reversals landing on defer-mode (stolen-prefix) frames,
        #: run locally as (path, sleep, frame-sleeps, guide) subtree
        #: tasks.
        self._deferred: List[Tuple] = []
        self._deferred_seen = _DigestLRU()
        if self.por != "sleep":
            domain.hb_reset()
        if heartbeat is not None:
            heartbeat.watch(stats, fp_store)

    def _fingerprint(self) -> Any:
        fp = self.domain.fingerprint()
        if self.fp_store is not None:
            return self.fp_store.intern(fp)
        return fp

    def run(
        self,
        root_branch: Optional[int] = None,
        path: Optional[Sequence[Transition]] = None,
        sleep: FrozenSet[Transition] = frozenset(),
        frames: Optional[Sequence[FrozenSet[Transition]]] = None,
        guide: WakeupTree = None,
    ) -> ExploreStats:
        """Explore the whole tree, one root branch, or a stolen subtree.

        ``path`` replays a transition sequence from the root and runs the
        DFS below it under ``sleep`` — the work-stealing task unit.
        ``frames`` (source-DPOR tasks only) carries the per-prefix-node
        sleep sets, so race reversals landing on the replayed prefix can
        be re-run with the right schedule filters.  ``guide`` (optimal
        DPOR) is the pending wakeup subtree at the task's branch point:
        the stolen prefix replays the identical schedule the victim
        would have run.  Wall time *accumulates* so an engine reused
        across stolen tasks reports its total exploration time.

        Source-DPOR reversals that land on replayed prefix nodes are
        queued and drained here, after the primary unit: they never go
        back through the work-stealing queue (the ack protocol only
        accounts for victim-offloaded tasks), and exploring them locally
        at worst duplicates work another worker also covers — the merged
        fingerprint union is unchanged.
        """
        started = time.perf_counter()
        pstate_mark = pstate.STATS.snapshot()
        try:
            if path is not None:
                self._run_path(path, sleep, frames, guide=guide)
            elif root_branch is None:
                if self.por != "sleep":
                    self._run_source_root()
                else:
                    self._dfs(frozenset(), 1)
            else:
                self._run_root_branch(root_branch)
            while self._deferred:
                (task_path, task_sleep, task_frames,
                 task_guide) = self._deferred.pop()
                self._run_path(
                    task_path, task_sleep, task_frames,
                    race_task=True, guide=task_guide,
                )
        except _SearchCapped:
            self.stats.capped = True
            if self.journal is not None:
                self.journal.record(
                    "budget.exhausted",
                    configurations=self.stats.configurations,
                )
        copied, shared = pstate.STATS.snapshot()
        self.stats.pstate_copied += copied - pstate_mark[0]
        self.stats.pstate_shared += shared - pstate_mark[1]
        if self._deferred_seen.peak > self.stats.dpor_deferred_seen:
            self.stats.dpor_deferred_seen = self._deferred_seen.peak
        self.stats.wall_time += time.perf_counter() - started
        return self.stats

    def _reset_stacks(self) -> None:
        """Clear the per-unit search stacks (they do not survive a cap)."""
        self._path = []
        self._frames = []
        self._hb = []
        if self.por != "sleep":
            self.domain.hb_reset()

    def _run_source_root(self) -> None:
        try:
            self._dfs_source(frozenset(), 1)
        finally:
            self._reset_stacks()

    def _run_path(
        self,
        path: Sequence[Transition],
        sleep: FrozenSet[Transition],
        frames: Optional[Sequence[FrozenSet[Transition]]] = None,
        race_task: bool = False,
        guide: WakeupTree = None,
    ) -> None:
        """Replay ``path`` from the root, then DFS under ``sleep``.

        The path was produced by a worker that successfully applied every
        transition on it, and apply() failures are deterministic in the
        configuration, so a replay failure means the task is corrupt —
        raise rather than silently dropping a subtree.  The one exception
        is the *last* transition of a deferred race task (``race_task``):
        a race candidate is enabled structurally but may still fail its
        precondition at the branch point, in which case the reversal is
        covered by fully re-expanding that node instead.
        """
        domain = self.domain
        token = domain.push()
        try:
            if self.por != "sleep":
                for index, transition in enumerate(path):
                    frame_sleep = (
                        frames[index]
                        if frames is not None and index < len(frames)
                        else frozenset()
                    )
                    self._frames.append(_Frame(
                        "defer", domain.transitions(), frame_sleep,
                    ))
                    if not domain.apply(transition):
                        if race_task and index == len(path) - 1:
                            self._full_expand_defer(index)
                            return
                        raise RuntimeError(
                            "stolen subtree failed to replay at "
                            f"{transition!r}"
                        )
                    # Record happens-before only: races *among* prefix
                    # events were processed by the victim when it first
                    # executed them.
                    _, hb_mask = self._analyze_event(transition)
                    domain.hb_note(transition, len(self._path))
                    self._path.append(transition)
                    self._hb.append(hb_mask)
                self._dfs_source(frozenset(sleep), len(path) + 1, guide)
            else:
                for transition in path:
                    if not domain.apply(transition):
                        raise RuntimeError(
                            "stolen subtree failed to replay at "
                            f"{transition!r}"
                        )
                self._path = list(path)
                self._dfs(frozenset(sleep), len(path) + 1)
        finally:
            # Restore the root even when capped mid-subtree, so a worker
            # session stays reusable for its next task.
            self._reset_stacks()
            domain.pop(token)

    def _run_root_branch(self, branch: int) -> None:
        """Explore only the subtree under the ``branch``-th root transition.

        This is the frontier-split unit of the parallel verifier: worker
        ``i`` reconstructs exactly the state the serial DFS has when it
        descends into root child ``i`` — the earlier root transitions that
        ran (and were fully explored) become sleep-set seeds when
        independent of this branch's transition — and then runs the
        ordinary DFS below it.  Branch 0 additionally owns the root
        configuration itself, so across workers it is reported once.
        A ``branch`` beyond the root's out-degree is a no-op.

        Under source-DPOR the root node gets an ``"ignore"`` frame: every
        root transition is statically seeded as a branch of its own (the
        orbit filter only drops transitions covered by a symmetric
        representative), so the full root expansion subsumes any source
        set a race reversal could request.
        """
        domain, stats = self.domain, self.stats
        transitions = domain.transitions()
        fingerprint = self.dedup and self._fingerprint()
        if branch == 0:
            stats.states_visited += 1
            stats.peak_frontier = max(stats.peak_frontier, 1)
            if domain.should_visit(transitions):
                self._report(fingerprint)
        if branch >= len(transitions):
            return
        if self.dedup:
            # Serial DFS records the root under the empty sleep set; keep
            # that so deeper re-arrivals at the root configuration are
            # subsumed here exactly as they are serially.
            self._expanded.setdefault(fingerprint, []).append(frozenset())
        target = transitions[branch]
        token = domain.push()
        done: List[Transition] = []
        for transition in transitions[:branch]:
            # Serial order: these ran (and were explored) before `target`.
            # Test-apply to find out which ones actually ran — a failed
            # apply() is skipped by the serial loop too.
            if domain.apply(transition):
                domain.pop(token)
                done.append(transition)
        child_sleep = frozenset(
            other for other in done if domain.independent(other, target)
        )
        if domain.apply(target):
            if self.por != "sleep":
                self._frames.append(_Frame("ignore", transitions,
                                           frozenset()))
                try:
                    domain.hb_note(target, 0)
                    self._path.append(target)
                    self._hb.append(0)
                    self._dfs_source(child_sleep, 2)
                finally:
                    self._reset_stacks()
                    domain.pop(token)
            else:
                self._path = [target]
                try:
                    self._dfs(child_sleep, 2)
                finally:
                    self._path = []
                    domain.pop(token)

    def _report(self, fingerprint: Any) -> None:
        if self.dedup:
            if fingerprint in self._visited_fps:
                return
            if self.budget is not None:
                # claim() is three-valued: 1 = newly claimed (count and
                # check it here), 0 = another worker already counted it
                # (keep it in our visited set — the merged union then
                # still counts it exactly once), -1 = the shared cap was
                # reached before this configuration (do NOT record it:
                # nobody counted it, so it must not survive the union).
                claim = self.budget.claim(fingerprint)
                if claim < 0:
                    raise _SearchCapped
                self._visited_fps.add(fingerprint)
                if claim == 0:
                    return
            else:
                self._visited_fps.add(fingerprint)
        self.stats.configurations += 1
        self.visit(*self.domain.visit_args())
        if (
            self.max_configurations is not None
            and self.stats.configurations >= self.max_configurations
        ):
            raise _SearchCapped
        if self.budget is not None and self.budget.exhausted():
            raise _SearchCapped

    def _dfs(self, sleep: FrozenSet[Transition], depth: int) -> None:
        domain, stats = self.domain, self.stats
        stats.states_visited += 1
        if self.heartbeat is not None:
            self.heartbeat.tick(depth)
        if depth > stats.peak_frontier:
            stats.peak_frontier = depth
        if self.budget is not None and self.budget.exhausted():
            raise _SearchCapped
        transitions = domain.transitions()
        fingerprint = self.dedup and self._fingerprint()
        if domain.should_visit(transitions):
            self._report(fingerprint)
        if not transitions:
            return
        if self.dedup:
            # Sleep sets are compared in the canonical frame: under
            # symmetry, orbit members arriving with differently-named
            # schedules must subsume each other iff their canonical
            # images do (canon_sleep is the identity with symmetry off).
            sleep_key = domain.canon_sleep(sleep)
            # One setdefault = one hash of the (large, nested) fingerprint
            # tuple; a get-then-setdefault pair would hash it twice.
            recorded_sets = self._expanded.setdefault(fingerprint, [])
            for recorded in recorded_sets:
                if recorded <= sleep_key:
                    stats.states_deduped += 1
                    return
            recorded_sets.append(sleep_key)
        scheduler = self.scheduler
        token = domain.push()
        done: List[Transition] = []
        explored_locally = False
        did_split = False
        for transition in transitions:
            if transition in sleep:
                stats.branches_pruned += 1
                continue
            # Sleep-set inheritance is decided *before* the step runs, on
            # the state the independence probe sees.
            child_sleep = frozenset(
                other
                for other in sleep.union(done)
                if domain.independent(other, transition)
            )
            if (
                scheduler is not None
                and explored_locally
                and scheduler.should_split(depth)
            ):
                # The pool is hungry: hand this sibling's subtree to an
                # idle worker instead of exploring it here.  Test-apply
                # keeps serial semantics — a failed apply() is skipped by
                # the serial loop too, and ``done``/``child_sleep`` are
                # exactly what the serial DFS would have used.
                if domain.apply(transition):
                    domain.pop(token)
                    scheduler.offload(
                        tuple(self._path) + (transition,), child_sleep
                    )
                    stats.steal_spawned += 1
                    if self.journal is not None:
                        self.journal.record(
                            "steal.split", depth=depth,
                            path_len=len(self._path) + 1,
                        )
                    if not did_split:
                        did_split = True
                        stats.steal_splits += 1
                    done.append(transition)
                continue
            if not domain.apply(transition):
                continue
            if scheduler is not None:
                self._path.append(transition)
                self._dfs(child_sleep, depth + 1)
                self._path.pop()
            else:
                self._dfs(child_sleep, depth + 1)
            domain.pop(token)
            done.append(transition)
            explored_locally = True

    # -- source-DPOR ----------------------------------------------------

    def _dfs_source(
        self,
        sleep: FrozenSet[Transition],
        depth: int,
        guide: WakeupTree = None,
    ) -> None:
        """The source-DPOR / optimal-DPOR node loop.

        Unlike :meth:`_dfs`, which schedules *every* enabled transition
        outside the sleep set, this loop schedules only the node's
        **source set**: the first non-slept transition, plus whatever race
        reversals detected along deeper executions add to the node's
        backtrack set (lazily, while the node is still on the stack).
        Enabled transitions never demanded by a race are provably
        redundant — their interleavings reach already-covered
        Mazurkiewicz traces — and are counted in
        ``dpor_redundant_avoided`` instead of explored.

        Under ``por="optimal"`` the backtrack dict carries a **wakeup
        tree**: each candidate maps to the pending continuation (the
        rest of the reversal sequence ``v·t`` grafted by
        :meth:`_reverse_race`), and ``guide`` is this node's own pending
        subtree handed down by the parent.  Guided nodes seed their
        schedule from the guide's root transitions instead of the
        default first-non-slept pick, so a demanded reversal is replayed
        verbatim rather than re-discovered through fresh races — the
        sibling expansions the source engine's conservative fallbacks
        force never start.  Guidance is advisory: a guide root that is
        slept or disabled here is dropped (its trace class is covered by
        the branch that slept it, or rediscovered through races), which
        keeps the source-set coverage argument untouched.
        """
        domain, stats = self.domain, self.stats
        stats.states_visited += 1
        if self.heartbeat is not None:
            self.heartbeat.tick(depth)
        if depth > stats.peak_frontier:
            stats.peak_frontier = depth
        if self.budget is not None and self.budget.exhausted():
            raise _SearchCapped
        transitions = domain.transitions()
        fingerprint = self.dedup and self._fingerprint()
        if domain.should_visit(transitions):
            self._report(fingerprint)
        if not transitions:
            return
        patch: Optional[FrozenSet[Transition]] = None
        if self.dedup:
            sleep_key = domain.canon_sleep(sleep)
            recorded_sets = self._expanded.setdefault(fingerprint, [])
            patch_base = None
            patch_missing = None
            for recorded in recorded_sets:
                if recorded <= sleep_key:
                    stats.states_deduped += 1
                    # The subtree below an equivalent node is not run
                    # again — but its events can still race with *this*
                    # path's prefix, so replay the residual alphabet
                    # against the open frames.
                    self._replay_residual()
                    return
                if self._optimal:
                    missing = recorded - sleep_key
                    if patch_missing is None or \
                            len(missing) < len(patch_missing):
                        patch_base, patch_missing = recorded, missing
            if patch_missing is not None and \
                    len(patch_missing) <= _PATCH_LIMIT:
                # Partial cut at a re-converged state: a prior visit with
                # recorded sleep R covered every execution from here not
                # starting in R; this arrival (sleep S, R ⊄ S) only owes
                # the executions starting in R \ S.  Explore exactly
                # those branches — races they demand land on the live
                # frames as usual — replay the residual alphabet for the
                # covered remainder, and record R ∩ S: the union of both
                # visits covers everything not starting in the
                # intersection, so the records weaken monotonically and
                # later arrivals full-cut.  ``R \ S`` lives in the
                # canonical frame; pull it back through the latest
                # minimizing permutation before scheduling.
                stats.dpor_patch_cuts += 1
                patch = domain.uncanon_transitions(patch_missing)
                self._replay_residual()
                recorded_sets.append(patch_base & sleep_key)
            else:
                recorded_sets.append(sleep_key)
        frame = _Frame("real", transitions, sleep)
        self._frames.append(frame)
        scheduler = self.scheduler
        token = domain.push()
        explored_locally = False
        did_split = False
        try:
            if patch is not None:
                # Patch node: schedule only the owed difference (plus
                # whatever races add while it runs).  A pending guide is
                # dropped — its demanded class either starts in the
                # patch (explored here) or not in the prior record's
                # sleep (covered by the recorded visit, whose races the
                # residual replay just re-demanded).
                for candidate in patch:
                    if frame.is_enabled(candidate):
                        frame.backtrack[candidate] = None
            else:
                seeded = False
                if guide:
                    for candidate, subtree in guide.items():
                        if candidate in sleep or not frame.is_enabled(
                            candidate
                        ):
                            continue
                        frame.backtrack[candidate] = subtree
                        seeded = True
                if not seeded:
                    for transition in transitions:
                        if transition not in sleep:
                            frame.backtrack[transition] = None
                            break
            if patch is None and domain.forces_schedule:
                for transition in transitions:
                    if (
                        transition not in sleep
                        and domain.must_schedule(transition)
                    ):
                        # setdefault: a guided candidate keeps its
                        # pending continuation.
                        frame.backtrack.setdefault(transition, None)
            while True:
                transition = frame.next_candidate()
                if transition is None:
                    if not frame.progressed and patch is None:
                        # Every candidate failed its precondition; seed
                        # the next untried enabled transition, exactly as
                        # the serial loop skips a failed apply().
                        seeded = False
                        for candidate in transitions:
                            if (
                                candidate not in sleep
                                and candidate not in frame.tried
                            ):
                                frame.backtrack[candidate] = None
                                seeded = True
                                break
                        if seeded:
                            continue
                    break
                frame.tried.add(transition)
                if frame.done:
                    base = frame.sleep.union(frame.done)
                elif frame.sleep:
                    base = frame.sleep
                else:
                    base = None
                if base:
                    child_sleep = frozenset(
                        other
                        for other in base
                        if domain.independent(other, transition)
                    )
                else:
                    child_sleep = _EMPTY_SLEEP
                if (
                    scheduler is not None
                    and explored_locally
                    and scheduler.should_split(depth)
                ):
                    if domain.apply(transition):
                        domain.pop(token)
                        scheduler.offload(
                            tuple(self._path) + (transition,),
                            child_sleep,
                            tuple(f.sleep for f in self._frames),
                            # The candidate's pending wakeup subtree
                            # rides along so the thief replays the
                            # identical schedule (None under "source").
                            frame.backtrack.get(transition),
                        )
                        stats.steal_spawned += 1
                        if self.journal is not None:
                            self.journal.record(
                                "steal.split", depth=depth,
                                path_len=len(self._path) + 1,
                            )
                        if not did_split:
                            did_split = True
                            stats.steal_splits += 1
                        frame.done.append(transition)
                        frame.progressed = True
                    continue
                if not domain.apply(transition):
                    if transition in frame.race_added:
                        # A race demanded this reversal but the
                        # transition is disabled here after all; cover
                        # the reversal by scheduling everything.
                        self._full_expand(frame)
                    continue
                self._record_event(transition)
                self._dfs_source(
                    child_sleep, depth + 1, frame.backtrack.get(transition)
                )
                self._path.pop()
                self._hb.pop()
                domain.hb_unnote(transition, len(self._path))
                domain.pop(token)
                frame.done.append(transition)
                frame.progressed = True
                explored_locally = True
        finally:
            self._frames.pop()
        for transition in transitions:
            if transition in sleep:
                stats.branches_pruned += 1
            elif transition not in frame.tried:
                stats.dpor_redundant_avoided += 1

    def _analyze_event(self, transition: Transition) -> Tuple[int, int]:
        """Happens-before masks of ``transition`` as the next path event.

        Returns ``(adjacent, hb_mask)``: the bitmask of path indices the
        event is *hb-adjacent* to (dependent and not already ordered
        through a later dependent event — the race candidates), and the
        full happens-before predecessor mask to push onto ``_hb``.
        """
        hb = self._hb
        dep = self.domain.hb_dep_mask(transition, len(self._path))
        covered = 0
        mask = dep
        while mask:
            low = mask & -mask
            mask ^= low
            covered |= hb[low.bit_length() - 1]
        return dep & ~covered, dep | covered

    def _record_event(self, transition: Transition) -> None:
        """Append ``transition`` to the path, processing its races."""
        adjacent, hb_mask = self._analyze_event(transition)
        domain, path = self.domain, self._path
        k = len(path)
        mask = adjacent
        while mask:
            low = mask & -mask
            mask ^= low
            j = low.bit_length() - 1
            if self._frames[j].mode == "ignore":
                continue
            if not domain.race_reversible(path[j], transition):
                continue
            self.stats.dpor_races += 1
            self._reverse_race(j, k, transition, hb_mask)
        domain.hb_note(transition, k)
        path.append(transition)
        self._hb.append(hb_mask)

    @staticmethod
    def _initial_covered(
        w: Transition,
        sleep: FrozenSet[Transition],
        real: bool,
        backtrack: Dict[Transition, Any],
        tried: set,
        taken: Optional[Transition],
    ) -> bool:
        """The source-set condition for one initial ``w``, shared by the
        ``path[m]`` and trailing-``transition`` arms of the race walk: a
        slept initial means the branch that slept it covers the
        reversal; a scheduled/run initial means this node already
        explores it; on a defer frame the prefix transition itself is
        the schedule the stealing victim runs."""
        if w in sleep:
            return True
        if real:
            return w in backtrack or w in tried
        return w == taken

    def _race_plan(
        self, j: int, k: int, transition: Transition, hb_mask: int
    ) -> Optional[Tuple[Transition, WakeupTree]]:
        """Walk the initials of ``v = notdep(path[j], E) · transition``.

        Returns ``None`` when some initial already covers the reversal,
        else ``(first, continuation)``: the sequence's first event and —
        under optimal DPOR — the wakeup subtree encoding the rest of
        ``v·t`` in path order, so the branch replays the demanded
        schedule instead of rediscovering it race by race.
        """
        profile = self.profile
        start = time.perf_counter() if profile is not None else 0.0
        frame = self._frames[j]
        real = frame.mode == "real"
        # On a "defer" frame the sibling loop belongs to the stealing
        # victim, so reversals become local subtree tasks instead.
        taken = None if real else self._path[j]
        path, hb = self._path, self._hb
        sleep = frame.sleep
        backtrack, tried = frame.backtrack, frame.tried
        first: Optional[Transition] = None
        covered = False
        v_mask = 0
        optimal = self._optimal
        chain: Optional[List[Transition]] = [] if optimal else None
        dep_tail: Optional[List[Transition]] = [] if optimal else None
        for m in range(j + 1, k):
            hbm = hb[m]
            if (hbm >> j) & 1:
                # Depends on path[j]: not part of v — but part of the
                # wakeup spine's tail (see below).
                if dep_tail is not None:
                    dep_tail.append(path[m])
                continue
            w = path[m]
            if not (hbm & v_mask):
                if self._initial_covered(
                    w, sleep, real, backtrack, tried, taken
                ):
                    covered = True
                    break
                if first is None:
                    first = w
            v_mask |= 1 << m
            if chain is not None:
                chain.append(w)
        if not covered and not (hb_mask & v_mask):
            if self._initial_covered(
                transition, sleep, real, backtrack, tried, taken
            ):
                covered = True
            elif first is None:
                first = transition
        if first is None:  # pragma: no cover - v always has an initial
            covered = True
        plan: Optional[Tuple[Transition, WakeupTree]] = None
        if not covered:
            cont: WakeupTree = None
            if chain is not None:
                # The wakeup spine is the *whole* trace permutation
                # v·t·path[j]·(events dependent on path[j], in path
                # order): after the reversed pair runs, the tail
                # re-executes the remainder of the original fragment, so
                # the branch converges onto recorded configurations and
                # is dedup-cut within a step or two instead of wandering
                # to a sleep-blocked dead end.  The spine respects
                # happens-before everywhere except the deliberately
                # reversed (path[j], t) pair, and sleep inheritance
                # cooperates: path[j] is slept (from ``done``) across v
                # and woken exactly when the dependent t executes.
                chain.append(transition)
                chain.append(path[j])
                chain.extend(dep_tail)
                if chain[0] == first:
                    for w in reversed(chain[1:]):
                        cont = {w: cont}
            plan = (first, cont)
        if profile is not None:
            profile.add("race", time.perf_counter() - start)
        return plan

    def _reverse_race(
        self, j: int, k: int, transition: Transition, hb_mask: int
    ) -> None:
        """Reverse the race ``path[j]`` ↔ ``transition`` at frame ``j``.

        :meth:`_race_plan` walks the initials of the reversal sequence
        ``v·t`` and short-circuits when one already covers it, which in
        the common case is the immediately following event.  Otherwise
        the first initial is scheduled — grafted into the backtrack
        (wakeup) store of a real frame, queued as a subtree task for a
        defer frame — through this single insertion point.  A demanded
        initial that is not enabled at frame ``j`` (only possible via
        :meth:`_replay_residual`'s positional over-approximation)
        degrades the frame to the full sleep-set schedule; optimal DPOR
        first drops the demand when :meth:`_demand_vacuous` proves the
        event ordered after ``path[j]`` in every execution, and counts
        the degradations it cannot avoid as wakeup fallbacks rather
        than full expansions — races from real executions always have
        enabled initials, so the classical optimality argument is
        unaffected.
        """
        plan = self._race_plan(j, k, transition, hb_mask)
        if plan is None:
            return
        first, cont = plan
        frame = self._frames[j]
        real = frame.mode == "real"
        if self.journal is not None:
            self.journal.record(
                "dpor.reversal", frame=j, depth=k, mode=frame.mode,
            )
        if not frame.is_enabled(first):
            if self._optimal and self._demand_vacuous(j, first):
                # Vacuous: ordered after path[j] in every run.
                self.stats.dpor_vacuity_drops += 1
                return
            if real:
                self._full_expand(frame)
            else:
                self._full_expand_defer(j, taken=self._path[j])
            return
        if real:
            if cont is not None:
                self.stats.dpor_wakeup_branches += 1
            frame.backtrack[first] = cont
            frame.race_added.add(first)
        else:
            self._defer(j, first, cont)

    def _counter_at(self, j: int, replica: str) -> int:
        """Invocations ``replica`` had completed at frame ``j`` — i.e.
        the program index of its next invocation there."""
        count = 0
        path = self._path
        for m in range(j):
            t = path[m]
            if t[0] == "inv" and t[1] == replica:
                count += 1
        return count

    def _demand_vacuous(self, j: int, first: Transition) -> bool:
        """Is a demanded-but-disabled initial provably vacuous?

        A race can demand a transition not enabled at frame ``j`` only
        through :meth:`_replay_residual`'s positional over-approximation:
        the demanded event sits behind unexecuted program steps or
        undelivered causal predecessors.  When its enabling chain runs
        through an invocation of ``path[j]``'s own replica while
        ``path[j]`` is itself an invocation, program order pins the
        demanded event after ``path[j]`` in every execution — the race
        is an artifact of the missing creation edge and the demand is
        dropped with no insertion at all.

        Every other disabled demand degrades to a counted conservative
        expansion in the caller.  Substituting the first *enabled* link
        of the chain looks tempting — "every execution performing the
        demanded event schedules it first" — but is unsound: the link
        need not be an *initial* of the demanded class, so finding it
        asleep (covered by a sibling) does not imply the class itself
        was covered, and configurations are lost.  Stress-testing with
        sleep independence coarsened to the happens-before relation
        exposes exactly that loss; the vacuity walk below survives the
        same stress bit-for-bit.
        """
        frame = self._frames[j]
        blocker = self._path[j]
        if blocker[0] != "inv":
            # Deliveries and gossips reorder freely with the
            # invocations of their replica: nothing is pinned behind
            # path[j], so no demand is vacuous.
            return False
        pinned = blocker[1]
        domain = self.domain
        t = first
        for _ in range(64):
            if frame.is_enabled(t):
                return False
            kind = t[0]
            if kind == "inv":
                q = t[1]
                if q == pinned:
                    return True  # program order: after path[j] always
                head = ("inv", q, self._counter_at(j, q))
                if head == t:  # pragma: no cover - head is enabled
                    return False
                t = head
                continue
            if kind != "del":  # pragma: no cover - gossips never block
                return False
            target, lid = t[1], t[2]
            q, i = lid
            if i >= self._counter_at(j, q):
                # The label does not exist at frame j: its creating
                # invocation chain must run first.
                if q == pinned:
                    return True  # creation sits after path[j]: vacuous
                t = ("inv", q, self._counter_at(j, q))
                continue
            # The label exists at frame j but is not deliverable there:
            # a causal predecessor is missing from the target's seen
            # set.  The *current* seen set is a sound proxy — seen sets
            # only grow, so a lid missing now was missing at frame j.
            # (min() keeps the walk deterministic across worker
            # processes; frozenset order is not.)
            seen = domain._seen_lids[target]
            missing = min(
                (p for p in domain._causal_lids[lid] if p not in seen),
                default=None,
            )
            if missing is None:  # pragma: no cover - delivered inside
                # (j, k): the walk covered the demand through v, or the
                # race was never hb-adjacent.  Unreachable; degrade
                # conservatively rather than drop the reversal.
                return False
            t = ("del", target, missing)
        return False  # pragma: no cover - chains are acyclic

    def _full_expand(self, frame: _Frame) -> None:
        """Degrade a frame to the sleep-set schedule (every non-slept
        enabled transition), the conservative fallback when precise race
        coverage is unavailable.  Under optimal DPOR the triggers are a
        race candidate failing its *precondition* at apply time and a
        non-vacuous disabled initial demanded by residual replay —
        counted separately as wakeup fallbacks, since races detected on
        real executions always insert precisely and the classical
        full-expansion count stays zero."""
        if self._optimal:
            self.stats.dpor_wakeup_fallbacks += 1
        else:
            self.stats.dpor_full_expansions += 1
        for transition in frame.enabled:
            if (
                transition not in frame.sleep
                and transition not in frame.tried
                and transition not in frame.backtrack
            ):
                # Deliberately not race_added: if a fallback candidate
                # fails to apply it is skipped, as in the sleep engine.
                frame.backtrack[transition] = None

    def _full_expand_defer(
        self, j: int, taken: Optional[Transition] = None
    ) -> None:
        """Defer-frame analogue of :meth:`_full_expand`: enqueue every
        non-slept enabled transition at prefix node ``j`` as a subtree
        task (minus ``taken``, whose subtree the victim explored)."""
        if self._optimal:
            self.stats.dpor_wakeup_fallbacks += 1
        else:
            self.stats.dpor_full_expansions += 1
        frame = self._frames[j]
        for transition in frame.enabled:
            if transition not in frame.sleep and transition != taken:
                self._defer(j, transition)

    def _defer(
        self, j: int, w: Transition, cont: WakeupTree = None
    ) -> None:
        """Queue the subtree task ``path[:j] + (w,)`` (deduplicated)."""
        prefix = tuple(self._path[:j])
        if self._deferred_seen.seen((prefix, w)):
            return
        domain = self.domain
        frame = self._frames[j]
        task_sleep = frozenset(
            s for s in frame.sleep if domain.independent(s, w)
        )
        frame_sleeps = tuple(f.sleep for f in self._frames[:j + 1])
        self._deferred.append(
            (prefix + (w,), task_sleep, frame_sleeps, cont)
        )
        self.stats.dpor_deferred += 1

    def _replay_residual(self) -> None:
        """Re-run race detection for a dedup-cut subtree.

        The subtree below this node is not executed again — but its
        events can race with the *current* path prefix, which differs
        from the one an equivalent subtree was first explored under.  The
        domain's residual alphabet (every event that can still occur from
        here) stands in for the subtree: each residual transition is
        analyzed against the live frames exactly as if it ran next.
        Under quiescence the residual alphabet equals the footprint of
        every maximal execution below this node, and it is computed from
        the *live* configuration — so nothing is recorded, no canonical-
        frame renaming is needed, and whether the equivalent subtree was
        itself cut short (offloaded, capped) is irrelevant.  Positional
        information is over-approximated (a deep subtree event is
        analyzed as if it ran immediately) — extra backtrack points cost
        work, never soundness.
        """
        domain, path = self.domain, self._path
        k = len(path)
        for u in domain.residual_transitions():
            adjacent, hb_mask = self._analyze_event(u)
            mask = adjacent
            while mask:
                low = mask & -mask
                mask ^= low
                j = low.bit_length() - 1
                if self._frames[j].mode == "ignore":
                    continue
                if not domain.race_reversible(path[j], u):
                    continue
                self.stats.dpor_races += 1
                self._reverse_race(j, k, u, hb_mask)


# ----------------------------------------------------------------------
# Session factory (the work-stealing workers' entry point)
# ----------------------------------------------------------------------


def build_engine(
    kind: str,
    make_system: Callable[[], Any],
    programs: Dict[str, Program],
    visit: Callable[[Any, Dict[str, List[Any]]], None],
    require_quiescence: bool = True,
    max_gossips: int = 3,
    max_configurations: Optional[int] = None,
    reduction: bool = True,
    dedup: bool = True,
    stats: Optional[ExploreStats] = None,
    fingerprints: Optional[set] = None,
    expanded: Optional[Dict] = None,
    fp_store: Optional[Any] = None,
    scheduler: Optional[Any] = None,
    budget: Optional[Any] = None,
    symmetry: bool = False,
    por: str = "sleep",
    profile: Optional[Any] = None,
    journal: Optional[Any] = None,
    heartbeat: Optional[Any] = None,
) -> _Engine:
    """Build a reusable exploration engine for ``kind`` (``op``/``state``).

    Unlike :func:`explore_op_programs`/:func:`explore_state_programs`,
    which run one exploration and return, the engine handle persists its
    domain, visited/expanded records, and statistics across multiple
    :meth:`_Engine.run` calls — the work-stealing workers run many
    subtree tasks of the same scope through one session, so dedup and
    verdict caches warm up exactly like a serial run's.
    """
    stats = stats if stats is not None else ExploreStats()
    if kind == "op":
        domain: Any = _OpDomain(
            make_system(), programs, require_quiescence, reduction, stats,
            symmetry=symmetry,
        )
    elif kind == "state":
        domain = _StateDomain(
            make_system(), programs, max_gossips, reduction, stats,
            symmetry=symmetry,
        )
    else:  # pragma: no cover - caller bug
        raise ValueError(f"unknown exploration kind {kind!r}")
    return _Engine(
        domain, visit, max_configurations, dedup, stats,
        fingerprints=fingerprints, expanded=expanded, fp_store=fp_store,
        scheduler=scheduler, budget=budget, por=por,
        profile=profile, journal=journal, heartbeat=heartbeat,
    )


# ----------------------------------------------------------------------
# Public entry points (signatures of the historical explorers)
# ----------------------------------------------------------------------


def explore_op_programs(
    make_system: Callable[[], OpBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[OpBasedSystem, Dict[str, List[Any]]], None],
    require_quiescence: bool = True,
    max_configurations: Optional[int] = None,
    reduction: bool = True,
    dedup: bool = True,
    stats: Optional[ExploreStats] = None,
    root_branch: Optional[int] = None,
    fingerprints: Optional[set] = None,
    instrumentation: Optional[Instrumentation] = None,
    symmetry: bool = False,
    fp_store: Optional[Any] = None,
    expanded: Optional[Dict] = None,
    por: str = "sleep",
    heartbeat: Optional[Any] = None,
) -> int:
    """Run per-replica ``programs`` under every op-based interleaving.

    ``visit(system, returns)`` is called once per *distinct* final
    configuration (deduplicated by canonical fingerprint); the system
    object passed to ``visit`` is reused by the engine afterwards, so
    callbacks must extract what they need rather than keep a reference.
    Returns the number of configurations visited.

    ``reduction=False`` disables the commutativity-based sleep sets (the
    per-entry escape hatch); ``dedup=False`` additionally disables
    fingerprint deduplication, recovering the naive enumeration order.
    ``symmetry=True`` dedups on orbit representatives under replica
    permutation (see :mod:`repro.runtime.symmetry`): ``visit`` then fires
    once per orbit and ``max_configurations`` caps the *orbit* count.
    ``stats`` may be a caller-provided :class:`ExploreStats` to fill in.

    ``root_branch=i`` explores only the subtree under the i-th initial
    transition (the frontier-split unit of ``repro.proofs.parallel``);
    ``fingerprints`` may be a caller-provided set used as the visited-
    configuration record, so branch workers' sets can be unioned.

    ``instrumentation`` wraps the run in an ``explore.op`` span and folds
    the final :class:`ExploreStats` into metrics; the DFS hot path is
    untouched, so disabled instrumentation costs one attribute check.
    """
    stats = stats if stats is not None else ExploreStats()
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    domain = _OpDomain(
        make_system(), programs, require_quiescence, reduction, stats,
        symmetry=symmetry,
    )
    with ins.span("explore.op", replicas=len(programs),
                  root_branch=root_branch, symmetry=symmetry,
                  por=por) as span:
        _Engine(
            domain, visit, max_configurations, dedup, stats,
            fingerprints=fingerprints, expanded=expanded,
            fp_store=fp_store, por=por,
            profile=ins.profile, journal=ins.journal, heartbeat=heartbeat,
        ).run(root_branch)
        span.set(configurations=stats.configurations,
                 states_visited=stats.states_visited)
    if ins.enabled:
        ins.record_explore(stats, kind="op")
    return stats.configurations


def explore_state_programs(
    make_system: Callable[[], StateBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[StateBasedSystem, Dict[str, List[Any]]], None],
    max_gossips: int = 3,
    max_configurations: Optional[int] = None,
    reduction: bool = True,
    dedup: bool = True,
    stats: Optional[ExploreStats] = None,
    root_branch: Optional[int] = None,
    fingerprints: Optional[set] = None,
    instrumentation: Optional[Instrumentation] = None,
    symmetry: bool = False,
    fp_store: Optional[Any] = None,
    expanded: Optional[Dict] = None,
    por: str = "sleep",
    heartbeat: Optional[Any] = None,
) -> int:
    """Run ``programs`` under every bounded state-based interleaving.

    Same optimization/escape-hatch knobs (``symmetry`` included) and
    instrumentation hook as :func:`explore_op_programs`; ``visit`` fires
    on every configuration whose programs have finished, including ones
    with leftover gossip budget (partial propagation).
    """
    stats = stats if stats is not None else ExploreStats()
    ins = instrumentation if instrumentation is not None \
        else NULL_INSTRUMENTATION
    domain = _StateDomain(
        make_system(), programs, max_gossips, reduction, stats,
        symmetry=symmetry,
    )
    with ins.span("explore.state", replicas=len(programs),
                  max_gossips=max_gossips, root_branch=root_branch,
                  symmetry=symmetry, por=por) as span:
        _Engine(
            domain, visit, max_configurations, dedup, stats,
            fingerprints=fingerprints, expanded=expanded,
            fp_store=fp_store, por=por,
            profile=ins.profile, journal=ins.journal, heartbeat=heartbeat,
        ).run(root_branch)
        span.set(configurations=stats.configurations,
                 states_visited=stats.states_visited)
    if ins.enabled:
        ins.record_explore(stats, kind="state")
    return stats.configurations


# ----------------------------------------------------------------------
# Canonical configuration keys (the differential-oracle equivalence)
# ----------------------------------------------------------------------


def op_config_key(
    system: OpBasedSystem, returns: Dict[str, List[Any]]
) -> Tuple:
    """A hashable key identifying a final configuration up to equivalence.

    Labels are named by logical id (origin, per-origin sequence number), so
    two executions that perform the same operations with the same returns,
    timestamps, visibility, seen-sets, and replica states — regardless of
    ``Label.uid`` draws or the order interleavings were enumerated in —
    get equal keys.  Used by the naive-vs-engine differential tests.
    """
    lids = _logical_ids(system.generation_order)
    labels = frozenset(
        (lids[l.uid], l.obj, l.method, l.args, l.ret, l.ts)
        for l in system.generation_order
    )
    vis = frozenset((lids[a.uid], lids[b.uid]) for a, b in system._vis)
    seen = tuple(
        (r, frozenset(lids[l.uid] for l in system._seen[r]))
        for r in system.replicas
    )
    states = tuple(
        (r, name, crdt.fingerprint(system._states[(r, name)]))
        for r in system.replicas
        for name, crdt in sorted(system.objects.items())
    )
    rets = tuple(sorted((r, tuple(v)) for r, v in returns.items()))
    return (labels, vis, seen, states, rets)


def state_config_key(
    system: StateBasedSystem, returns: Dict[str, List[Any]]
) -> Tuple:
    """State-based analogue of :func:`op_config_key`."""
    lids = _logical_ids(system.generation_order)
    labels = frozenset(
        (lids[l.uid], l.method, l.args, l.ret, l.ts)
        for l in system.generation_order
    )
    vis = frozenset((lids[a.uid], lids[b.uid]) for a, b in system._vis)
    seen = tuple(
        (r, frozenset(lids[l.uid] for l in system._seen[r]))
        for r in system.replicas
    )
    states = tuple(
        (r, system.crdt.fingerprint(system._states[r]))
        for r in system.replicas
    )
    rets = tuple(sorted((r, tuple(v)) for r, v in returns.items()))
    return (labels, vis, seen, states, rets)


# ----------------------------------------------------------------------
# Orbit keys (the symmetry-differential-oracle equivalence)
# ----------------------------------------------------------------------


def op_orbit_key(
    system: OpBasedSystem,
    returns: Dict[str, List[Any]],
    programs: Dict[str, Program],
) -> Tuple:
    """The canonical orbit key of a final configuration.

    Two final configurations get equal orbit keys iff their
    :func:`op_config_key` keys are images of each other under a
    permutation of the symmetric replicas of ``programs`` (identity
    included) — the same group the engine dedups over with
    ``symmetry=True``, applied to the *order-insensitive* config key (the
    engine's internal fingerprint additionally distinguishes generation
    order, which the sleep-set reduction deliberately prunes).  The
    symmetry-differential tests group the naive explorer's configurations
    by this key — a partition — and check the fast engine visited a
    representative of every part and nothing outside.
    """
    group = build_group(programs, extra_names=tuple(system.objects))
    labels, vis, seen, states, rets = op_config_key(system, returns)
    # The per-replica components are tuples *ordered by replica name*;
    # renaming inside an ordered tuple would not reorder the slots, so
    # turn them into sets first (entries stay unique — each is keyed by
    # its replica name) and let canon_key sort them after renaming.
    key = (labels, vis, frozenset(seen), frozenset(states), frozenset(rets))
    return min(canon_key(key, mapping) for mapping in group.maps)


def state_orbit_key(
    system: StateBasedSystem,
    returns: Dict[str, List[Any]],
    programs: Dict[str, Program],
) -> Tuple:
    """State-based analogue of :func:`op_orbit_key` (over
    :func:`state_config_key`, which already collapses leftover-budget
    duplicates identically on the naive and engine sides)."""
    group = build_group(programs)
    labels, vis, seen, states, rets = state_config_key(system, returns)
    key = (labels, vis, frozenset(seen), frozenset(states), frozenset(rets))
    return min(canon_key(key, mapping) for mapping in group.maps)
