"""Object composition helpers (Sec. 5).

:class:`~repro.runtime.system.OpBasedSystem` already implements the product
semantics ``o1 ⊗ o2`` (independent timestamp generators) and the
shared-timestamp-generator composition ``o1 ⊗ts o2`` (Fig. 11) through its
``shared_timestamps`` flag.  This module adds:

* :func:`composed` / :func:`composed_ts` — readable constructors;
* :func:`composed_spec` — the specification composition
  ``Spec₁ ⊗ Spec₂`` (interleavings);
* :func:`check_composed_ra_linearizable` — RA-linearizability of a
  multi-object history w.r.t. the composed specification (with per-object
  query-update rewritings applied first);
* :func:`combine_per_object` — try to merge chosen per-object
  linearizations into one global linearization (the operation that fails in
  Fig. 9/Fig. 10 and motivates Theorems 5.3/5.5).
"""

import heapq
from typing import Dict, List, Optional, Sequence

from ..core.history import History
from ..core.label import Label
from ..core.ralin import RAResult, check_ra_linearizable
from ..core.rewriting import QueryUpdateRewriting, rewrite_history
from ..core.spec import ComposedSpec, SequentialSpec
from ..crdts.base import OpBasedCRDT
from .system import OpBasedSystem


def composed(
    objects: Dict[str, OpBasedCRDT],
    replicas: Sequence[str] = ("r1", "r2", "r3"),
) -> OpBasedSystem:
    """The unrestricted composition ⊗: independent timestamp generators."""
    return OpBasedSystem(objects, replicas, shared_timestamps=False)


def composed_ts(
    objects: Dict[str, OpBasedCRDT],
    replicas: Sequence[str] = ("r1", "r2", "r3"),
) -> OpBasedSystem:
    """The shared-timestamp-generator composition ⊗ts (Fig. 11).

    The default replica tuple matches :class:`OpBasedSystem`,
    :class:`~repro.runtime.state_system.StateBasedSystem`, and
    :class:`~repro.runtime.state_composition.ComposedStateSystem`.
    """
    return OpBasedSystem(objects, replicas, shared_timestamps=True)


def composed_spec(specs: Dict[str, SequentialSpec]) -> ComposedSpec:
    """``Spec₁ ⊗ Spec₂ ⊗ …`` — admitted sequences are interleavings."""
    return ComposedSpec(specs)


class _PerObjectRewriting(QueryUpdateRewriting):
    """Dispatch a per-object family of rewritings over a composed history."""

    def __init__(self, gammas: Dict[str, Optional[QueryUpdateRewriting]]):
        self._gammas = gammas

    def rewrite(self, label: Label):
        gamma = self._gammas.get(label.obj)
        if gamma is None:
            return (label,)
        return gamma.rewrite(label)


def per_object_rewriting(
    gammas: Dict[str, Optional[QueryUpdateRewriting]]
) -> QueryUpdateRewriting:
    return _PerObjectRewriting(gammas)


def check_composed_ra_linearizable(
    history: History,
    specs: Dict[str, SequentialSpec],
    gammas: Optional[Dict[str, Optional[QueryUpdateRewriting]]] = None,
    max_orders: Optional[int] = None,
) -> RAResult:
    """Decide RA-linearizability of a composed history (Sec. 5.1)."""
    spec = composed_spec(specs)
    gamma = per_object_rewriting(gammas) if gammas else None
    return check_ra_linearizable(
        history, spec, gamma=gamma, max_orders=max_orders
    )


def combine_per_object(
    history: History,
    per_object_orders: Dict[str, Sequence[Label]],
) -> Optional[List[Label]]:
    """Merge fixed per-object update linearizations into a global one.

    Returns a global sequence whose projection on each object equals the
    given per-object order and which is consistent with the (closed)
    visibility of ``history`` — or None when the constraints are cyclic,
    which is exactly the failure exhibited in Fig. 9/Fig. 10.

    Kahn's algorithm over a uid-keyed heap: the heap holds exactly the
    labels whose predecessors are all placed, so each step pops the
    minimum-uid ready label — the same label the quadratic rescan used to
    select — in O((V+E) log V) total.
    """
    nodes: List[Label] = list(dict.fromkeys(
        label for order in per_object_orders.values() for label in order
    ))
    indegree: Dict[Label, int] = {label: 0 for label in nodes}
    succs: Dict[Label, List[Label]] = {label: [] for label in nodes}
    edges: set = set()

    def add_edge(src: Label, dst: Label) -> None:
        if src is not dst and (src.uid, dst.uid) not in edges:
            edges.add((src.uid, dst.uid))
            succs[src].append(dst)
            indegree[dst] += 1

    node_set = set(nodes)
    for src, dst in history.closure():
        if src in node_set and dst in node_set:
            add_edge(src, dst)
    for order in per_object_orders.values():
        for earlier, later in zip(order, list(order)[1:]):
            add_edge(earlier, later)

    heap: List[tuple] = [
        (label.uid, label) for label in nodes if not indegree[label]
    ]
    heapq.heapify(heap)
    result: List[Label] = []
    while heap:
        _, nxt = heapq.heappop(heap)
        result.append(nxt)
        for succ in succs[nxt]:
            indegree[succ] -= 1
            if not indegree[succ]:
                heapq.heappush(heap, (succ.uid, succ))
    if len(result) != len(nodes):
        return None  # cyclic: the per-object choices cannot be combined
    return result
