"""Deterministic, seed-replayable fault injection for both runtimes.

The op-based semantics (Fig. 7) *assumes* causal, exactly-once delivery;
the state-based results (Appendix D) must hold under arbitrary loss,
duplication, and stale redelivery.  This module is the single adversary
behind both gaps:

* :class:`FaultPlan` — a declarative fault model: drop / duplicate /
  delay / stale-redelivery probabilities, partition windows, and replica
  crash+recovery points.  Plans are immutable, validated, and JSON
  round-trippable, so a failing run can be shipped around as data.
* :class:`AdversaryTrace` — the bit-for-bit record of what the adversary
  did.  Every decision the drivers take flows from one
  ``random.Random(seed)`` stream plus the plan, so the same
  ``(seed, plan)`` replays to an identical trace (compare with
  :meth:`AdversaryTrace.fingerprint`); labels are referenced by their
  generation index, which — unlike ``Label.uid`` — is stable across
  processes.
* :class:`UnreliableCausalBroadcast` — the op-based network: packets may
  be dropped, duplicated, delayed (reordered), cut by partitions, or
  eaten by a crash; receivers deduplicate and buffer for causal order;
  senders retransmit until every label is applied everywhere.
* :class:`LossyGossipDriver` — the Appendix D adversary for
  :class:`~repro.runtime.state_system.StateBasedSystem`, which
  ``sync_all`` idealizes away: gossip messages are lost, duplicated, and
  *stale* (an arbitrary old snapshot is redelivered at an arbitrary
  replica).  Anti-entropy — replicas keep generating fresh snapshots —
  makes loss a delay, never a divergence.

Crash model: fail-stop with stable storage.  A crashed replica neither
sends nor receives during its window; packets in flight to it are lost
(retransmission recovers them after the recovery point); its CRDT state
and applied-label set survive the crash.

The proof harness on top (``repro.proofs.chaos``) drives whole chaos
runs — workload + adversary + RA-linearizability verdict + convergence
oracle — and dumps/replays failing traces; see ``docs/faults.md``.
"""

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import SchedulingError
from ..core.label import Label
from .state_system import Message, StateBasedSystem
from .system import OpBasedSystem

#: Schema identifier for dumped plans/traces.
TRACE_SCHEMA = "repro.chaos.trace/1"


# ----------------------------------------------------------------------
# The fault model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionWindow:
    """During steps ``[start, end)`` only intra-block traffic flows.

    Replicas not named by any block form implicit singleton blocks.
    """

    start: int
    end: int
    blocks: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"partition window [{self.start}, {self.end}) is empty"
            )
        members: Set[str] = set()
        frozen = tuple(tuple(block) for block in self.blocks)
        object.__setattr__(self, "blocks", frozen)
        for block in frozen:
            overlap = members & set(block)
            if overlap:
                raise ValueError(
                    f"partition blocks must be disjoint; {sorted(overlap)} "
                    "appear twice"
                )
            members |= set(block)

    def active(self, step: int) -> bool:
        return self.start <= step < self.end

    def separates(self, one: str, other: str) -> bool:
        """True when ``one`` and ``other`` are in different blocks."""
        for block in self.blocks:
            if one in block:
                return other not in block
            if other in block:
                return True
        return False  # both unlisted: same implicit connectivity


@dataclass(frozen=True)
class CrashSpec:
    """Replica ``replica`` is down during steps ``[at_step, recover_step)``.

    ``recover_step=None`` means the replica never recovers — quiescence
    is then unreachable, so soak plans always set a recovery point.
    """

    replica: str
    at_step: int
    recover_step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError("crash step must be non-negative")
        if self.recover_step is not None and self.recover_step <= self.at_step:
            raise ValueError(
                f"recovery step {self.recover_step} must come after the "
                f"crash at step {self.at_step}"
            )

    def down(self, step: int) -> bool:
        if step < self.at_step:
            return False
        return self.recover_step is None or step < self.recover_step


_PROBABILITY_FIELDS = (
    "drop_probability",
    "duplicate_probability",
    "delay_probability",
    "stale_probability",
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault model driving both adversarial runtimes.

    ``drop`` / ``duplicate`` / ``delay`` apply to op-based packets and to
    state-based gossip messages alike; ``stale`` is state-based only (the
    probability that a gossip action redelivers an arbitrary *old*
    message instead of generating a fresh snapshot).
    """

    name: str = "custom"
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    stale_probability: float = 0.0
    partitions: Tuple[PartitionWindow, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- queries -------------------------------------------------------

    def crashed(self, step: int, replica: str) -> bool:
        """Is ``replica`` down at ``step``?"""
        return any(
            crash.replica == replica and crash.down(step)
            for crash in self.crashes
        )

    def connected(self, step: int, one: str, other: str) -> bool:
        """Can ``one`` and ``other`` exchange traffic at ``step``?"""
        return not any(
            window.active(step) and window.separates(one, other)
            for window in self.partitions
        )

    def horizon(self) -> int:
        """First step at which every window has closed and every crash
        (with a recovery point) has recovered."""
        bound = 0
        for window in self.partitions:
            bound = max(bound, window.end)
        for crash in self.crashes:
            if crash.recover_step is not None:
                bound = max(bound, crash.recover_step)
        return bound

    def recovers(self) -> bool:
        """True when every crash has a recovery point (quiescence is
        reachable)."""
        return all(crash.recover_step is not None for crash in self.crashes)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "delay_probability": self.delay_probability,
            "stale_probability": self.stale_probability,
            "partitions": [
                {"start": w.start, "end": w.end,
                 "blocks": [list(block) for block in w.blocks]}
                for w in self.partitions
            ],
            "crashes": [
                {"replica": c.replica, "at_step": c.at_step,
                 "recover_step": c.recover_step}
                for c in self.crashes
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultPlan":
        return FaultPlan(
            name=data.get("name", "custom"),
            drop_probability=data.get("drop_probability", 0.0),
            duplicate_probability=data.get("duplicate_probability", 0.0),
            delay_probability=data.get("delay_probability", 0.0),
            stale_probability=data.get("stale_probability", 0.0),
            partitions=tuple(
                PartitionWindow(
                    w["start"], w["end"],
                    tuple(tuple(block) for block in w["blocks"]),
                )
                for w in data.get("partitions", ())
            ),
            crashes=tuple(
                CrashSpec(c["replica"], c["at_step"], c.get("recover_step"))
                for c in data.get("crashes", ())
            ),
        )

    def named(self, name: str) -> "FaultPlan":
        """A copy of this plan under a different display name."""
        return replace(self, name=name)


#: The reliable network: no faults at all.
RELIABLE_PLAN = FaultPlan(name="reliable")


# ----------------------------------------------------------------------
# The replayable trace
# ----------------------------------------------------------------------


@dataclass
class AdversaryTrace:
    """Everything the adversary (and the driver) did, as replayable data.

    Events are tuples ``(step, kind, *detail)`` where detail items are
    JSON scalars; labels appear as their generation index (stable across
    processes, unlike ``Label.uid``).  Two runs from the same
    ``(seed, plan)`` produce equal traces — the determinism contract the
    chaos tests pin.
    """

    seed: int
    plan: FaultPlan
    events: List[Tuple] = field(default_factory=list)

    def record(self, step: int, kind: str, *detail: Any) -> None:
        self.events.append((step, kind) + detail)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event[1]] = counts.get(event[1], 0) + 1
        return counts

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON rendering of the events."""
        payload = json.dumps(
            [list(event) for event in self.events],
            separators=(",", ":"), sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "plan": self.plan.to_dict(),
            "fingerprint": self.fingerprint(),
            "events": [list(event) for event in self.events],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "AdversaryTrace":
        return AdversaryTrace(
            seed=data["seed"],
            plan=FaultPlan.from_dict(data["plan"]),
            events=[tuple(event) for event in data.get("events", ())],
        )


class _NullTrace:
    """Recording sink when no trace was requested."""

    __slots__ = ()

    def record(self, step: int, kind: str, *detail: Any) -> None:
        pass


_NULL_TRACE = _NullTrace()


# ----------------------------------------------------------------------
# Op-based: causal broadcast over the fault plan
# ----------------------------------------------------------------------


@dataclass
class NetworkStats:
    """What the adversary did during an op-based run."""

    packets_sent: int = 0
    duplicates: int = 0
    drops: int = 0
    #: Distinct (target, label) packets that were ever causally buffered
    #: (requeueing the same blocked packet again does not count).
    buffered: int = 0
    delivered: int = 0
    retransmissions: int = 0
    delays: int = 0
    partition_drops: int = 0
    crash_drops: int = 0


#: ``deliver_one`` outcomes.  Only ``DELIVERED`` is progress; the others
#: merely *handle* a packet (and ``IDLE`` means there was none).
DELIVERED = "delivered"
DUPLICATE = "duplicate"
BUFFERED = "buffered"
DELAYED = "delayed"
DROPPED = "dropped"
IDLE = "idle"


class UnreliableCausalBroadcast:
    """Causal broadcast for one :class:`OpBasedSystem` over a bad network.

    The classic recipe: per-target packets, receiver-side deduplication
    (exactly-once), causal buffering (the Fig. 7 ``minvis`` check via
    ``system.deliverable``), and sender retransmission (eventual
    delivery).  All misbehaviour comes from the :class:`FaultPlan`; the
    legacy ``duplicate_probability`` / ``drop_probability`` arguments
    build an equivalent plan for callers that predate it.
    """

    def __init__(
        self,
        system: OpBasedSystem,
        seed: int = 0,
        duplicate_probability: float = 0.2,
        drop_probability: float = 0.2,
        plan: Optional[FaultPlan] = None,
        trace: Optional[AdversaryTrace] = None,
    ) -> None:
        self.system = system
        self.rng = random.Random(seed)
        if plan is None:
            plan = FaultPlan(
                name="legacy",
                drop_probability=drop_probability,
                duplicate_probability=duplicate_probability,
            )
        self.plan = plan
        self.trace = trace if trace is not None else _NULL_TRACE
        self.step = 0
        #: Packets in flight: (target replica, label).
        self.in_flight: List[Tuple[str, Label]] = []
        self._announced: Set[Label] = set()
        self._buffered_pairs: Set[Tuple[str, Label]] = set()
        self._down: Set[str] = set()
        self._label_index: Dict[Label, int] = {}
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Time and fault windows
    # ------------------------------------------------------------------

    def _index(self, label: Label) -> int:
        index = self._label_index.get(label)
        if index is None:
            index = self.system.generation_order.index(label)
            self._label_index[label] = index
        return index

    def tick(self) -> None:
        """Advance the adversary clock; apply crash/recovery transitions.

        A replica entering its crash window loses every packet currently
        in flight to it (fail-stop: the volatile receive queue is gone);
        its durable state — CRDT state and applied labels — survives.
        """
        self.step += 1
        down_now = {
            r for r in self.system.replicas
            if self.plan.crashed(self.step, r)
        }
        for replica in sorted(down_now - self._down):
            lost = [p for p in self.in_flight if p[0] == replica]
            self.in_flight = [p for p in self.in_flight if p[0] != replica]
            self.stats.crash_drops += len(lost)
            self.trace.record(self.step, "crash", replica, len(lost))
        for replica in sorted(self._down - down_now):
            self.trace.record(self.step, "recover", replica)
        self._down = down_now

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def broadcast_new(self) -> None:
        """Put packets on the wire for labels not yet announced."""
        for label in self.system.generation_order:
            if label in self._announced:
                continue
            self._announced.add(label)
            for target in self.system.replicas:
                if target == label.origin:
                    continue
                self._send(target, label)

    def _send(self, target: str, label: Label) -> None:
        self.stats.packets_sent += 1
        index = self._index(label)
        if self.plan.crashed(self.step, target):
            # The receiver is down: the packet is lost (retransmission
            # will resurrect it after recovery).
            self.stats.crash_drops += 1
            self.trace.record(self.step, "crash_drop", target, index)
            return
        if not self.plan.connected(self.step, label.origin or "", target):
            self.stats.partition_drops += 1
            self.trace.record(self.step, "partition_drop", target, index)
            return
        if self.rng.random() < self.plan.drop_probability:
            self.stats.drops += 1
            self.trace.record(self.step, "drop", target, index)
            return  # lost; a later retransmission round resends it
        self.in_flight.append((target, label))
        self.trace.record(self.step, "send", target, index)
        if self.rng.random() < self.plan.duplicate_probability:
            self.stats.duplicates += 1
            self.in_flight.append((target, label))
            self.trace.record(self.step, "duplicate", target, index)

    def retransmit_missing(self) -> None:
        """Resend packets for labels still unapplied somewhere.

        Crashed targets are skipped — sending to a dead replica is lost
        by definition; the next non-progress round after its recovery
        resends.
        """
        in_flight_pairs = set(self.in_flight)
        for label in self.system.generation_order:
            if label not in self._announced:
                continue
            for target in self.system.replicas:
                if target == label.origin:
                    continue
                if self.plan.crashed(self.step, target):
                    continue
                if label in self.system.seen(target):
                    continue
                if (target, label) not in in_flight_pairs:
                    self.stats.retransmissions += 1
                    self.trace.record(
                        self.step, "retransmit", target, self._index(label)
                    )
                    self._send(target, label)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def deliver_one(self) -> str:
        """Process one random in-flight packet.

        Returns one of :data:`DELIVERED`, :data:`DUPLICATE`,
        :data:`BUFFERED`, :data:`DELAYED`, :data:`DROPPED`, or
        :data:`IDLE`.  Only :data:`DELIVERED` is *progress*: a buffered
        packet was merely requeued behind a missing causal predecessor,
        and treating that as progress once deferred retransmission of
        the dropped predecessor for up to 25 rounds (see
        ``run_to_quiescence``).
        """
        if not self.in_flight:
            return IDLE
        index = self.rng.randrange(len(self.in_flight))
        target, label = self.in_flight.pop(index)
        label_index = self._index(label)
        if self.plan.crashed(self.step, target):
            self.stats.crash_drops += 1
            self.trace.record(self.step, "crash_drop", target, label_index)
            return DROPPED
        if self.rng.random() < self.plan.delay_probability:
            self.in_flight.append((target, label))
            self.stats.delays += 1
            self.trace.record(self.step, "delay", target, label_index)
            return DELAYED
        if label in self.system.seen(target):
            self.trace.record(self.step, "dedup", target, label_index)
            return DUPLICATE  # deduplicated, dropped on the floor
        if label in self.system.deliverable(target):
            self.system.deliver(target, label)
            self.stats.delivered += 1
            self.trace.record(self.step, "deliver", target, label_index)
            return DELIVERED
        # Causal predecessor still missing: buffer (requeue).  Count
        # distinct buffered packets, not requeue events.
        if (target, label) not in self._buffered_pairs:
            self._buffered_pairs.add((target, label))
            self.stats.buffered += 1
        self.in_flight.append((target, label))
        self.trace.record(self.step, "buffer", target, label_index)
        return BUFFERED

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run_to_quiescence(self, max_rounds: int = 10000) -> None:
        """Deliver everything everywhere despite the adversary.

        Quiescence means ``outstanding_count() == 0`` — every generated
        label applied at every replica — not merely "nothing currently
        deliverable": a dropped predecessor leaves its successors
        causally blocked and *undeliverable*, which the old
        ``pending_count``-based check mistook for a finished run.
        """
        if not self.plan.recovers():
            raise SchedulingError(
                "plan contains a crash without a recovery point: "
                "quiescence is unreachable"
            )
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("network failed to quiesce")
            self.tick()
            self.broadcast_new()
            outcome = self.deliver_one()
            if outcome != DELIVERED or rounds % 25 == 0:
                self.retransmit_missing()
            if not self.in_flight and self.system.outstanding_count() == 0:
                return


# ----------------------------------------------------------------------
# State-based: lossy gossip (the Appendix D adversary)
# ----------------------------------------------------------------------


@dataclass
class GossipStats:
    """What the adversary did during a state-based run."""

    generated: int = 0
    merges: int = 0
    drops: int = 0
    duplicates: int = 0
    stale_redeliveries: int = 0
    partition_drops: int = 0
    crash_skips: int = 0


class LossyGossipDriver:
    """Adversarial gossip for one :class:`StateBasedSystem`.

    Each :meth:`gossip_once` picks a random ordered replica pair and
    either redelivers an arbitrary *old* message at the target (stale
    redelivery — allowed because messages are never consumed, Appendix
    D.2), or GENERATEs a fresh snapshot that the network may then lose,
    deliver once, or deliver twice.  Partitioned or crashed pairs
    exchange nothing.  Because fresh snapshots keep coming (anti-entropy)
    and ``merge`` is a join, loss and duplication only delay convergence.
    """

    def __init__(
        self,
        system: StateBasedSystem,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
        trace: Optional[AdversaryTrace] = None,
    ) -> None:
        self.system = system
        self.rng = random.Random(seed)
        self.plan = plan if plan is not None else RELIABLE_PLAN
        self.trace = trace if trace is not None else _NULL_TRACE
        self.step = 0
        self._down: Set[str] = set()
        self.stats = GossipStats()

    def tick(self) -> None:
        """Advance the adversary clock; record crash/recovery transitions.

        State-based replicas have no volatile receive queue — messages
        merge on arrival — so a crash is purely an offline window.
        """
        self.step += 1
        down_now = {
            r for r in self.system.replicas
            if self.plan.crashed(self.step, r)
        }
        for replica in sorted(down_now - self._down):
            self.trace.record(self.step, "crash", replica)
        for replica in sorted(self._down - down_now):
            self.trace.record(self.step, "recover", replica)
        self._down = down_now

    def _receive(self, target: str, message: Message) -> None:
        self.system.receive(target, message)
        self.stats.merges += 1

    def gossip_once(self) -> str:
        """One adversarial gossip action between a random replica pair.

        Returns what happened: ``"stale"``, ``"merged"``, ``"dropped"``,
        ``"partitioned"``, or ``"crashed"``.
        """
        replicas = self.system.replicas
        source = self.rng.choice(replicas)
        target = self.rng.choice([r for r in replicas if r != source])
        if self.plan.crashed(self.step, source) or self.plan.crashed(
            self.step, target
        ):
            self.stats.crash_skips += 1
            self.trace.record(self.step, "crash_skip", source, target)
            return "crashed"
        if not self.plan.connected(self.step, source, target):
            self.stats.partition_drops += 1
            self.trace.record(self.step, "partition_drop", source, target)
            return "partitioned"
        if self.system.messages and (
            self.rng.random() < self.plan.stale_probability
        ):
            # Redeliver an arbitrary old snapshot at the target: the
            # staleness/duplication/reordering the lattice must absorb.
            message = self.rng.choice(self.system.messages)
            self._receive(target, message)
            self.stats.stale_redeliveries += 1
            self.trace.record(self.step, "stale", target, message.msg_id)
            return "stale"
        message = self.system.send(source)
        self.stats.generated += 1
        self.trace.record(self.step, "generate", source, message.msg_id)
        if self.rng.random() < self.plan.drop_probability:
            self.stats.drops += 1
            self.trace.record(self.step, "drop", target, message.msg_id)
            return "dropped"
        self._receive(target, message)
        self.trace.record(self.step, "merge", target, message.msg_id)
        if self.rng.random() < self.plan.duplicate_probability:
            self._receive(target, message)
            self.stats.duplicates += 1
            self.trace.record(self.step, "duplicate", target, message.msg_id)
        return "merged"

    def run_to_quiescence(self, max_rounds: int = 10000) -> None:
        """Gossip until every label is visible at every replica.

        Anti-entropy under loss: fresh snapshots keep being generated,
        so with positive delivery probability the outstanding count
        reaches zero once every crash window has closed.
        """
        if not self.plan.recovers():
            raise SchedulingError(
                "plan contains a crash without a recovery point: "
                "quiescence is unreachable"
            )
        rounds = 0
        while self.system.outstanding_count() > 0:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("gossip failed to quiesce")
            self.tick()
            self.gossip_once()


__all__ = [
    "AdversaryTrace",
    "BUFFERED",
    "CrashSpec",
    "DELAYED",
    "DELIVERED",
    "DROPPED",
    "DUPLICATE",
    "FaultPlan",
    "GossipStats",
    "IDLE",
    "LossyGossipDriver",
    "NetworkStats",
    "PartitionWindow",
    "RELIABLE_PLAN",
    "TRACE_SCHEMA",
    "UnreliableCausalBroadcast",
]
