"""Compact fingerprint interning with collision checks and disk spill.

The exploration engine dedups configurations on canonical fingerprints —
large nested tuples (per-replica parts, label data, visibility) or
:class:`~repro.runtime.symmetry.CanonFP` orbit keys.  Holding millions of
them in the visited/expanded sets is what makes 4-replica scopes blow
past RAM before they blow past time.  A :class:`FingerprintStore` interns
each fingerprint as a fixed-width digest:

* **Stable encoding.**  :func:`stable_encode` maps a fingerprint to a
  canonical byte string that depends only on the *value* — never on hash
  seeds, object identity, or dict order — so digests computed in
  different worker processes compare and union exactly (the same
  contract :func:`~repro.runtime.symmetry.canon_key` gives the symmetry
  reducer).  Unordered containers are sorted by their elements'
  encodings, which totally orders even heterogeneous elements.  Numeric
  leaves are encoded by value (``True == 1 == 1.0`` share an encoding),
  mirroring the equality semantics the plain-``set`` dedup path uses.

* **Fixed-width digests.**  The encoding is hashed with ``blake2b``
  (keyless, deterministic across processes) to ``digest_size`` bytes.
  Sets of digests are what the engine stores and what the parallel
  merge unions — 16 bytes per configuration instead of a nested tuple.

* **Collision checking.**  Digest equality is trusted only after the
  store has compared *check digests*: a ledger maps each primary digest
  to an independent 32-byte blake2b digest of the same encoding (keyed
  with a distinct personalization string), in an LRU in-memory tier
  backed by the optional sqlite spill.  A mismatch raises
  :class:`FingerprintCollisionError` instead of silently merging two
  distinct configurations — a silent merge now requires a simultaneous
  collision in two independently-keyed hashes (≥ 2^128+2^256 work; the
  check turns "astronomically unlikely" into "detected").  The ledger
  entry is a fixed 32 bytes instead of the full variable-length
  encoding, so the collision ledger costs O(1) per configuration no
  matter how large the fingerprints grow.  Without a spill directory,
  entries evicted from the LRU become best-effort (``unchecked_hits``
  counts lookups that could not be re-verified).

* **Disk spill.**  With ``spill_dir`` set, :meth:`visited_set` and
  :meth:`expanded_map` return :class:`SpillSet`/:class:`SpillMap`
  drop-ins for the engine's visited-fingerprint set and expanded
  (fingerprint → sleep sets) table: an in-memory hot tier in front of a
  private sqlite file, so the working set stays bounded while the full
  record remains exact.  The visited hot tier is a structurally-shared
  persistent trie (:class:`~.pstate.PSet`) promoted to the spill in
  FIFO batches; the expanded hot tier stays an LRU dict because its
  values are mutable record lists.

The store is *optional* everywhere: the serial engine defaults to raw
fingerprints, and the differential equality suites run both ways, which
is what guards the encoding against losing or double-counting
configurations.
"""

import os
import pickle
import sqlite3
import struct
import tempfile
from collections import OrderedDict, deque
from dataclasses import dataclass, fields, is_dataclass
from hashlib import blake2b
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.freeze import FrozenDict
from ..core.timestamp import BOTTOM
from .pstate import PSet
from .symmetry import CanonFP

#: Default entry cap for each in-memory LRU tier (ledger, spill-set hot
#: tier, spill-map hot tier).
DEFAULT_MEMORY_LIMIT = 1 << 16

#: Evicted spill-tier entries are buffered and written to sqlite in
#: batches of this many rows.
_FLUSH_BATCH = 512

_U32 = struct.Struct(">I")

#: Personalization for the ledger's check digests: keyed differently from
#: the primary digest so the two hashes are independent functions of the
#: encoding.
_CHECK_PERSON = b"fp-ledger-check"


class FingerprintCollisionError(RuntimeError):
    """Two distinct fingerprint encodings hashed to the same digest."""


def _pack_len(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def stable_encode(value: Any, memo: Optional[Dict[int, Tuple[Any, bytes]]]
                  = None) -> bytes:
    """A canonical, process-stable, injective byte encoding of ``value``.

    Equal values (under Python equality, including cross-type numeric
    equality) produce equal encodings; unequal values produce different
    encodings.  ``memo`` is an optional identity cache ``id -> (obj,
    encoding)`` for container nodes; callers must bound and clear it
    themselves (the stored object reference pins the id against reuse).
    """
    t = type(value)
    if t is str:
        return b"s" + _pack_len(value.encode("utf-8"))
    if t is int or t is bool:
        return b"n" + _pack_len(str(int(value)).encode("ascii"))
    if t is float:
        # Integral floats share the int encoding (1.0 == 1 in the plain
        # set-dedup path, so they must share a digest too).
        if value.is_integer():
            return b"n" + _pack_len(str(int(value)).encode("ascii"))
        return b"x" + _pack_len(repr(value).encode("ascii"))
    if value is None:
        return b"z"
    if value is BOTTOM:
        return b"B"
    if t is bytes:
        return b"y" + _pack_len(value)
    if memo is not None:
        cached = memo.get(id(value))
        if cached is not None and cached[0] is value:
            return cached[1]
    if t is tuple:
        enc = b"t" + _U32.pack(len(value)) + b"".join(
            stable_encode(item, memo) for item in value
        )
    elif t is frozenset or t is set:
        enc = b"S" + _U32.pack(len(value)) + b"".join(
            sorted(stable_encode(item, memo) for item in value)
        )
    elif t is FrozenDict or t is dict:
        enc = b"D" + _U32.pack(len(value)) + b"".join(
            sorted(
                stable_encode(k, memo) + stable_encode(v, memo)
                for k, v in value.items()
            )
        )
    elif t is CanonFP:
        cached = getattr(value, "_enc", None)
        if cached is None:
            cached = b"F" + stable_encode(value.key, memo)
            value._enc = cached
        enc = cached
    elif is_dataclass(value):
        enc = (
            b"C"
            + _pack_len(t.__name__.encode("utf-8"))
            + _U32.pack(len(fields(value)))
            + b"".join(
                stable_encode(getattr(value, f.name), memo)
                for f in fields(value)
            )
        )
    else:
        # Opaque leaf: reprs in this codebase are deterministic value
        # renders (same contract canon_key relies on).
        enc = (
            b"o"
            + _pack_len(t.__name__.encode("utf-8"))
            + _pack_len(repr(value).encode("utf-8"))
        )
    if memo is not None:
        memo[id(value)] = (value, enc)
    return enc


@dataclass
class FPStoreStats:
    """Counters describing one :class:`FingerprintStore`'s activity."""

    #: intern() calls.
    lookups: int = 0
    #: intern() calls whose digest was already in the store.
    hits: int = 0
    #: Distinct digests interned.
    unique: int = 0
    #: Ledger entries evicted from the in-memory tier.
    evictions: int = 0
    #: Rows written to the sqlite spill (ledger + visited + expanded).
    spilled: int = 0
    #: Repeat lookups whose encoding could no longer be compared because
    #: the ledger entry was evicted with no spill tier configured.
    unchecked_hits: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "FPStoreStats") -> None:
        """Fold another store's counters in (cross-worker aggregation)."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.unique += other.unique
        self.evictions += other.evictions
        self.spilled += other.spilled
        self.unchecked_hits += other.unchecked_hits

    def as_dict(self) -> Dict[str, Any]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "unique": self.unique,
            "evictions": self.evictions,
            "spilled": self.spilled,
            "unchecked_hits": self.unchecked_hits,
            "hit_ratio": self.hit_ratio,
        }


class _DiskTier:
    """A private sqlite file holding the spilled tiers of one store.

    Scratch storage, not a durable artifact: journaling and fsync are
    off, and the scratch file is *unlinked immediately after connecting*
    — sqlite keeps working through its open file descriptor, and the
    kernel reclaims the space as soon as the descriptor closes, however
    the process ends.  A work-stealing worker killed mid-run (terminate,
    OOM, ctrl-C) therefore leaves nothing behind in ``--spill DIR``;
    before this, abnormal exits accumulated orphaned ``fp-store-*``
    files that only a manual sweep removed.  On platforms that refuse to
    unlink an open file the path is kept and removed on :meth:`close`.
    """

    def __init__(self, spill_dir: str) -> None:
        os.makedirs(spill_dir, exist_ok=True)
        fd, self.path = tempfile.mkstemp(
            prefix="fp-store-", suffix=".sqlite", dir=spill_dir
        )
        os.close(fd)
        self.conn = sqlite3.connect(self.path)
        self.conn.execute("PRAGMA journal_mode=OFF")
        self.conn.execute("PRAGMA synchronous=OFF")
        for table in ("ledger", "expanded"):
            self.conn.execute(
                f"CREATE TABLE {table} (d BLOB PRIMARY KEY, v BLOB)"
            )
        self.conn.execute("CREATE TABLE visited (d BLOB PRIMARY KEY)")
        self._unlinked = False
        try:
            os.unlink(self.path)
            self._unlinked = True
        except OSError:  # pragma: no cover - non-POSIX semantics only
            pass

    def put_many(self, table: str, rows: List[Tuple]) -> None:
        marks = "(?, ?)" if table != "visited" else "(?)"
        self.conn.executemany(
            f"INSERT OR REPLACE INTO {table} VALUES {marks}", rows
        )

    def get(self, table: str, digest: bytes) -> Optional[bytes]:
        row = self.conn.execute(
            f"SELECT v FROM {table} WHERE d = ?", (digest,)
        ).fetchone()
        return row[0] if row is not None else None

    def contains(self, table: str, digest: bytes) -> bool:
        row = self.conn.execute(
            f"SELECT 1 FROM {table} WHERE d = ?", (digest,)
        ).fetchone()
        return row is not None

    def iter_keys(self, table: str) -> Iterator[bytes]:
        for (digest,) in self.conn.execute(f"SELECT d FROM {table}"):
            yield digest

    def close(self) -> None:
        try:
            self.conn.close()
        finally:
            if not self._unlinked:  # pragma: no cover - non-POSIX only
                try:
                    os.unlink(self.path)
                except OSError:
                    pass


class SpillSet:
    """A set of digests with an in-memory hot tier over the disk tier.

    Drop-in for the engine's visited-fingerprint set: supports ``in``,
    ``add``, ``len`` and iteration (the parallel merge iterates to union
    per-worker sets).  Exact — eviction moves entries to sqlite, never
    drops them.

    The hot tier is a persistent hash trie (:class:`~.pstate.PSet`):
    inserts path-copy O(log n) nodes and share the rest, so the tier's
    history is a chain of structurally-shared roots rather than a
    mutated dict, and promotion to the spill tier is a batch of
    ``discard`` operations over the oldest digests (insertion-order
    FIFO — digest working sets have no useful recency signal once they
    outgrow memory, and FIFO needs no per-hit bookkeeping on the lookup
    fast path the way the previous LRU's ``move_to_end`` did).
    """

    def __init__(self, disk: _DiskTier, stats: FPStoreStats,
                 memory_limit: int = DEFAULT_MEMORY_LIMIT) -> None:
        self._disk = disk
        self._stats = stats
        self._limit = memory_limit
        self._hot = PSet()
        self._order: "deque[bytes]" = deque()
        self._pending: Dict[bytes, None] = {}
        self._len = 0

    def __contains__(self, digest: bytes) -> bool:
        if digest in self._hot:
            return True
        if digest in self._pending:
            return True
        return self._disk.contains("visited", digest)

    def add(self, digest: bytes) -> None:
        if digest in self:
            return
        self._hot = self._hot.add(digest)
        self._order.append(digest)
        self._len += 1
        if len(self._order) > self._limit:
            self._promote()

    def _promote(self) -> None:
        """Move the oldest batch of hot digests to the spill tier."""
        hot, order, pending = self._hot, self._order, self._pending
        for _ in range(min(_FLUSH_BATCH, len(order))):
            digest = order.popleft()
            hot = hot.discard(digest)
            pending[digest] = None
        self._stats.evictions += len(pending)
        self._hot = hot
        self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._stats.spilled += len(self._pending)
            self._disk.put_many(
                "visited", [(d,) for d in self._pending]
            )
            self._pending.clear()

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[bytes]:
        self._flush()
        seen_hot = set(self._hot)
        yield from seen_hot
        for digest in self._disk.iter_keys("visited"):
            if digest not in seen_hot:
                yield digest


class SpillMap:
    """The expanded-table analogue of :class:`SpillSet`.

    Supports exactly the engine's access pattern: ``setdefault(digest,
    [])`` returning a mutable list that the caller finishes appending to
    *before* the next ``setdefault`` call (eviction pickles the list's
    state at eviction time, so a reference appended to after its entry
    was evicted would be lost — the DFS never does that).
    """

    def __init__(self, disk: _DiskTier, stats: FPStoreStats,
                 memory_limit: int = DEFAULT_MEMORY_LIMIT) -> None:
        self._disk = disk
        self._stats = stats
        self._limit = memory_limit
        self._hot: "OrderedDict[bytes, List]" = OrderedDict()
        self._pending: Dict[bytes, List] = {}

    def setdefault(self, digest: bytes, default: List) -> List:
        hot = self._hot
        value = hot.get(digest)
        if value is not None:
            hot.move_to_end(digest)
            return value
        value = self._pending.pop(digest, None)
        if value is None:
            raw = self._disk.get("expanded", digest)
            value = pickle.loads(raw) if raw is not None else default
        hot[digest] = value
        if len(hot) > self._limit:
            evicted, entry = hot.popitem(last=False)
            self._pending[evicted] = entry
            self._stats.evictions += 1
            if len(self._pending) >= _FLUSH_BATCH:
                self._stats.spilled += len(self._pending)
                self._disk.put_many(
                    "expanded",
                    [
                        (d, pickle.dumps(v, pickle.HIGHEST_PROTOCOL))
                        for d, v in self._pending.items()
                    ],
                )
                self._pending.clear()
        return value


class FingerprintStore:
    """Interns canonical fingerprints as collision-checked digests.

    One store per process: digests are process-stable by construction,
    so per-worker stores agree without sharing state, and the existing
    merge path unions their digest sets exactly as it unioned raw
    fingerprint sets.
    """

    def __init__(
        self,
        spill_dir: Optional[str] = None,
        memory_limit: int = DEFAULT_MEMORY_LIMIT,
        digest_size: int = 16,
    ) -> None:
        self.stats = FPStoreStats()
        self.digest_size = digest_size
        self._memory_limit = memory_limit
        self._ledger: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._disk: Optional[_DiskTier] = None
        self._spill_dir = spill_dir
        if spill_dir is not None:
            self._disk = _DiskTier(spill_dir)
        self._ledger_pending: Dict[bytes, bytes] = {}
        self._enc_memo: Dict[int, Tuple[Any, bytes]] = {}

    # -- interning ------------------------------------------------------

    def intern(self, fingerprint: Any) -> bytes:
        """The digest of ``fingerprint``; raises on digest collision."""
        stats = self.stats
        stats.lookups += 1
        if len(self._enc_memo) > self._memory_limit:
            self._enc_memo.clear()
        encoding = stable_encode(fingerprint, self._enc_memo)
        digest = blake2b(encoding, digest_size=self.digest_size).digest()
        # The ledger records a fixed-width *check digest* (independent
        # 32-byte blake2b, distinct personalization) rather than the full
        # encoding: O(1) bytes per configuration, and a silent merge now
        # needs both hashes to collide at once.
        check = blake2b(encoding, digest_size=32,
                        person=_CHECK_PERSON).digest()
        known = self._ledger.get(digest)
        if known is not None:
            self._ledger.move_to_end(digest)
        else:
            known = self._ledger_pending.get(digest)
        if known is None and self._disk is not None:
            known = self._disk.get("ledger", digest)
        if known is not None:
            if known != check:
                raise FingerprintCollisionError(
                    f"digest collision at {digest.hex()}: two distinct "
                    f"fingerprint encodings share a {self.digest_size}-byte "
                    f"digest — widen digest_size"
                )
            stats.hits += 1
            return digest
        if self._disk is None and stats.evictions > 0:
            # The digest may have been seen and evicted; without a disk
            # tier the encoding comparison is impossible.  Count it so
            # the best-effort window is visible in the stats.
            stats.unchecked_hits += 1
        stats.unique += 1
        self._ledger[digest] = check
        if len(self._ledger) > self._memory_limit:
            evicted, enc = self._ledger.popitem(last=False)
            stats.evictions += 1
            if self._disk is not None:
                self._ledger_pending[evicted] = enc
                if len(self._ledger_pending) >= _FLUSH_BATCH:
                    self._flush_ledger()
        return digest

    def _flush_ledger(self) -> None:
        if self._ledger_pending and self._disk is not None:
            self.stats.spilled += len(self._ledger_pending)
            self._disk.put_many(
                "ledger", list(self._ledger_pending.items())
            )
            self._ledger_pending.clear()

    # -- engine-facing tiers --------------------------------------------

    def visited_set(self):
        """A visited-fingerprint set: spill-backed when configured."""
        if self._disk is not None:
            return SpillSet(self._disk, self.stats, self._memory_limit)
        return set()

    def expanded_map(self):
        """An expanded table (digest → sleep sets): spill-backed when
        configured."""
        if self._disk is not None:
            return SpillMap(self._disk, self.stats, self._memory_limit)
        return {}

    def close(self) -> None:
        if self._disk is not None:
            self._disk.close()
            self._disk = None

    def __enter__(self) -> "FingerprintStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
