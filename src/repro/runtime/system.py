"""Operational semantics of op-based CRDT objects (Fig. 7) and of object
compositions ⊗ / ⊗ts (Sec. 5.1, Fig. 11).

A :class:`OpBasedSystem` is a global configuration ``(G, vis, DS)``:

* per replica, a local configuration ``(L, σ)`` — the set of labels whose
  effectors have been applied there, and the replica state;
* the visibility relation ``vis`` (transitively closed by construction:
  a new operation sees *everything* in the origin's ``L``);
* ``DS``, the map from labels to their effectors.

Every operation — queries included — produces an effector (the identity for
queries) that is broadcast and applied exactly once per replica, under
**causal delivery**: an effector is deliverable only when every visible
operation *of the same object* has already been applied (the paper's
``minvis`` side condition; for compositions, causal delivery holds per
object only — Sec. 5.1).

Timestamps come from :class:`~repro.core.timestamp.TimestampGenerator`
instances.  A composition built with ``shared_timestamps=True`` is the
shared-timestamp-generator composition ⊗ts of Fig. 11: a fresh timestamp
exceeds the timestamps of *all* operations visible at the replica,
regardless of object.  With independent generators (⊗), objects' timestamps
may interleave inconsistently — which is exactly what enables the Fig. 10
counterexample.
"""

from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import PreconditionViolation, SchedulingError
from ..core.history import History
from ..core.label import Label
from ..core.timestamp import BOTTOM, TimestampGenerator
from ..crdts.base import Effector, OpBasedCRDT
from .pstate import EMPTY_SET

DEFAULT_OBJECT = "o"


class OpBasedSystem:
    """A replicated system running one or more op-based CRDT objects.

    ``persistent=True`` switches the label-indexed containers (seen-sets,
    visibility, causal predecessors, effector table) to the persistent hash
    tries of :mod:`repro.runtime.pstate` and the timestamp generators to
    copy-on-write clocks.  Mutation becomes O(log n) path-copying, and
    :meth:`snapshot` becomes O(#replicas) — just root pointers plus length
    marks for the append-only logs — instead of O(|configuration|).  The
    exploration engine's source-DPOR mode turns this on; the semantics are
    identical either way (pinned by the differential suites).

    Restore discipline under ``persistent=True``: the append-only logs
    (``generation_order``, ``trace``) are rewound by *truncation to the
    recorded length*.  That is sound for any snapshot/restore pattern that
    only restores tokens taken on the current execution path (the
    explorers' DFS discipline): entries below the mark are never mutated,
    so a token may be restored any number of times.
    """

    def __init__(
        self,
        objects: "Mapping[str, OpBasedCRDT] | OpBasedCRDT",
        replicas: Sequence[str] = ("r1", "r2", "r3"),
        shared_timestamps: bool = True,
        persistent: bool = False,
    ) -> None:
        if isinstance(objects, OpBasedCRDT):
            objects = {DEFAULT_OBJECT: objects}
        if not objects:
            raise ValueError("need at least one object")
        self.objects: Dict[str, OpBasedCRDT] = dict(objects)
        self.replicas: List[str] = list(replicas)
        self.shared_timestamps = shared_timestamps
        self.persistent = persistent
        if shared_timestamps:
            shared = TimestampGenerator(persistent=persistent)
            self._generators = {name: shared for name in self.objects}
        else:
            self._generators = {
                name: TimestampGenerator(persistent=persistent)
                for name in self.objects
            }
        self._states: Dict[Tuple[str, str], Any] = {
            (r, name): crdt.initial_state()
            for r in self.replicas
            for name, crdt in self.objects.items()
        }
        if persistent:
            self._seen = {r: EMPTY_SET for r in self.replicas}
            # Visibility is only ever *appended to* and iterated (the
            # checker's history view) — never membership-tested — so the
            # persistent branch keeps it as an append-only log whose
            # snapshot is a length mark, not a hash trie.
            self._vis: Any = []
        else:
            self._seen = {r: set() for r in self.replicas}
            self._vis = set()
        # Same-object visible predecessors (for causal-delivery checks)
        # and effector payloads, keyed by label.  Under ``persistent=True``
        # these are *grow-only*: label uids are freshly drawn on every
        # invoke, so entries for labels dropped by a restore are keyed by
        # dead uids that no later lookup can mention — snapshots carry
        # nothing and restores delete nothing.
        self._causal_preds: Dict[Label, Any] = {}
        self._effectors: Dict[Label, Any] = {}
        # Origin clock value at generation time, keyed by label: the
        # message clock of the Lamport discipline.  Delivery advances the
        # receiver's clock past it, which is what makes a fresh ⊗ts
        # timestamp dominate *transitively* visible operations even when
        # the visibility path runs through timestamp-less operations of
        # another object (Fig. 11); for single objects and ⊗ the value is
        # already implied by per-object causal delivery.  Grow-only in
        # both snapshot modes — restores drop labels with fresh uids, so
        # stale entries are keyed by dead uids no lookup can mention.
        self._origin_clock: Dict[Label, int] = {}
        self.generation_order: List[Label] = []
        #: Action trace: ("gen"|"eff", replica, label).
        self.trace: List[Tuple[str, str, Label]] = []

    # ------------------------------------------------------------------
    # OPERATION rule
    # ------------------------------------------------------------------

    def invoke(
        self,
        replica: str,
        method: str,
        args: Tuple = (),
        obj: Optional[str] = None,
    ) -> Label:
        """Execute a generator at ``replica`` (the OPERATION rule)."""
        obj = self._resolve_object(obj)
        crdt = self.objects[obj]
        state = self._states[(replica, obj)]
        if not crdt.precondition(state, method, tuple(args)):
            raise PreconditionViolation(
                f"{obj}.{method}{tuple(args)!r} precondition fails at "
                f"{replica} (state {state!r})"
            )
        if method in crdt.timestamped_methods:
            ts = self._generators[obj].fresh(replica)
        else:
            ts = BOTTOM
        result = crdt.generator(state, method, tuple(args), ts)
        label = Label(
            method, tuple(args), ret=result.ret, ts=ts, obj=obj,
            origin=replica,
        )
        seen_here = self._seen[replica]
        if self.persistent:
            # One pass over the (trie-backed) seen set builds both the
            # visibility edges and the same-object causal predecessors.
            vis = self._vis
            causal_list = []
            for prior in seen_here:
                vis.append((prior, label))
                if prior.obj == obj:
                    causal_list.append(prior)
            causal = frozenset(causal_list)
            self._seen[replica] = seen_here.add(label)
        else:
            causal = frozenset(
                prior for prior in seen_here if prior.obj == obj
            )
            for prior in seen_here:
                self._vis.add((prior, label))
            seen_here.add(label)
        self._causal_preds[label] = causal
        self._effectors[label] = result.effector
        self._origin_clock[label] = self._generators[obj].clock(replica)
        if result.effector is not None:
            self._states[(replica, obj)] = crdt.apply_effector(
                state, result.effector
            )
        self.generation_order.append(label)
        self.trace.append(("gen", replica, label))
        return label

    def _resolve_object(self, obj: Optional[str]) -> str:
        if obj is not None:
            if obj not in self.objects:
                raise SchedulingError(f"unknown object {obj!r}")
            return obj
        if len(self.objects) == 1:
            return next(iter(self.objects))
        raise SchedulingError(
            "object name required: the system hosts several objects"
        )

    # ------------------------------------------------------------------
    # EFFECTOR rule
    # ------------------------------------------------------------------

    def deliverable(self, replica: str) -> List[Label]:
        """Labels whose effectors may be applied at ``replica`` now.

        Causal delivery: every same-object visible predecessor must already
        be applied there (the ``minvis`` condition of Fig. 7, weakened to
        per-object for compositions as in Sec. 5.1).
        """
        seen = self._seen[replica]
        candidates = []
        for label in self.generation_order:
            if label in seen:
                continue
            if all(src in seen for src in self._causal_preds[label]):
                candidates.append(label)
        return candidates

    def deliver(
        self, replica: str, label: Label, prechecked: bool = False
    ) -> None:
        """Apply ``label``'s effector at ``replica`` (the EFFECTOR rule).

        ``prechecked=True`` skips the deliverability guards (duplicate
        application, unknown label, causal delivery): the exploration
        engine enumerates deliverable labels from its lid mirrors
        immediately before applying one, so the guards would re-derive
        facts the caller just established — at a persistent-trie lookup
        apiece on the DFS hot path.  Semantics are unchanged; the
        naive-engine differential suite pins the mirrors against
        mis-scheduling.
        """
        if not prechecked:
            if label in self._seen[replica]:
                raise SchedulingError(
                    f"{label!r} already applied at {replica}"
                )
            if label not in self._effectors:
                raise SchedulingError(f"{label!r} was never generated here")
            for src in self._causal_preds[label]:
                if src not in self._seen[replica]:
                    raise SchedulingError(
                        f"causal delivery violated: {src!r} not yet "
                        f"applied at {replica} but visible to {label!r}"
                    )
        effector = self._effectors[label]
        if effector is not None:
            obj = label.obj
            crdt = self.objects[obj]
            self._states[(replica, obj)] = crdt.apply_effector(
                self._states[(replica, obj)], effector
            )
        if self.persistent:
            self._seen[replica] = self._seen[replica].add(label)
        else:
            self._seen[replica].add(label)
        # With a shared generator (⊗ts) this advances the one global clock;
        # with independent generators (⊗) only the label's own object's.
        # The origin-clock advance carries the sender's cross-object
        # knowledge for ⊗ts (a no-op for single objects and ⊗, where
        # causal delivery already implies it).
        generator = self._generators[label.obj]
        generator.observe(replica, label.ts)
        generator.advance(replica, self._origin_clock[label])
        self.trace.append(("eff", replica, label))

    def deliver_all(self) -> None:
        """Deliver every pending effector everywhere (quiescence)."""
        progress = True
        while progress:
            progress = False
            for replica in self.replicas:
                for label in self.deliverable(replica):
                    self.deliver(replica, label)
                    progress = True

    def sync(self, replica: str) -> None:
        """Deliver everything currently deliverable at one replica."""
        delivered = True
        while delivered:
            delivered = False
            for label in self.deliverable(replica):
                self.deliver(replica, label)
                delivered = True

    # ------------------------------------------------------------------
    # Snapshot / restore (copy-on-write branching for the explorers)
    # ------------------------------------------------------------------

    @property
    def snapshot_safe(self) -> bool:
        """True when every hosted CRDT keeps immutable (sharable) states."""
        return all(crdt.snapshot_safe for crdt in self.objects.values())

    def snapshot(self) -> Tuple:
        """An O(|configuration|) snapshot token for :meth:`restore`.

        Containers are copied *shallowly*: labels, effectors, and CRDT
        states are immutable values, so sharing them between the live
        system and the token is safe (checked via :attr:`snapshot_safe` by
        callers that host custom CRDTs).  This replaces whole-system
        ``copy.deepcopy`` in the exploration engine — the deep structure of
        replica states is never traversed.

        Under ``persistent=True`` the token is O(#replicas): the hash-trie
        seen sets are captured by reference (they are immutable), the
        append-only logs by length mark, the generator clocks by
        reference to their copy-on-write tables — and the label tables
        not at all (grow-only; see ``__init__``).
        """
        distinct = {id(g): g for g in self._generators.values()}
        if self.persistent:
            return (
                dict(self._states),
                dict(self._seen),
                len(self._vis),
                len(self.generation_order),
                len(self.trace),
                {key: g.snapshot() for key, g in distinct.items()},
            )
        return (
            dict(self._states),
            {r: set(s) for r, s in self._seen.items()},
            set(self._vis),
            dict(self._causal_preds),
            dict(self._effectors),
            list(self.generation_order),
            list(self.trace),
            {key: g.snapshot() for key, g in distinct.items()},
        )

    def restore(self, token: Tuple) -> None:
        """Rewind the system to a :meth:`snapshot` token.

        The token stays valid: it may be restored any number of times
        (under ``persistent=True``, any number of times along the DFS
        discipline described in the class docstring).
        """
        if self.persistent:
            (states, seen, vis, order, trace, clocks) = token
            self._states = dict(states)
            self._seen = dict(seen)
            del self._vis[vis:]
            # _causal_preds/_effectors are grow-only (see __init__): the
            # labels the truncations drop are keyed by dead uids.
            del self.generation_order[order:]
            del self.trace[trace:]
        else:
            (states, seen, vis, preds, effectors, order, trace,
             clocks) = token
            self._states = dict(states)
            self._seen = {r: set(s) for r, s in seen.items()}
            self._vis = set(vis)
            self._causal_preds = dict(preds)
            self._effectors = dict(effectors)
            self.generation_order = list(order)
            self.trace = list(trace)
        for key, generator in {
            id(g): g for g in self._generators.values()
        }.items():
            generator.restore(clocks[key])

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def state(self, replica: str, obj: Optional[str] = None) -> Any:
        return self._states[(replica, self._resolve_object(obj))]

    def effector_of(self, label: Label) -> Optional[Effector]:
        """The effector produced by ``label`` (None for queries)."""
        return self._effectors[label]

    def seen(self, replica: str) -> FrozenSet[Label]:
        return frozenset(self._seen[replica])

    def history(self) -> History:
        labels = list(self.generation_order)
        return History(labels, self._vis, check=False, transitive=False)

    def replica_views(
        self, obj: Optional[str] = None
    ) -> Dict[str, Tuple[FrozenSet[Label], Any]]:
        """Per-replica (visible same-object updates, state) — for the
        convergence oracle."""
        obj = self._resolve_object(obj)
        views = {}
        for replica in self.replicas:
            visible = frozenset(
                l for l in self._seen[replica]
                if l.obj == obj and self._effectors.get(l) is not None
            )
            views[replica] = (visible, self._states[(replica, obj)])
        return views

    def pending_count(self) -> int:
        """Number of (label, replica) deliveries applicable *right now*.

        Counts only currently *deliverable* pairs — labels whose causal
        predecessors have all been applied at the replica.  A label
        blocked behind a missing predecessor is invisible here; use
        :meth:`outstanding_count` for the true remaining-work measure
        (quiescence is ``outstanding_count() == 0``).
        """
        return sum(
            len(self.deliverable(replica)) for replica in self.replicas
        )

    def outstanding_count(self) -> int:
        """Number of (label, replica) deliveries still outstanding.

        Every generated label not yet applied at a replica counts,
        whether or not it is currently deliverable there — causally
        blocked labels included.  Zero iff the system is quiescent.
        """
        return sum(
            1
            for replica in self.replicas
            for label in self.generation_order
            if label not in self._seen[replica]
        )
