"""Persistent hash tries: O(delta) branching for the exploration engine.

The copy-on-write snapshots of :class:`~repro.runtime.system.OpBasedSystem`
and :class:`~repro.runtime.state_system.StateBasedSystem` shallow-copy every
container per branch point — O(|configuration|) work that dominates the DFS
hot path once visibility relations and seen-sets grow.  This module provides
*path-copying* persistent maps and sets (hash array mapped tries, 32-way):

* ``assoc``/``add`` return a **new** trie sharing every untouched subtree
  with the old one — an update allocates O(log n) nodes and shares the rest;
* a snapshot is the root pointer (O(1)); restore is a pointer swap (O(1));
* tokens never go stale: the old root is immutable, so it can be restored
  any number of times, from any depth.

The *system*-facing containers (seen-sets, visibility, effector tables)
only ever grow along an execution — "removal" there is exactly a restore,
i.e. a root swap to an older trie.  The *engine*-facing tiers do shrink:
spill-tier promotion evicts cold digests, and sleep/wakeup bookkeeping
wakes (removes) entries — so ``dissoc``/``discard`` are supported with
canonical collapsing (a chain left holding a single leaf lifts the leaf,
keeping tries built by different op orders structurally identical).  For
bulk construction, :meth:`PMap.transient`/:meth:`PSet.transient` return a
single-owner builder that mutates freshly-copied nodes in place and
freezes back to an immutable trie in O(nodes touched) — batch-building n
entries allocates each trie node at most once instead of once per entry.

Structural-sharing accounting: every mutation records how many trie nodes
it copied (allocated) and how many child pointers it *shared* (reused in a
copied node) in the module-level :data:`STATS`.  The engine samples the
counters around a run and reports the delta as
``ExploreStats.pstate_copied`` / ``pstate_shared`` (surfaced by
``repro stats`` in the scheduler digest) — the observable proof that
branching is O(delta), not O(configuration).
"""

from typing import Any, Iterator, Mapping, Optional, Tuple

_BITS = 5
_MASK = (1 << _BITS) - 1
#: Python hashes are normalized into this unsigned width before chunking.
_HASH_MASK = (1 << 64) - 1

try:  # int.bit_count is 3.10+; the fallback keeps 3.8/3.9 importable
    # The unbound C descriptor itself — calling it adds no Python frame,
    # and popcounts sit under every trie lookup on the DFS hot path.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - older interpreters only

    def _popcount(x: int) -> int:
        return bin(x).count("1")


class PStats:
    """Structural-sharing counters (see module docstring)."""

    __slots__ = ("nodes_copied", "nodes_shared")

    def __init__(self) -> None:
        self.nodes_copied = 0
        self.nodes_shared = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.nodes_copied, self.nodes_shared)


#: Process-global counters: exploration is single-threaded per process, and
#: workers ship their deltas home through ``ExploreStats``.
STATS = PStats()


class _Leaf:
    __slots__ = ("hash", "key", "value")


class _Bucket:
    """Entries whose full 64-bit hashes collide."""

    __slots__ = ("hash", "items")


class _Node:
    """A bitmap-indexed interior node: children are nodes, leaves, buckets."""

    __slots__ = ("bitmap", "array")


def _leaf(h: int, key: Any, value: Any) -> _Leaf:
    node = _Leaf()
    node.hash = h
    node.key = key
    node.value = value
    return node


def _merge(shift: int, a: Any, b: Any) -> Any:
    """Join two leaves/buckets with distinct hashes under fresh nodes."""
    ia = (a.hash >> shift) & _MASK
    ib = (b.hash >> shift) & _MASK
    STATS.nodes_copied += 1
    node = _Node()
    if ia == ib:
        node.bitmap = 1 << ia
        node.array = (_merge(shift + _BITS, a, b),)
    else:
        node.bitmap = (1 << ia) | (1 << ib)
        node.array = (a, b) if ia < ib else (b, a)
    return node


def _bucket(h: int, items: Tuple[Tuple[Any, Any], ...]) -> _Bucket:
    node = _Bucket()
    node.hash = h
    node.items = items
    return node


def _assoc(node: Any, shift: int, h: int, key: Any,
           value: Any) -> Tuple[Any, bool]:
    """Insert/replace ``key`` below ``node``; returns ``(new node, added)``.

    Returns ``node`` itself (identity) when the binding already holds, so
    callers can skip allocating a new trie handle entirely.
    """
    stats = STATS
    if type(node) is _Node:
        bit = 1 << ((h >> shift) & _MASK)
        index = _popcount(node.bitmap & (bit - 1))
        array = node.array
        if not (node.bitmap & bit):
            stats.nodes_copied += 1
            stats.nodes_shared += len(array)
            new = _Node()
            new.bitmap = node.bitmap | bit
            new.array = array[:index] + (_leaf(h, key, value),) + array[index:]
            return new, True
        child = array[index]
        replacement, added = _assoc(child, shift + _BITS, h, key, value)
        if replacement is child:
            return node, added
        stats.nodes_copied += 1
        stats.nodes_shared += len(array) - 1
        new = _Node()
        new.bitmap = node.bitmap
        new.array = array[:index] + (replacement,) + array[index + 1:]
        return new, added
    if type(node) is _Leaf:
        if node.hash == h and node.key == key:
            if node.value is value or node.value == value:
                return node, False
            stats.nodes_copied += 1
            return _leaf(h, key, value), False
        if node.hash == h:
            stats.nodes_copied += 1
            return _bucket(h, ((node.key, node.value), (key, value))), True
        return _merge(shift, node, _leaf(h, key, value)), True
    # _Bucket
    if node.hash == h:
        for index, (k, v) in enumerate(node.items):
            if k == key:
                if v is value or v == value:
                    return node, False
                stats.nodes_copied += 1
                items = (node.items[:index] + ((key, value),)
                         + node.items[index + 1:])
                return _bucket(h, items), False
        stats.nodes_copied += 1
        return _bucket(h, node.items + ((key, value),)), True
    return _merge(shift, node, _leaf(h, key, value)), True


_MISSING = object()


def _dissoc(node: Any, shift: int, h: int, key: Any) -> Tuple[Any, bool]:
    """Remove ``key`` below ``node``; returns ``(new node, removed)``.

    Returns ``node`` itself (identity) when the key is absent, ``None``
    when the removal empties the subtree.  A node left holding a single
    leaf or bucket collapses into that child — leaves carry their full
    hash, so they are position-free — which keeps the trie canonical:
    equal contents produce identical structure regardless of the
    insert/remove order that built them.
    """
    stats = STATS
    kind = type(node)
    if kind is _Node:
        bit = 1 << ((h >> shift) & _MASK)
        if not (node.bitmap & bit):
            return node, False
        index = _popcount(node.bitmap & (bit - 1))
        array = node.array
        child = array[index]
        replacement, removed = _dissoc(child, shift + _BITS, h, key)
        if replacement is child:
            return node, removed
        if replacement is None:
            bitmap = node.bitmap & ~bit
            array = array[:index] + array[index + 1:]
        else:
            bitmap = node.bitmap
            array = array[:index] + (replacement,) + array[index + 1:]
        if not array:
            return None, removed
        if len(array) == 1 and type(array[0]) is not _Node:
            stats.nodes_shared += 1
            return array[0], removed
        stats.nodes_copied += 1
        stats.nodes_shared += len(array) - (0 if replacement is None else 1)
        new = _Node()
        new.bitmap = bitmap
        new.array = array
        return new, removed
    if kind is _Leaf:
        if node.hash == h and node.key == key:
            return None, True
        return node, False
    # _Bucket
    if node.hash != h:
        return node, False
    for index, (k, v) in enumerate(node.items):
        if k == key:
            stats.nodes_copied += 1
            items = node.items[:index] + node.items[index + 1:]
            if len(items) == 1:
                return _leaf(h, items[0][0], items[0][1]), True
            return _bucket(h, items), True
    return node, False


class _TNode:
    """A transient interior node: same shape as :class:`_Node` but with a
    mutable ``array`` list, owned exclusively by one in-flight transient.
    Never escapes: :func:`_freeze` converts every reachable ``_TNode``
    back to an immutable :class:`_Node` before a root is published."""

    __slots__ = ("bitmap", "array")


def _thaw(node: Any) -> _TNode:
    """Copy an immutable node into a mutable one the transient owns."""
    STATS.nodes_copied += 1
    STATS.nodes_shared += len(node.array)
    new = _TNode()
    new.bitmap = node.bitmap
    new.array = list(node.array)
    return new


def _tassoc(node: Any, shift: int, h: int, key: Any,
            value: Any) -> Tuple[Any, bool]:
    """Transient insert: mutate owned nodes in place, thaw shared ones.

    A shared (immutable) interior node is copied exactly once per
    transient — every later insert through it mutates the copy — so a
    batch of n inserts allocates each touched node at most once instead
    of once per insert as the path-copying :func:`_assoc` does.
    """
    kind = type(node)
    if kind is _Node or kind is _TNode:
        if kind is _Node:
            node = _thaw(node)
        bit = 1 << ((h >> shift) & _MASK)
        index = _popcount(node.bitmap & (bit - 1))
        if not (node.bitmap & bit):
            node.bitmap |= bit
            node.array.insert(index, _leaf(h, key, value))
            return node, True
        child = node.array[index]
        replacement, added = _tassoc(child, shift + _BITS, h, key, value)
        if replacement is not child:
            node.array[index] = replacement
        return node, added
    # Leaves and buckets are small immutable terminals; the path-copying
    # logic already allocates the minimum for them.  (_merge may create
    # fresh _Node spine — fresh nodes are unshared, so mutating-through
    # on a later insert is unnecessary for correctness, merely forgone.)
    return _assoc(node, shift, h, key, value)


def _freeze(node: Any) -> Any:
    if type(node) is _TNode:
        frozen = _Node()
        frozen.bitmap = node.bitmap
        frozen.array = tuple(_freeze(child) for child in node.array)
        return frozen
    return node


class TMap:
    """A single-owner transient builder for :class:`PMap`.

    ``assoc`` mutates in place and returns ``self``; :meth:`persistent`
    freezes the trie and invalidates the transient.  Structural sharing
    with the source map is preserved for untouched subtrees.
    """

    __slots__ = ("_root", "_size", "_live")

    def __init__(self, root: Any, size: int) -> None:
        self._root = root
        self._size = size
        self._live = True

    def assoc(self, key: Any, value: Any) -> "TMap":
        if not self._live:
            raise ValueError("transient used after persistent()")
        h = hash(key) & _HASH_MASK
        if self._root is None:
            STATS.nodes_copied += 1
            self._root = _leaf(h, key, value)
            self._size = 1
            return self
        self._root, added = _tassoc(self._root, 0, h, key, value)
        if added:
            self._size += 1
        return self

    def __len__(self) -> int:
        return self._size

    def persistent(self) -> "PMap":
        self._live = False
        return PMap(_freeze(self._root), self._size)


class TSet:
    """The :class:`PSet` analogue of :class:`TMap`."""

    __slots__ = ("_tmap",)

    def __init__(self, tmap: TMap) -> None:
        self._tmap = tmap

    def add(self, item: Any) -> "TSet":
        self._tmap.assoc(item, True)
        return self

    def __len__(self) -> int:
        return len(self._tmap)

    def persistent(self) -> "PSet":
        return PSet(self._tmap.persistent())


def _lookup(node: Any, h: int, key: Any) -> Any:
    shift = 0
    while type(node) is _Node:
        bit = 1 << ((h >> shift) & _MASK)
        if not (node.bitmap & bit):
            return _MISSING
        node = node.array[_popcount(node.bitmap & (bit - 1))]
        shift += _BITS
    if type(node) is _Leaf:
        if node.hash == h and node.key == key:
            return node.value
        return _MISSING
    if node.hash == h:
        for k, v in node.items:
            if k == key:
                return v
    return _MISSING


def _iter_entries(node: Any) -> Iterator[Tuple[Any, Any]]:
    # Iterative with an explicit stack: entry iteration sits on the
    # systems' hot paths (seen-set scans per invoke), where nested
    # generator delegation per trie level costs more than the visit.
    stack = [node]
    while stack:
        node = stack.pop()
        kind = type(node)
        if kind is _Node:
            stack.extend(reversed(node.array))
        elif kind is _Leaf:
            yield (node.key, node.value)
        else:
            yield from node.items


class PMap:
    """An immutable hash-trie map; ``assoc`` path-copies, lookups are O(log n).

    Iteration order is hash-trie order: deterministic for a fixed key set
    within one process, but *not* sorted and not insertion-ordered — callers
    that fingerprint contents must sort or use order-insensitive containers
    (the systems already do).
    """

    __slots__ = ("_root", "_size")

    def __init__(self, root: Any = None, size: int = 0) -> None:
        self._root = root
        self._size = size

    def assoc(self, key: Any, value: Any) -> "PMap":
        h = hash(key) & _HASH_MASK
        if self._root is None:
            STATS.nodes_copied += 1
            return PMap(_leaf(h, key, value), 1)
        root, added = _assoc(self._root, 0, h, key, value)
        if root is self._root:
            return self
        return PMap(root, self._size + (1 if added else 0))

    def dissoc(self, key: Any) -> "PMap":
        if self._root is None:
            return self
        root, removed = _dissoc(self._root, 0, hash(key) & _HASH_MASK, key)
        if not removed:
            return self
        return PMap(root, self._size - 1)

    def transient(self) -> "TMap":
        """A single-owner mutable builder seeded with this map's contents."""
        return TMap(self._root, self._size)

    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        value = _lookup(self._root, hash(key) & _HASH_MASK, key)
        return default if value is _MISSING else value

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        if self._root is None:
            return False
        return _lookup(self._root, hash(key) & _HASH_MASK, key) is not _MISSING

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        if self._root is not None:
            for key, _ in _iter_entries(self._root):
                yield key

    def items(self) -> Iterator[Tuple[Any, Any]]:
        if self._root is not None:
            yield from _iter_entries(self._root)

    def values(self) -> Iterator[Any]:
        if self._root is not None:
            for _, value in _iter_entries(self._root):
                yield value

    def keys(self) -> Iterator[Any]:
        return iter(self)

    @staticmethod
    def of(mapping: Mapping[Any, Any]) -> "PMap":
        builder = PMap().transient()
        for key, value in mapping.items():
            builder.assoc(key, value)
        return builder.persistent()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"pmap({{{inner}}})"


class PSet:
    """An immutable hash-trie set over :class:`PMap`."""

    __slots__ = ("_map",)

    def __init__(self, backing: Optional[PMap] = None) -> None:
        self._map = backing if backing is not None else PMap()

    def add(self, item: Any) -> "PSet":
        backing = self._map.assoc(item, True)
        if backing is self._map:
            return self
        return PSet(backing)

    def update(self, items) -> "PSet":
        backing = self._map
        for item in items:
            backing = backing.assoc(item, True)
        if backing is self._map:
            return self
        return PSet(backing)

    def discard(self, item: Any) -> "PSet":
        backing = self._map.dissoc(item)
        if backing is self._map:
            return self
        return PSet(backing)

    def transient(self) -> "TSet":
        """A single-owner mutable builder seeded with this set's contents."""
        return TSet(self._map.transient())

    def __contains__(self, item: Any) -> bool:
        # Inlined PMap.__contains__: membership is the single hottest
        # persistent operation (causal-delivery checks per DFS step).
        root = self._map._root
        if root is None:
            return False
        return _lookup(root, hash(item) & _HASH_MASK, item) is not _MISSING

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._map)

    @staticmethod
    def of(items) -> "PSet":
        builder = PSet().transient()
        for item in items:
            builder.add(item)
        return builder.persistent()

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self)
        return f"pset({{{inner}}})"


class SetTier:
    """A mutable façade over a :class:`PSet` root.

    Duck-type compatible with the exploration engine's visited tier
    (``in`` / ``add`` / ``len`` / iteration, the same surface
    ``fp_store.SpillSet`` provides) while keeping every historical root
    immutable: :meth:`snapshot` is an O(1) pointer read whose result
    shares all structure with later versions.  Work-stealing sessions
    keep one tier across all tasks a worker runs, so successive tasks
    extend a structurally-shared trie instead of rebuilding or copying a
    plain ``set``.
    """

    __slots__ = ("pset",)

    def __init__(self, base: Optional[PSet] = None) -> None:
        self.pset = base if base is not None else PSet()

    def add(self, item: Any) -> None:
        self.pset = self.pset.add(item)

    def discard(self, item: Any) -> None:
        self.pset = self.pset.discard(item)

    def __contains__(self, item: Any) -> bool:
        return item in self.pset

    def __len__(self) -> int:
        return len(self.pset)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.pset)

    def snapshot(self) -> PSet:
        return self.pset


class MapTier:
    """The expanded-table analogue of :class:`SetTier`.

    Matches the engine's access pattern (``setdefault(key, [])``
    returning the stored value).  The *spine* is persistent and
    snapshots share it; the stored record lists themselves are mutable
    leaves the engine appends to in place — a snapshot freezes the key
    set, not the record contents.
    """

    __slots__ = ("pmap",)

    def __init__(self, base: Optional[PMap] = None) -> None:
        self.pmap = base if base is not None else PMap()

    def setdefault(self, key: Any, default: Any) -> Any:
        value = self.pmap.get(key, _MISSING)
        if value is _MISSING:
            self.pmap = self.pmap.assoc(key, default)
            return default
        return value

    def __contains__(self, key: Any) -> bool:
        return key in self.pmap

    def __len__(self) -> int:
        return len(self.pmap)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return self.pmap.items()

    def snapshot(self) -> PMap:
        return self.pmap


EMPTY_MAP = PMap()
EMPTY_SET = PSet()
