"""Persistent hash tries: O(delta) branching for the exploration engine.

The copy-on-write snapshots of :class:`~repro.runtime.system.OpBasedSystem`
and :class:`~repro.runtime.state_system.StateBasedSystem` shallow-copy every
container per branch point — O(|configuration|) work that dominates the DFS
hot path once visibility relations and seen-sets grow.  This module provides
*path-copying* persistent maps and sets (hash array mapped tries, 32-way):

* ``assoc``/``add`` return a **new** trie sharing every untouched subtree
  with the old one — an update allocates O(log n) nodes and shares the rest;
* a snapshot is the root pointer (O(1)); restore is a pointer swap (O(1));
* tokens never go stale: the old root is immutable, so it can be restored
  any number of times, from any depth.

Deletion is deliberately unsupported: the systems' label-indexed containers
(seen-sets, visibility, effector tables) only ever *grow* along an
execution — "removal" is exactly a restore, i.e. a root swap to an older
trie.  Keeping the tries grow-only halves the node logic and removes the
canonical-form subtleties of HAMT deletion.

Structural-sharing accounting: every mutation records how many trie nodes
it copied (allocated) and how many child pointers it *shared* (reused in a
copied node) in the module-level :data:`STATS`.  The engine samples the
counters around a run and reports the delta as
``ExploreStats.pstate_copied`` / ``pstate_shared`` (surfaced by
``repro stats`` in the scheduler digest) — the observable proof that
branching is O(delta), not O(configuration).
"""

from typing import Any, Iterator, Mapping, Optional, Tuple

_BITS = 5
_MASK = (1 << _BITS) - 1
#: Python hashes are normalized into this unsigned width before chunking.
_HASH_MASK = (1 << 64) - 1

try:  # int.bit_count is 3.10+; the fallback keeps 3.8/3.9 importable
    # The unbound C descriptor itself — calling it adds no Python frame,
    # and popcounts sit under every trie lookup on the DFS hot path.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - older interpreters only

    def _popcount(x: int) -> int:
        return bin(x).count("1")


class PStats:
    """Structural-sharing counters (see module docstring)."""

    __slots__ = ("nodes_copied", "nodes_shared")

    def __init__(self) -> None:
        self.nodes_copied = 0
        self.nodes_shared = 0

    def snapshot(self) -> Tuple[int, int]:
        return (self.nodes_copied, self.nodes_shared)


#: Process-global counters: exploration is single-threaded per process, and
#: workers ship their deltas home through ``ExploreStats``.
STATS = PStats()


class _Leaf:
    __slots__ = ("hash", "key", "value")


class _Bucket:
    """Entries whose full 64-bit hashes collide."""

    __slots__ = ("hash", "items")


class _Node:
    """A bitmap-indexed interior node: children are nodes, leaves, buckets."""

    __slots__ = ("bitmap", "array")


def _leaf(h: int, key: Any, value: Any) -> _Leaf:
    node = _Leaf()
    node.hash = h
    node.key = key
    node.value = value
    return node


def _merge(shift: int, a: Any, b: Any) -> Any:
    """Join two leaves/buckets with distinct hashes under fresh nodes."""
    ia = (a.hash >> shift) & _MASK
    ib = (b.hash >> shift) & _MASK
    STATS.nodes_copied += 1
    node = _Node()
    if ia == ib:
        node.bitmap = 1 << ia
        node.array = (_merge(shift + _BITS, a, b),)
    else:
        node.bitmap = (1 << ia) | (1 << ib)
        node.array = (a, b) if ia < ib else (b, a)
    return node


def _bucket(h: int, items: Tuple[Tuple[Any, Any], ...]) -> _Bucket:
    node = _Bucket()
    node.hash = h
    node.items = items
    return node


def _assoc(node: Any, shift: int, h: int, key: Any,
           value: Any) -> Tuple[Any, bool]:
    """Insert/replace ``key`` below ``node``; returns ``(new node, added)``.

    Returns ``node`` itself (identity) when the binding already holds, so
    callers can skip allocating a new trie handle entirely.
    """
    stats = STATS
    if type(node) is _Node:
        bit = 1 << ((h >> shift) & _MASK)
        index = _popcount(node.bitmap & (bit - 1))
        array = node.array
        if not (node.bitmap & bit):
            stats.nodes_copied += 1
            stats.nodes_shared += len(array)
            new = _Node()
            new.bitmap = node.bitmap | bit
            new.array = array[:index] + (_leaf(h, key, value),) + array[index:]
            return new, True
        child = array[index]
        replacement, added = _assoc(child, shift + _BITS, h, key, value)
        if replacement is child:
            return node, added
        stats.nodes_copied += 1
        stats.nodes_shared += len(array) - 1
        new = _Node()
        new.bitmap = node.bitmap
        new.array = array[:index] + (replacement,) + array[index + 1:]
        return new, added
    if type(node) is _Leaf:
        if node.hash == h and node.key == key:
            if node.value is value or node.value == value:
                return node, False
            stats.nodes_copied += 1
            return _leaf(h, key, value), False
        if node.hash == h:
            stats.nodes_copied += 1
            return _bucket(h, ((node.key, node.value), (key, value))), True
        return _merge(shift, node, _leaf(h, key, value)), True
    # _Bucket
    if node.hash == h:
        for index, (k, v) in enumerate(node.items):
            if k == key:
                if v is value or v == value:
                    return node, False
                stats.nodes_copied += 1
                items = (node.items[:index] + ((key, value),)
                         + node.items[index + 1:])
                return _bucket(h, items), False
        stats.nodes_copied += 1
        return _bucket(h, node.items + ((key, value),)), True
    return _merge(shift, node, _leaf(h, key, value)), True


_MISSING = object()


def _lookup(node: Any, h: int, key: Any) -> Any:
    shift = 0
    while type(node) is _Node:
        bit = 1 << ((h >> shift) & _MASK)
        if not (node.bitmap & bit):
            return _MISSING
        node = node.array[_popcount(node.bitmap & (bit - 1))]
        shift += _BITS
    if type(node) is _Leaf:
        if node.hash == h and node.key == key:
            return node.value
        return _MISSING
    if node.hash == h:
        for k, v in node.items:
            if k == key:
                return v
    return _MISSING


def _iter_entries(node: Any) -> Iterator[Tuple[Any, Any]]:
    # Iterative with an explicit stack: entry iteration sits on the
    # systems' hot paths (seen-set scans per invoke), where nested
    # generator delegation per trie level costs more than the visit.
    stack = [node]
    while stack:
        node = stack.pop()
        kind = type(node)
        if kind is _Node:
            stack.extend(reversed(node.array))
        elif kind is _Leaf:
            yield (node.key, node.value)
        else:
            yield from node.items


class PMap:
    """An immutable hash-trie map; ``assoc`` path-copies, lookups are O(log n).

    Iteration order is hash-trie order: deterministic for a fixed key set
    within one process, but *not* sorted and not insertion-ordered — callers
    that fingerprint contents must sort or use order-insensitive containers
    (the systems already do).
    """

    __slots__ = ("_root", "_size")

    def __init__(self, root: Any = None, size: int = 0) -> None:
        self._root = root
        self._size = size

    def assoc(self, key: Any, value: Any) -> "PMap":
        h = hash(key) & _HASH_MASK
        if self._root is None:
            STATS.nodes_copied += 1
            return PMap(_leaf(h, key, value), 1)
        root, added = _assoc(self._root, 0, h, key, value)
        if root is self._root:
            return self
        return PMap(root, self._size + (1 if added else 0))

    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        value = _lookup(self._root, hash(key) & _HASH_MASK, key)
        return default if value is _MISSING else value

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        if self._root is None:
            return False
        return _lookup(self._root, hash(key) & _HASH_MASK, key) is not _MISSING

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        if self._root is not None:
            for key, _ in _iter_entries(self._root):
                yield key

    def items(self) -> Iterator[Tuple[Any, Any]]:
        if self._root is not None:
            yield from _iter_entries(self._root)

    def values(self) -> Iterator[Any]:
        if self._root is not None:
            for _, value in _iter_entries(self._root):
                yield value

    def keys(self) -> Iterator[Any]:
        return iter(self)

    @staticmethod
    def of(mapping: Mapping[Any, Any]) -> "PMap":
        pmap = PMap()
        for key, value in mapping.items():
            pmap = pmap.assoc(key, value)
        return pmap

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"pmap({{{inner}}})"


class PSet:
    """An immutable hash-trie set over :class:`PMap`."""

    __slots__ = ("_map",)

    def __init__(self, backing: Optional[PMap] = None) -> None:
        self._map = backing if backing is not None else PMap()

    def add(self, item: Any) -> "PSet":
        backing = self._map.assoc(item, True)
        if backing is self._map:
            return self
        return PSet(backing)

    def update(self, items) -> "PSet":
        backing = self._map
        for item in items:
            backing = backing.assoc(item, True)
        if backing is self._map:
            return self
        return PSet(backing)

    def __contains__(self, item: Any) -> bool:
        # Inlined PMap.__contains__: membership is the single hottest
        # persistent operation (causal-delivery checks per DFS step).
        root = self._map._root
        if root is None:
            return False
        return _lookup(root, hash(item) & _HASH_MASK, item) is not _MISSING

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._map)

    @staticmethod
    def of(items) -> "PSet":
        return PSet().update(items)

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self)
        return f"pset({{{inner}}})"


EMPTY_MAP = PMap()
EMPTY_SET = PSet()
