"""Schedulers: randomized executions and exhaustive small-scope exploration.

The randomized drivers interleave workload invocations with adversarial
delivery (op-based: causal but arbitrarily delayed; state-based: message
duplication, reordering, and loss) and close executions with a read at every
replica — so every history carries queries worth justifying.

The exhaustive explorer enumerates *all* interleavings of fixed per-replica
programs (used by the Sec. 3.3 client-reasoning reproduction and the Fig. 10
reachability arguments).  It lives in :mod:`repro.runtime.explore_engine`
(sleep sets, state dedup, copy-on-write snapshots — see
``docs/exploration.md``) and is re-exported here under its historical name;
the unoptimized baseline survives as
:func:`repro.runtime.explore_naive.explore_op_programs_naive`.
"""

import random
from typing import Sequence

from ..core.errors import PreconditionViolation
from ..crdts.base import OpBasedCRDT, StateBasedCRDT
from .explore_engine import (  # noqa: F401  (re-exported API)
    ExploreStats,
    Program,
    explore_op_programs,
)
from .state_system import StateBasedSystem
from .system import OpBasedSystem
from .workloads import Workload


def random_op_execution(
    crdt: OpBasedCRDT,
    workload: Workload,
    replicas: Sequence[str] = ("r1", "r2", "r3"),
    operations: int = 10,
    seed: int = 0,
    deliver_probability: float = 0.35,
    final_reads: bool = True,
    read_method: str = "read",
) -> OpBasedSystem:
    """Drive a random op-based execution and return the finished system.

    After the random phase, all effectors are delivered (quiescence) and —
    when ``final_reads`` — every replica reads once, so convergence is
    observable in the history itself.
    """
    rng = random.Random(seed)
    system = OpBasedSystem(crdt, replicas)
    issued = 0
    while issued < operations:
        replica = rng.choice(system.replicas)
        if rng.random() < deliver_probability:
            pending = system.deliverable(replica)
            if pending:
                system.deliver(replica, rng.choice(pending))
                continue
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
            issued += 1
        except PreconditionViolation:
            continue
    system.deliver_all()
    if final_reads:
        for replica in system.replicas:
            system.invoke(replica, read_method, ())
        system.deliver_all()
    return system


def random_state_execution(
    crdt: StateBasedCRDT,
    workload: Workload,
    replicas: Sequence[str] = ("r1", "r2", "r3"),
    operations: int = 10,
    seed: int = 0,
    gossip_probability: float = 0.35,
    duplicate_probability: float = 0.15,
    final_reads: bool = True,
    read_method: str = "read",
) -> StateBasedSystem:
    """Drive a random state-based execution with adversarial delivery."""
    rng = random.Random(seed)
    system = StateBasedSystem(crdt, replicas)
    issued = 0
    while issued < operations:
        replica = rng.choice(system.replicas)
        if system.messages and rng.random() < duplicate_probability:
            # Re-apply an arbitrary old message (duplication / reordering).
            system.receive(replica, rng.choice(system.messages))
            continue
        if rng.random() < gossip_probability:
            target = rng.choice(
                [r for r in system.replicas if r != replica]
            )
            system.gossip(replica, target)
            continue
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
            issued += 1
        except PreconditionViolation:
            continue
    system.sync_all()
    if final_reads:
        for replica in system.replicas:
            system.invoke(replica, read_method, ())
        system.sync_all()
    return system


