"""Schedulers: randomized executions and exhaustive small-scope exploration.

The randomized drivers interleave workload invocations with adversarial
delivery (op-based: causal but arbitrarily delayed; state-based: message
duplication, reordering, and loss) and close executions with a read at every
replica — so every history carries queries worth justifying.

The exhaustive explorer enumerates *all* interleavings of fixed per-replica
programs (used by the Sec. 3.3 client-reasoning reproduction and the Fig. 10
reachability arguments).
"""

import copy
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import PreconditionViolation
from ..crdts.base import OpBasedCRDT, StateBasedCRDT
from .state_system import StateBasedSystem
from .system import OpBasedSystem
from .workloads import Workload


def random_op_execution(
    crdt: OpBasedCRDT,
    workload: Workload,
    replicas: Sequence[str] = ("r1", "r2", "r3"),
    operations: int = 10,
    seed: int = 0,
    deliver_probability: float = 0.35,
    final_reads: bool = True,
    read_method: str = "read",
) -> OpBasedSystem:
    """Drive a random op-based execution and return the finished system.

    After the random phase, all effectors are delivered (quiescence) and —
    when ``final_reads`` — every replica reads once, so convergence is
    observable in the history itself.
    """
    rng = random.Random(seed)
    system = OpBasedSystem(crdt, replicas)
    issued = 0
    while issued < operations:
        replica = rng.choice(system.replicas)
        if rng.random() < deliver_probability:
            pending = system.deliverable(replica)
            if pending:
                system.deliver(replica, rng.choice(pending))
                continue
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
            issued += 1
        except PreconditionViolation:
            continue
    system.deliver_all()
    if final_reads:
        for replica in system.replicas:
            system.invoke(replica, read_method, ())
        system.deliver_all()
    return system


def random_state_execution(
    crdt: StateBasedCRDT,
    workload: Workload,
    replicas: Sequence[str] = ("r1", "r2", "r3"),
    operations: int = 10,
    seed: int = 0,
    gossip_probability: float = 0.35,
    duplicate_probability: float = 0.15,
    final_reads: bool = True,
    read_method: str = "read",
) -> StateBasedSystem:
    """Drive a random state-based execution with adversarial delivery."""
    rng = random.Random(seed)
    system = StateBasedSystem(crdt, replicas)
    issued = 0
    while issued < operations:
        replica = rng.choice(system.replicas)
        if system.messages and rng.random() < duplicate_probability:
            # Re-apply an arbitrary old message (duplication / reordering).
            system.receive(replica, rng.choice(system.messages))
            continue
        if rng.random() < gossip_probability:
            target = rng.choice(
                [r for r in system.replicas if r != replica]
            )
            system.gossip(replica, target)
            continue
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        method, args = proposal
        try:
            system.invoke(replica, method, args)
            issued += 1
        except PreconditionViolation:
            continue
    system.sync_all()
    if final_reads:
        for replica in system.replicas:
            system.invoke(replica, read_method, ())
        system.sync_all()
    return system


# ----------------------------------------------------------------------
# Exhaustive small-scope exploration
# ----------------------------------------------------------------------

#: A straight-line per-replica program: ``(method, args)`` steps, or
#: ``(method, args, obj)`` when the system hosts several objects.
Program = List[Tuple[Any, ...]]


def explore_op_programs(
    make_system: Callable[[], OpBasedSystem],
    programs: Dict[str, Program],
    visit: Callable[[OpBasedSystem, Dict[str, List[Any]]], None],
    require_quiescence: bool = True,
    max_configurations: Optional[int] = None,
) -> int:
    """Run per-replica ``programs`` under **every** interleaving.

    ``visit(system, returns)`` is called on each final configuration, where
    ``returns[replica]`` lists the return values of that replica's program
    in order.  When ``require_quiescence`` is set, final configurations are
    fully delivered before visiting.  Returns the number of final
    configurations visited.
    """
    visited = 0

    def step(
        system: OpBasedSystem,
        counters: Dict[str, int],
        returns: Dict[str, List[Any]],
    ) -> None:
        nonlocal visited
        if max_configurations is not None and visited >= max_configurations:
            return
        moved = False
        for replica, program in programs.items():
            index = counters[replica]
            if index < len(program):
                moved = True
                branch = copy.deepcopy((system, counters, returns))
                b_system, b_counters, b_returns = branch
                step_spec = program[index]
                method, args = step_spec[0], step_spec[1]
                obj = step_spec[2] if len(step_spec) > 2 else None
                try:
                    label = b_system.invoke(replica, method, args, obj=obj)
                except PreconditionViolation:
                    continue  # this interleaving cannot run the op yet
                b_counters[replica] += 1
                b_returns[replica].append(label.ret)
                step(b_system, b_counters, b_returns)
        for replica in list(programs):
            for label in system.deliverable(replica):
                moved = True
                branch = copy.deepcopy((system, counters, returns))
                b_system, b_counters, b_returns = branch
                # Re-locate the copied label by uid inside the copy.
                copies = [
                    l for l in b_system.generation_order if l.uid == label.uid
                ]
                b_system.deliver(replica, copies[0])
                step(b_system, b_counters, b_returns)
        if not moved:
            visited += 1
            visit(system, returns)
        elif not require_quiescence and all(
            counters[r] == len(p) for r, p in programs.items()
        ):
            # Also report configurations where programs finished but
            # deliveries are still pending.
            visited += 1
            visit(system, returns)

    initial = make_system()
    step(
        initial,
        {replica: 0 for replica in programs},
        {replica: [] for replica in programs},
    )
    return visited
