"""A user-facing facade over the op-based runtime.

:class:`Cluster` wraps :class:`~repro.runtime.system.OpBasedSystem` with the
ergonomics an application developer expects:

* per-replica handles with method proxying —
  ``cluster["alice"].add("x")`` instead of ``system.invoke(...)``;
* network *partitions* — while replicas are in different blocks, effectors
  are not delivered across; ``heal()`` reconnects and ``sync()`` flushes;
* one-call correctness checks (``check()``) running the entry-appropriate
  RA-linearizability verdict and the convergence oracle.

Partitions only delay delivery (availability under partition is the whole
point of CRDTs — Sec. 1); they never drop effectors, so healing always
reaches quiescence.
"""

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.convergence import check_convergence
from ..core.errors import SchedulingError
from ..core.ralin import RAResult, check_ra_linearizable
from ..core.rewriting import QueryUpdateRewriting
from ..core.spec import SequentialSpec
from ..crdts.base import OpBasedCRDT
from .system import OpBasedSystem


class ReplicaHandle:
    """A bound view of one replica: method calls become invocations.

    Attribute proxying has a blind spot: Python resolves real attributes
    (``state``, ``name``) before ``__getattr__``, so a CRDT method of
    the same name would be silently shadowed by the handle's own API.
    Accessing such an attribute now raises instead, and :meth:`invoke`
    is the always-available escape hatch that reaches any CRDT method
    regardless of its name.
    """

    def __init__(self, cluster: "Cluster", replica: str) -> None:
        self._cluster = cluster
        self._replica = replica

    def invoke(self, method: str, *args, obj: Optional[str] = None) -> Any:
        """Invoke a CRDT method explicitly (bypasses attribute proxying).

        Works for every method name, including ones the handle's own
        attributes (``state``, ``name``, ``invoke``) would shadow.
        """
        label = self._cluster.system.invoke(
            self._replica, method, tuple(args), obj=obj
        )
        self._cluster.flush()
        return label.ret

    def _reject_shadowed(self, attr: str) -> None:
        shadowed = sorted(
            obj_name
            for obj_name, crdt in self._cluster.system.objects.items()
            if attr in crdt.methods
        )
        if shadowed:
            raise SchedulingError(
                f"replica handle attribute {attr!r} shadows a CRDT method "
                f"of the same name (object(s) {shadowed}); call "
                f"handle.invoke({attr!r}, ...) for the CRDT method, or use "
                "Cluster.system directly for runtime introspection"
            )

    @property
    def name(self) -> str:
        self._reject_shadowed("name")
        return self._replica

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def call(*args, obj: Optional[str] = None):
            return self.invoke(method, *args, obj=obj)

        return call

    def state(self, obj: Optional[str] = None) -> Any:
        self._reject_shadowed("state")
        return self._cluster.system.state(self._replica, obj)

    def __repr__(self) -> str:
        return f"<replica {self._replica}>"


class Cluster:
    """A replicated object with partition-aware delivery."""

    def __init__(
        self,
        objects: "Dict[str, OpBasedCRDT] | OpBasedCRDT",
        replicas: Sequence[str] = ("r1", "r2", "r3"),
        shared_timestamps: bool = True,
        auto_deliver: bool = True,
    ) -> None:
        self.system = OpBasedSystem(
            objects, replicas, shared_timestamps=shared_timestamps
        )
        self.auto_deliver = auto_deliver
        self._blocks: List[Set[str]] = [set(replicas)]

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def partition(self, *blocks: Sequence[str]) -> None:
        """Split the cluster into disjoint blocks; unlisted replicas form
        their own singleton blocks."""
        assigned: Set[str] = set()
        new_blocks: List[Set[str]] = []
        for block in blocks:
            members = set(block)
            unknown = members - set(self.system.replicas)
            if unknown:
                raise SchedulingError(f"unknown replicas {sorted(unknown)}")
            if members & assigned:
                raise SchedulingError("partition blocks must be disjoint")
            assigned |= members
            new_blocks.append(members)
        for replica in self.system.replicas:
            if replica not in assigned:
                new_blocks.append({replica})
        self._blocks = new_blocks
        self.flush()

    def heal(self) -> None:
        """Reconnect everything and flush pending deliveries."""
        self._blocks = [set(self.system.replicas)]
        self.flush()

    def connected(self, source: str, target: str) -> bool:
        """Are two replicas currently in the same partition block?"""
        return any(
            source in block and target in block for block in self._blocks
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Deliver everything deliverable within the current topology."""
        if not self.auto_deliver:
            return
        progress = True
        while progress:
            progress = False
            for replica in self.system.replicas:
                for label in self.system.deliverable(replica):
                    if self.connected(label.origin, replica):
                        self.system.deliver(replica, label)
                        progress = True

    def sync(self) -> None:
        """Force full delivery regardless of ``auto_deliver``."""
        saved = self.auto_deliver
        self.auto_deliver = True
        try:
            self.flush()
        finally:
            self.auto_deliver = saved

    # ------------------------------------------------------------------
    # Access and checking
    # ------------------------------------------------------------------

    def __getitem__(self, replica: str) -> ReplicaHandle:
        if replica not in self.system.replicas:
            raise KeyError(replica)
        return ReplicaHandle(self, replica)

    @property
    def replicas(self) -> Tuple[str, ...]:
        return tuple(self.system.replicas)

    def check(
        self,
        spec: SequentialSpec,
        gamma: Optional[QueryUpdateRewriting] = None,
        max_orders: Optional[int] = None,
    ) -> RAResult:
        """RA-linearizability of everything executed so far."""
        return check_ra_linearizable(
            self.system.history(), spec, gamma=gamma, max_orders=max_orders
        )

    def converged(self, obj: Optional[str] = None) -> bool:
        ok, _ = check_convergence(self.system.replica_views(obj))
        return ok
