"""Composition of state-based objects (Sec. 5 ⊗ts, state-based flavour).

Several state-based objects replicated over the same nodes, with a *global*
visibility relation (an operation sees every operation — of any object —
already in its replica's label set) and a **shared Lamport clock**: a fresh
timestamp dominates the timestamps of all operations visible at the
replica, regardless of object (the ⊗ts discipline of Fig. 11, which
Theorem 5.5 needs for timestamp-ordered objects such as the
LWW-Element-Set).

Messages are per-object snapshots tagged with the sender's *full* label set
so that cross-object visibility propagates with the payload.
"""

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.errors import PreconditionViolation, SchedulingError
from ..core.history import History
from ..core.label import Label
from ..core.timestamp import BOTTOM, TimestampGenerator
from ..crdts.base import StateBasedCRDT


@dataclass(frozen=True)
class ObjectMessage:
    """A GENERATE'd snapshot of one object at one replica."""

    msg_id: int
    sender: str
    obj: str
    labels: FrozenSet[Label]
    state: Any


class ComposedStateSystem:
    """Multiple state-based objects with shared clock and global vis."""

    def __init__(
        self,
        objects: Dict[str, StateBasedCRDT],
        replicas: Sequence[str] = ("r1", "r2", "r3"),
        shared_timestamps: bool = True,
    ) -> None:
        if not objects:
            raise ValueError("need at least one object")
        self.objects = dict(objects)
        self.replicas = list(replicas)
        self.shared_timestamps = shared_timestamps
        if shared_timestamps:
            shared = TimestampGenerator()
            self._generators = {name: shared for name in self.objects}
        else:
            self._generators = {
                name: TimestampGenerator() for name in self.objects
            }
        self._states: Dict[Tuple[str, str], Any] = {
            (r, name): crdt.initial_state()
            for r in self.replicas
            for name, crdt in self.objects.items()
        }
        self._seen: Dict[str, FrozenSet[Label]] = {
            r: frozenset() for r in self.replicas
        }
        # Per-label seen-snapshots: the (immutable) label set visible at the
        # origin replica when the label was generated.  Visibility edges are
        # materialized lazily in :meth:`history` — storing one shared
        # frozenset per label instead of |seen| edge tuples keeps invoke
        # O(1) and the recorded structure linear in history length.
        self._snapshots: Dict[Label, FrozenSet[Label]] = {}
        self.messages: List[ObjectMessage] = []
        self.generation_order: List[Label] = []

    def invoke(
        self, replica: str, method: str, args: Tuple = (),
        obj: Optional[str] = None,
    ) -> Label:
        if obj is None:
            if len(self.objects) != 1:
                raise SchedulingError("object name required")
            obj = next(iter(self.objects))
        crdt = self.objects[obj]
        state = self._states[(replica, obj)]
        if not crdt.precondition(state, method, tuple(args)):
            raise PreconditionViolation(
                f"{obj}.{method}{tuple(args)!r} fails at {replica}"
            )
        if method in crdt.timestamped_methods:
            ts = self._generators[obj].fresh(replica)
        else:
            ts = BOTTOM
        ret, new_state = crdt.apply(state, method, tuple(args), ts, replica)
        label = Label(
            method, tuple(args), ret=ret, ts=ts, obj=obj, origin=replica
        )
        self._snapshots[label] = self._seen[replica]
        self._seen[replica] = self._seen[replica] | {label}
        self._states[(replica, obj)] = new_state
        self.generation_order.append(label)
        return label

    def send(self, replica: str, obj: str) -> ObjectMessage:
        message = ObjectMessage(
            msg_id=len(self.messages),
            sender=replica,
            obj=obj,
            labels=self._seen[replica],
            state=self._states[(replica, obj)],
        )
        self.messages.append(message)
        return message

    def receive(self, replica: str, message: ObjectMessage) -> None:
        crdt = self.objects[message.obj]
        self._states[(replica, message.obj)] = crdt.merge(
            self._states[(replica, message.obj)], message.state
        )
        # Only same-object labels become "seen" (their effects arrived);
        # a shared clock still advances from the payload's timestamps.
        self._seen[replica] |= {
            l for l in message.labels if l.obj == message.obj
        }
        for ts in crdt.timestamps_in_state(message.state):
            self._generators[message.obj].observe(replica, ts)
        # ⊗ts dominance (Fig. 11): a fresh timestamp must dominate every
        # operation visible at the replica *regardless of object*, so the
        # shared clock also advances past the tagged cross-object label
        # timestamps riding on the payload — the merged state alone only
        # carries the arriving object's timestamps (and may even have
        # dropped some of those, e.g. overwritten LWW writes).  Under
        # independent clocks (⊗) only same-object tags advance their own
        # object's clock; cross-object anomalies are the point of ⊗.
        for tagged in message.labels:
            if self.shared_timestamps or tagged.obj == message.obj:
                self._generators[message.obj].observe(replica, tagged.ts)

    def gossip(self, source: str, target: str) -> None:
        for obj in self.objects:
            self.receive(target, self.send(source, obj))

    def sync_all(self, rounds: int = 2) -> None:
        for _ in range(rounds):
            snapshots = [
                (target, self.send(source, obj))
                for source in self.replicas
                for obj in self.objects
                for target in self.replicas
                if target != source
            ]
            for target, message in snapshots:
                self.receive(target, message)

    def state(self, replica: str, obj: str) -> Any:
        return self._states[(replica, obj)]

    def seen(self, replica: str) -> FrozenSet[Label]:
        return self._seen[replica]

    def _distinct_generators(self) -> List[TimestampGenerator]:
        """The generators deduplicated by identity, in object order.

        Under ``shared_timestamps`` every object name maps to the *same*
        generator; snapshotting it once keeps the token honest (restoring
        twice through aliased names would otherwise race).
        """
        return list({id(g): g for g in self._generators.values()}.values())

    def snapshot(self) -> Tuple:
        """An O(|configuration|) snapshot token for :meth:`restore`.

        Shallow copies only — messages, labels, CRDT states, and the
        per-label seen-snapshots are immutable values shared between the
        live system and the token, which is what lets composed stores run
        under the exploration engine's snapshot protocol
        (``runtime/explore_engine.py``).
        """
        return (
            dict(self._states),
            dict(self._seen),
            dict(self._snapshots),
            list(self.messages),
            list(self.generation_order),
            tuple(g.snapshot() for g in self._distinct_generators()),
        )

    def restore(self, token: Tuple) -> None:
        """Rewind to a :meth:`snapshot` token (reusable)."""
        states, seen, snapshots, messages, order, clocks = token
        self._states = dict(states)
        self._seen = dict(seen)
        self._snapshots = dict(snapshots)
        self.messages = list(messages)
        self.generation_order = list(order)
        for generator, clock in zip(self._distinct_generators(), clocks):
            generator.restore(clock)

    def history(self) -> History:
        vis: Set[Tuple[Label, Label]] = {
            (prior, label)
            for label in self.generation_order
            for prior in self._snapshots[label]
        }
        return History(self.generation_order, vis, check=False,
                       transitive=False)
