"""Operational semantics of state-based CRDTs (Appendix D.2).

Three transition rules:

* **OPERATION** — a replica runs a whole method θ locally; the label is
  added to its label set ``L`` and made to see everything in ``L``.
* **GENERATE** — a replica emits a message containing its *local
  configuration* ``(L, σ)``.
* **APPLY** — a replica merges a message's state into its own
  (``merge`` = least upper bound) and unions the label sets.

Messages are never consumed: they may be applied **multiple times**, at
**any replica**, in **any order**, or never (loss) — the adversarial
delivery the paper's state-based results must tolerate (no causal-delivery
assumption).  The runtime tracks Lamport clocks across merges so that
timestamped methods (LWW-Element-Set) still produce timestamps consistent
with visibility.
"""

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.errors import PreconditionViolation, SchedulingError
from ..core.history import History
from ..core.label import Label
from ..core.timestamp import BOTTOM, TimestampGenerator
from ..crdts.base import StateBasedCRDT
from .pstate import EMPTY_SET


@dataclass(frozen=True)
class Message:
    """A GENERATE'd message: a snapshot of a local configuration."""

    msg_id: int
    sender: str
    labels: FrozenSet[Label]
    state: Any


class StateBasedSystem:
    """A replicated system running one state-based CRDT object.

    ``persistent=True`` mirrors :class:`~repro.runtime.system.OpBasedSystem`:
    label sets and the visibility relation become persistent hash tries,
    the generator's clock table copy-on-write, and the append-only logs
    (messages, generation order, events) are snapshotted by length mark
    and rewound by truncation — sound under the explorers' DFS discipline
    (tokens are only restored along the current execution path).
    """

    def __init__(
        self,
        crdt: StateBasedCRDT,
        replicas: Sequence[str] = ("r1", "r2", "r3"),
        obj: Optional[str] = None,
        persistent: bool = False,
    ) -> None:
        self.crdt = crdt
        self.replicas = list(replicas)
        self.obj = obj
        self.persistent = persistent
        self._generator = TimestampGenerator(persistent=persistent)
        self._states: Dict[str, Any] = {
            r: crdt.initial_state() for r in self.replicas
        }
        if persistent:
            self._seen = {r: EMPTY_SET for r in self.replicas}
            self._vis = EMPTY_SET
        else:
            self._seen = {r: set() for r in self.replicas}
            self._vis = set()
        self.messages: List[Message] = []
        self.generation_order: List[Label] = []
        #: Event log: ("op", replica, label, pre, post) and
        #: ("apply", replica, message, pre, post) — consumed by the
        #: Appendix D proof harness (Prop5, reachable-state sampling).
        self.events: List[Tuple] = []

    # ------------------------------------------------------------------
    # OPERATION
    # ------------------------------------------------------------------

    def invoke(self, replica: str, method: str, args: Tuple = ()) -> Label:
        state = self._states[replica]
        if not self.crdt.precondition(state, method, tuple(args)):
            raise PreconditionViolation(
                f"{method}{tuple(args)!r} precondition fails at {replica}"
            )
        if method in self.crdt.timestamped_methods:
            ts = self._generator.fresh(replica)
        else:
            ts = BOTTOM
        ret, new_state = self.crdt.apply(
            state, method, tuple(args), ts, replica
        )
        label = Label(
            method, tuple(args), ret=ret, ts=ts, obj=self.obj, origin=replica
        )
        seen_here = self._seen[replica]
        if self.persistent:
            self._vis = self._vis.update(
                (prior, label) for prior in seen_here
            )
            self._seen[replica] = seen_here.add(label)
        else:
            for prior in seen_here:
                self._vis.add((prior, label))
            seen_here.add(label)
        self._states[replica] = new_state
        self.generation_order.append(label)
        self.events.append(("op", replica, label, state, new_state))
        return label

    # ------------------------------------------------------------------
    # GENERATE / APPLY
    # ------------------------------------------------------------------

    def send(self, replica: str) -> Message:
        """GENERATE: snapshot ``replica``'s local configuration."""
        message = Message(
            msg_id=len(self.messages),
            sender=replica,
            labels=frozenset(self._seen[replica]),
            state=self._states[replica],
        )
        self.messages.append(message)
        return message

    def receive(self, replica: str, message: Message) -> None:
        """APPLY: merge a message into ``replica``'s configuration.

        Idempotent and order-insensitive by the lattice laws — applying the
        same message twice is allowed (and exercised by the tests).
        """
        if message.msg_id >= len(self.messages):
            raise SchedulingError("unknown message")
        pre = self._states[replica]
        post = self.crdt.merge(pre, message.state)
        self._states[replica] = post
        if self.persistent:
            self._seen[replica] = self._seen[replica].update(message.labels)
        else:
            self._seen[replica] |= set(message.labels)
        for ts in self.crdt.timestamps_in_state(message.state):
            self._generator.observe(replica, ts)
        self.events.append(("apply", replica, message, pre, post))

    def gossip(self, source: str, target: str) -> None:
        """Convenience: ``source`` sends, ``target`` applies, immediately."""
        self.receive(target, self.send(source))

    def sync_all(self, rounds: int = 2) -> None:
        """Everybody gossips with everybody, ``rounds`` times."""
        for _ in range(rounds):
            snapshots = {r: self.send(r) for r in self.replicas}
            for target in self.replicas:
                for source in self.replicas:
                    if source != target:
                        self.receive(target, snapshots[source])

    # ------------------------------------------------------------------
    # Snapshot / restore (copy-on-write branching for the explorers)
    # ------------------------------------------------------------------

    @property
    def snapshot_safe(self) -> bool:
        """True when the CRDT keeps immutable (sharable) states."""
        return self.crdt.snapshot_safe

    def snapshot(self) -> Tuple:
        """An O(|configuration|) snapshot token for :meth:`restore`.

        Shallow copies only — messages, labels, and CRDT states are
        immutable values shared between the live system and the token.
        Under ``persistent=True`` the token is O(#replicas): trie roots by
        reference, append-only logs by length mark.
        """
        if self.persistent:
            return (
                dict(self._states),
                dict(self._seen),
                self._vis,
                len(self.messages),
                len(self.generation_order),
                len(self.events),
                self._generator.snapshot(),
            )
        return (
            dict(self._states),
            {r: set(s) for r, s in self._seen.items()},
            set(self._vis),
            list(self.messages),
            list(self.generation_order),
            list(self.events),
            self._generator.snapshot(),
        )

    def restore(self, token: Tuple) -> None:
        """Rewind to a :meth:`snapshot` token (reusable any number of times
        along the explorers' DFS discipline under ``persistent=True``)."""
        states, seen, vis, messages, order, events, clocks = token
        if self.persistent:
            self._states = dict(states)
            self._seen = dict(seen)
            self._vis = vis
            del self.messages[messages:]
            del self.generation_order[order:]
            del self.events[events:]
        else:
            self._states = dict(states)
            self._seen = {r: set(s) for r, s in seen.items()}
            self._vis = set(vis)
            self.messages = list(messages)
            self.generation_order = list(order)
            self.events = list(events)
        self._generator.restore(clocks)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def state(self, replica: str) -> Any:
        return self._states[replica]

    def seen(self, replica: str) -> FrozenSet[Label]:
        return frozenset(self._seen[replica])

    def history(self) -> History:
        return History(self.generation_order, self._vis, check=False,
                       transitive=False)

    def replica_views(self) -> Dict[str, Tuple[FrozenSet[Label], Any]]:
        """Per-replica (visible labels, state) for the convergence oracle."""
        return {
            r: (frozenset(self._seen[r]), self._states[r])
            for r in self.replicas
        }

    def outstanding_count(self) -> int:
        """Number of (label, replica) visibilities still outstanding.

        Counts generated labels not yet in a replica's label set; zero
        iff every replica has (transitively) received every operation —
        the state-based quiescence criterion used by the lossy gossip
        driver.
        """
        return sum(
            1
            for replica in self.replicas
            for label in self.generation_order
            if label not in self._seen[replica]
        )
