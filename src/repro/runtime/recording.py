"""Recording and replaying op-based executions.

An execution of the Fig. 7 semantics is fully determined by its *schedule*:
the interleaved sequence of generator invocations ``(replica, obj, method,
args)`` and effector deliveries ``(replica, index-of-invocation)``.
``record_schedule`` extracts that schedule (JSON-serializable via the value
codec), and ``replay_schedule`` re-runs it on fresh objects — reproducing
the same states, return values, and timestamps (label uids differ, nothing
else does).  This is how counterexamples found by random exploration are
persisted and shared.
"""

import json
from typing import Any, Callable, Dict, List, Mapping, Sequence

from ..core.encoding import decode, encode
from ..crdts.base import OpBasedCRDT
from .system import OpBasedSystem


def record_schedule(system: OpBasedSystem) -> Dict[str, Any]:
    """Extract the (JSON-able) schedule of a finished execution."""
    index_of = {label: i for i, label in enumerate(system.generation_order)}
    steps: List[Dict[str, Any]] = []
    for kind, replica, label in system.trace:
        if kind == "gen":
            steps.append({
                "kind": "invoke",
                "replica": replica,
                "obj": label.obj,
                "method": label.method,
                "args": encode(label.args),
            })
        else:
            steps.append({
                "kind": "deliver",
                "replica": replica,
                "invocation": index_of[label],
            })
    return {
        "replicas": list(system.replicas),
        "objects": sorted(system.objects),
        "shared_timestamps": system.shared_timestamps,
        "steps": steps,
    }


def replay_schedule(
    objects: "Mapping[str, OpBasedCRDT] | OpBasedCRDT",
    schedule: Dict[str, Any],
) -> OpBasedSystem:
    """Re-run a recorded schedule on fresh CRDT instances."""
    system = OpBasedSystem(
        objects,
        replicas=schedule["replicas"],
        shared_timestamps=schedule.get("shared_timestamps", True),
    )
    invocations = []
    for step in schedule["steps"]:
        if step["kind"] == "invoke":
            label = system.invoke(
                step["replica"],
                step["method"],
                decode(step["args"]),
                obj=step["obj"],
            )
            invocations.append(label)
        else:
            system.deliver(step["replica"], invocations[step["invocation"]])
    return system


def dumps(schedule: Dict[str, Any]) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule, indent=2, sort_keys=True)


def loads(text: str) -> Dict[str, Any]:
    """Parse a schedule from a JSON string."""
    return json.loads(text)
