"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table``      — regenerate the Fig. 12 verification table.
* ``figures``    — replay every paper figure and print verdicts.
* ``scenario X`` — render one figure's execution (fig2, fig5a, fig8, fig9,
  fig10, fig10ts, fig14) as replica lanes + visibility.
* ``mutants``    — run mutation testing and print what caught each mutant.
* ``exhaustive`` — exhaustively verify all op-based CRDTs on the standard
  small-scope programs (``--scope`` selects one, ``--metrics`` writes the
  observability artifact).
* ``chaos``      — fault-injection soak: every registry entry under
  deterministic adversarial delivery (drop/duplicate/delay/stale,
  partitions, crash+recovery), with replayable failing-trace dumps.
* ``stats``      — render a ``--metrics`` artifact as a readable summary
  (``--phases`` breaks the engine wall into profiled phases).
* ``bench diff`` — compare two bench JSON artifacts with per-metric
  tolerances; nonzero exit on regression (the CI gate).

The exploration commands (``exhaustive``, ``chaos``) also take
``--progress [SECS]`` (live per-worker heartbeat line on stderr),
``--heartbeat-log PATH`` (heartbeat JSONL artifact) and
``--journal PATH`` (structured lifecycle-event journal) — all
presentation/diagnostic artifacts with no effect on verdicts or the
deterministic metric totals.
"""

import argparse
import io
import re
import sys

from .core.ralin import (
    check_ra_linearizable,
    execution_order_check,
    timestamp_order_check,
)
from .core.render import render_history, render_linearization
from .core.strong import check_strong_linearizable
from .obs import (
    HeartbeatEmitter,
    Instrumentation,
    ProgressMonitor,
    bench_diff_paths,
    read_artifact,
    write_artifact,
)
from .proofs import (
    ALL_ENTRIES,
    chaos_soak,
    default_plans,
    dump_trace,
    exhaustive_verify,
    format_chaos,
    parse_store_spec,
    plan_by_name,
    replay_trace,
    default_jobs,
    format_exhaustive,
    format_metrics,
    format_phases,
    format_store,
    format_table,
    mutant_catalogue,
    standard_programs,
    verify_entries_parallel,
    verify_entry,
    verify_mutant,
    verify_scopes_parallel,
    verify_store,
)
from .runtime.composition import check_composed_ra_linearizable
from .scenarios import (
    fig2_rga_conflict,
    fig5a_orset,
    fig8_rga,
    fig9_two_orsets,
    fig10_two_rgas,
    fig14_addat,
)
from .specs import (
    AddAt1Spec,
    AddAt3Spec,
    ORSetRewriting,
    ORSetSpec,
    RGASpec,
    SetSpec,
    plain_set_view,
)

SCENARIOS = {
    "fig2": fig2_rga_conflict,
    "fig5a": fig5a_orset,
    "fig8": fig8_rga,
    "fig9": fig9_two_orsets,
    "fig10": lambda: fig10_two_rgas(shared_timestamps=False),
    "fig10ts": lambda: fig10_two_rgas(shared_timestamps=True),
    "fig14": fig14_addat,
}


def _instrumentation(args: argparse.Namespace) -> Instrumentation:
    """An enabled handle when ``--metrics`` or ``--journal`` was given,
    else the no-op."""
    if getattr(args, "metrics", None) or getattr(args, "journal", None):
        return Instrumentation.on(
            trace_checks=getattr(args, "trace_checks", False)
        )
    from .obs import NULL_INSTRUMENTATION

    return NULL_INSTRUMENTATION


def _emit_metrics(args: argparse.Namespace, ins: Instrumentation,
                  command: str, **meta) -> None:
    if getattr(args, "metrics", None) and ins.enabled:
        write_artifact(args.metrics, ins, command, meta)
        print(f"metrics artifact written to {args.metrics}")


def _emit_journal(args: argparse.Namespace, ins: Instrumentation) -> None:
    if getattr(args, "journal", None) and ins.journal is not None:
        ins.journal.dump(args.journal)
        print(f"journal written to {args.journal}")


def _progress_monitor(args: argparse.Namespace):
    """(monitor, emitter) for a serial run, or (None, None).

    The monitor renders to stderr only when ``--progress`` was given;
    with ``--heartbeat-log`` alone the records go to the JSONL file and
    the render stream is a discard buffer.
    """
    progress = getattr(args, "progress", None)
    log = getattr(args, "heartbeat_log", None)
    if progress is None and not log:
        return None, None
    monitor = ProgressMonitor(
        interval=progress,
        stream=(sys.stderr if progress is not None else io.StringIO()),
        log_path=log,
    )
    emitter = HeartbeatEmitter(worker="w0", sink=monitor.ingest,
                               interval=progress)
    return monitor, emitter


def cmd_table(args: argparse.Namespace) -> int:
    ins = _instrumentation(args)
    if args.jobs == 0:
        args.jobs = default_jobs()
    if args.jobs > 1:
        results = verify_entries_parallel(
            ALL_ENTRIES, executions=args.executions,
            operations=args.operations, jobs=args.jobs,
            instrumentation=ins,
        )
    else:
        with ins.span("table.serial", entries=len(ALL_ENTRIES)):
            results = [
                verify_entry(entry, executions=args.executions,
                             operations=args.operations,
                             instrumentation=ins)
                for entry in ALL_ENTRIES
            ]
    # The composed row: a small ⊗ts store verified with the per-object
    # compositional rule (Sec. 5), alongside the single-object entries.
    from .proofs.compositional import composed_table_entry

    results.append(composed_table_entry(instrumentation=ins))
    for result in results:
        ins.record_verification(result)
    print(format_table(results, title="Fig. 12 — verification table"))
    _emit_metrics(args, ins, "table", jobs=args.jobs,
                  executions=args.executions, operations=args.operations)
    return 0 if all(r.verified for r in results) else 1


def cmd_figures(_args: argparse.Namespace) -> int:
    ok = True

    fig5 = fig5a_orset()
    strong = check_strong_linearizable(
        fig5.history, SetSpec(), gamma=plain_set_view()
    )
    ra5 = check_ra_linearizable(
        fig5.history, ORSetSpec(), gamma=ORSetRewriting()
    )
    print(f"fig5a : strong-linearizable={strong is not None} (expect False)"
          f"  RA-linearizable={ra5.ok} (expect True)")
    ok &= strong is None and ra5.ok

    fig8 = fig8_rga()
    eo = execution_order_check(
        fig8.history, RGASpec(), fig8.system.generation_order
    )
    to = timestamp_order_check(
        fig8.history, RGASpec(), fig8.system.generation_order
    )
    print(f"fig8  : execution-order={eo.ok} (expect False)"
          f"  timestamp-order={to.ok} (expect True)")
    ok &= (not eo.ok) and to.ok

    fig9 = fig9_two_orsets()
    r9 = check_composed_ra_linearizable(
        fig9.history,
        {"o1": ORSetSpec(), "o2": ORSetSpec()},
        {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
    )
    print(f"fig9  : composed RA-linearizable={r9.ok} (expect True)")
    ok &= r9.ok

    for shared, expect in ((False, False), (True, True)):
        scenario = fig10_two_rgas(shared_timestamps=shared)
        r10 = check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )
        flavour = "⊗ts" if shared else "⊗  "
        print(f"fig10 : under {flavour} RA-linearizable={r10.ok} "
              f"(expect {expect})")
        ok &= r10.ok is expect

    fig14 = fig14_addat()
    r1 = check_ra_linearizable(fig14.history, AddAt1Spec())
    r3 = check_ra_linearizable(fig14.history, AddAt3Spec())
    print(f"fig14 : addAt1={r1.ok} (expect False)  addAt3={r3.ok} "
          f"(expect True)")
    ok &= (not r1.ok) and r3.ok

    return 0 if ok else 1


def cmd_scenario(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.name]()
    print(render_history(
        scenario.history, scenario.system.generation_order, title=args.name
    ))
    return 0


def cmd_mutants(_args: argparse.Namespace) -> int:
    all_caught = True
    for name, make_crdt, base in mutant_catalogue():
        result = verify_mutant(make_crdt, base)
        caught = [] if result.verified else [
            check for check, flag in (
                ("commutativity/props", result.commutativity_ok),
                ("refinement/fold", result.refinement_ok),
                ("convergence", result.convergence_ok),
                ("RA-lin", result.ralin_ok),
            ) if not flag
        ]
        verdict = "CAUGHT by " + ", ".join(caught) if caught else "MISSED"
        print(f"{name:<35} {verdict}")
        all_caught &= bool(caught)
    return 0 if all_caught else 1


def _normalize_scope(name: str) -> str:
    """CLI scope key for an entry name: ``"2P-Set (op)"`` → ``2p_set_op``."""
    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def cmd_exhaustive(args: argparse.Namespace) -> int:
    if args.store:
        return _cmd_exhaustive_store(args)
    entries = [entry for entry in ALL_ENTRIES if entry.kind == "OB"]
    if args.scope:
        wanted = _normalize_scope(args.scope)
        entries = [
            entry for entry in entries
            if _normalize_scope(entry.name) == wanted
        ]
        if not entries:
            available = ", ".join(
                _normalize_scope(entry.name)
                for entry in ALL_ENTRIES if entry.kind == "OB"
            )
            print(f"unknown scope {args.scope!r}; available: {available}",
                  file=sys.stderr)
            return 2
    ins = _instrumentation(args)
    if args.jobs == 0:
        args.jobs = default_jobs()
    symmetry = False if args.no_symmetry else None
    if args.jobs > 1:
        scopes = [(entry, standard_programs(entry), None) for entry in entries]
        merged = verify_scopes_parallel(scopes, jobs=args.jobs,
                                        symmetry=symmetry,
                                        steal=args.steal, spill=args.spill,
                                        instrumentation=ins, por=args.por,
                                        progress=args.progress,
                                        heartbeat_log=args.heartbeat_log)
        results = [merged[entry.name] for entry in entries]
    else:
        monitor, emitter = _progress_monitor(args)
        try:
            results = [
                exhaustive_verify(entry, standard_programs(entry),
                                  symmetry=symmetry, spill=args.spill,
                                  instrumentation=ins, por=args.por,
                                  heartbeat=emitter)
                for entry in entries
            ]
        finally:
            if monitor is not None:
                monitor.close()
    print(format_exhaustive(
        results, title="Exhaustive small-scope verification"
    ))
    _emit_metrics(args, ins, "exhaustive", jobs=args.jobs,
                  scope=args.scope or "all")
    _emit_journal(args, ins)
    return 0 if all(result.ok for result in results) else 1


def _cmd_exhaustive_store(args: argparse.Namespace) -> int:
    """``repro exhaustive --store counter:2,orset:1`` — the compositional
    per-object proof rule (``--independent-clocks`` opts out of ⊗ts and
    takes the whole-store product escape hatch)."""
    try:
        store = parse_store_spec(
            args.store, shared_timestamps=not args.independent_clocks
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    ins = _instrumentation(args)
    if args.jobs == 0:
        args.jobs = default_jobs()
    symmetry = False if args.no_symmetry else None
    result = verify_store(
        store, jobs=args.jobs, symmetry=symmetry, steal=args.steal,
        spill=args.spill, por=args.por, instrumentation=ins,
        progress=args.progress, heartbeat_log=args.heartbeat_log,
    )
    print(format_store(
        result, title="Compositional store verification"
    ))
    _emit_metrics(args, ins, "exhaustive", jobs=args.jobs,
                  store=args.store)
    _emit_journal(args, ins)
    return 0 if result.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.replay:
        ins = _instrumentation(args)
        try:
            replay = replay_trace(args.replay, instrumentation=ins)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot replay trace: {error}", file=sys.stderr)
            return 2
        print(f"replayed {replay.report.entry_name} "
              f"[{replay.report.plan.name} seed {replay.report.seed}]: "
              f"trace={'identical' if replay.trace_matches else 'DIVERGED'} "
              f"verdict={'identical' if replay.verdict_matches else 'DIVERGED'}")
        _emit_journal(args, ins)
        return 0 if replay.ok else 1

    entries = list(ALL_ENTRIES)
    if args.scope:
        wanted = _normalize_scope(args.scope)
        entries = [
            entry for entry in entries
            if _normalize_scope(entry.name) == wanted
        ]
        if not entries:
            available = ", ".join(
                _normalize_scope(entry.name) for entry in ALL_ENTRIES
            )
            print(f"unknown scope {args.scope!r}; available: {available}",
                  file=sys.stderr)
            return 2
    if args.plan:
        try:
            plans = [plan_by_name(args.plan)]
        except KeyError:
            available = ", ".join(plan.name for plan in default_plans())
            print(f"unknown plan {args.plan!r}; available: {available}",
                  file=sys.stderr)
            return 2
    else:
        plans = default_plans()
    ins = _instrumentation(args)
    reports = chaos_soak(
        entries, plans=plans, soak=args.soak, base_seed=args.seed,
        operations=args.operations, instrumentation=ins,
        progress=args.progress, heartbeat_log=args.heartbeat_log,
    )
    print(format_chaos(
        reports, title="Chaos soak — deterministic fault injection"
    ))
    failing = [report for report in reports if not report.ok]
    if failing and args.dump_trace:
        dump_trace(failing[0], args.dump_trace, operations=args.operations)
        print(f"failing trace dumped to {args.dump_trace} "
              f"(replay with: repro chaos --replay {args.dump_trace})")
    _emit_metrics(args, ins, "chaos", soak=args.soak, seed=args.seed,
                  scope=args.scope or "all", plan=args.plan or "all")
    _emit_journal(args, ins)
    return 0 if not failing else 1


def cmd_stats(args: argparse.Namespace) -> int:
    try:
        artifact = read_artifact(args.path)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read metrics artifact: {error}", file=sys.stderr)
        return 2
    if args.phases:
        print(format_phases(artifact))
    else:
        print(format_metrics(artifact))
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    sections = None
    if args.sections:
        sections = [s.strip() for s in args.sections.split(",") if s.strip()]
    try:
        report, code = bench_diff_paths(args.old, args.new,
                                        tolerance=args.tolerance,
                                        sections=sections)
    except (OSError, ValueError) as error:
        print(f"cannot diff bench artifacts: {error}", file=sys.stderr)
        return 2
    print(report)
    return code


def _add_observatory_flags(command: argparse.ArgumentParser) -> None:
    """The live-observability flags shared by the exploration commands."""
    command.add_argument(
        "--progress", nargs="?", const=2.0, type=float, default=None,
        metavar="SECS",
        help="render a live per-worker heartbeat line on stderr every "
             "SECS seconds (default 2.0); flags stalled workers",
    )
    command.add_argument(
        "--heartbeat-log", metavar="PATH", default=None,
        dest="heartbeat_log",
        help="append every heartbeat record to a JSONL artifact "
             "(works with or without --progress)",
    )
    command.add_argument(
        "--journal", metavar="PATH", default=None,
        help="dump the structured lifecycle-event journal (scope "
             "start/end, steal split/claim, spill promotion, DPOR "
             "reversals, budget exhaustion, chaos crash/replay) as JSONL",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replication-Aware Linearizability — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="regenerate the Fig. 12 table")
    table.add_argument("--executions", type=int, default=5)
    table.add_argument("--operations", type=int, default=10)
    table.add_argument(
        "--jobs", type=int, default=1,
        help="verify entries in N worker processes (1 = in-process, "
             "0 = all cores)",
    )
    table.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the observability artifact (JSON, or JSONL when PATH "
             "ends in .jsonl) after the run",
    )
    table.add_argument(
        "--trace-checks", action="store_true", dest="trace_checks",
        help="with --metrics, record one trace event per checked "
             "execution (verbose)",
    )
    table.set_defaults(fn=cmd_table)

    figures = sub.add_parser("figures", help="replay all paper figures")
    figures.set_defaults(fn=cmd_figures)

    scenario = sub.add_parser("scenario", help="render one figure")
    scenario.add_argument("name", choices=sorted(SCENARIOS))
    scenario.set_defaults(fn=cmd_scenario)

    mutants = sub.add_parser("mutants", help="run mutation testing")
    mutants.set_defaults(fn=cmd_mutants)

    exhaustive = sub.add_parser(
        "exhaustive", help="exhaustive small-scope verification"
    )
    exhaustive.add_argument(
        "--jobs", type=int, default=1,
        help="split exploration trees over N worker processes "
             "(1 = in-process, 0 = all cores)",
    )
    exhaustive.add_argument(
        "--no-symmetry", action="store_true", dest="no_symmetry",
        help="disable replica-orbit deduplication (count raw "
             "configurations instead of orbits; see docs/exploration.md)",
    )
    exhaustive.add_argument(
        "--steal", action="store_true", dest="steal", default=None,
        help="with --jobs N, re-balance skewed subtrees via the "
             "work-stealing scheduler (the default; see "
             "docs/performance.md)",
    )
    exhaustive.add_argument(
        "--no-steal", action="store_false", dest="steal",
        help="with --jobs N, use the static root-branch frontier split "
             "instead of work stealing",
    )
    exhaustive.add_argument(
        "--por", choices=("sleep", "source", "optimal"), default="optimal",
        help="partial-order-reduction flavor: 'optimal' (source-DPOR with "
             "wakeup-tree continuations and patch cuts, the default), "
             "'source' (plain source-DPOR) or 'sleep' (classic sleep "
             "sets); all three give identical verdicts and "
             "distinct-configuration counts and the slower flavors stay "
             "as differential oracles",
    )
    exhaustive.add_argument(
        "--spill", metavar="DIR", default=None,
        help="intern fingerprints as fixed-width digests and spill the "
             "visited/expanded records to a scratch sqlite file under DIR "
             "(bounded-memory exploration for large scopes)",
    )
    exhaustive.add_argument(
        "--scope", default=None,
        help="verify a single scope, e.g. or_set, g_set, rga "
             "(entry name, lowercased, punctuation as underscores)",
    )
    exhaustive.add_argument(
        "--store", default=None, metavar="SPEC",
        help="verify a multi-object store compositionally, e.g. "
             "counter:2,orset:1 — one exhaustive scope per object plus "
             "the ⊗ts side condition (see docs/composition.md)",
    )
    exhaustive.add_argument(
        "--independent-clocks", action="store_true",
        dest="independent_clocks",
        help="with --store, compose with independent timestamp "
             "generators (⊗) instead of a shared clock (⊗ts); the "
             "compositional rule is unsound there, so the whole-store "
             "product exploration runs instead",
    )
    exhaustive.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the observability artifact (JSON, or JSONL when PATH "
             "ends in .jsonl) after the run",
    )
    exhaustive.add_argument(
        "--trace-checks", action="store_true", dest="trace_checks",
        help="with --metrics, record one trace event per checked "
             "configuration (verbose)",
    )
    _add_observatory_flags(exhaustive)
    exhaustive.set_defaults(fn=cmd_exhaustive)

    chaos = sub.add_parser(
        "chaos", help="fault-injection soak over the registry entries"
    )
    chaos.add_argument(
        "--scope", default=None,
        help="soak a single entry, e.g. or_set, pn_counter (entry name, "
             "lowercased, punctuation as underscores)",
    )
    chaos.add_argument(
        "--plan", default=None,
        help="run one named fault plan (baseline, high-loss, partition, "
             "crash); default: all of them",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed for the deterministic runs")
    chaos.add_argument(
        "--soak", type=int, default=1, metavar="N",
        help="seeds per (entry, plan) pair (seed, seed+1, ...)",
    )
    chaos.add_argument(
        "--operations", type=int, default=None,
        help="operations per run (default: the registry entry's budget)",
    )
    chaos.add_argument(
        "--dump-trace", metavar="PATH", default=None, dest="dump_trace",
        help="on failure, dump the first failing AdversaryTrace as "
             "replayable JSON",
    )
    chaos.add_argument(
        "--replay", metavar="PATH", default=None,
        help="replay a dumped trace and check determinism + verdict",
    )
    chaos.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the observability artifact (JSON, or JSONL when PATH "
             "ends in .jsonl) after the run",
    )
    _add_observatory_flags(chaos)
    chaos.set_defaults(fn=cmd_chaos)

    stats = sub.add_parser(
        "stats", help="render a --metrics artifact as a readable summary"
    )
    stats.add_argument("path", help="artifact written by --metrics")
    stats.add_argument(
        "--phases", action="store_true",
        help="render the phase-attribution profile (engine wall broken "
             "into snapshot/restore/apply/hb/commute/fingerprint/check)",
    )
    stats.set_defaults(fn=cmd_stats)

    bench = sub.add_parser(
        "bench", help="bench artifact utilities (regression gate)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    diff = bench_sub.add_parser(
        "diff",
        help="compare two bench JSON artifacts; exit 1 on regression",
    )
    diff.add_argument("old", help="baseline bench JSON (e.g. committed "
                                  "BENCH_explore.json)")
    diff.add_argument("new", help="candidate bench JSON to gate")
    diff.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help="relative tolerance for time/rate metrics (default 0.30); "
             "exact metrics (counts, verdicts) never tolerate drift",
    )
    diff.add_argument(
        "--sections", default=None, metavar="NAMES",
        help="comma-separated top-level sections to gate on (e.g. "
             "dpor_3r,optimal_3r); other sections are ignored entirely",
    )
    diff.set_defaults(fn=cmd_bench_diff)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
