"""CRDT implementations — the substrate the paper's results range over."""

from .base import (
    Effector,
    EffectorClass,
    GeneratorResult,
    OpBasedCRDT,
    StateBasedCRDT,
)
from .opbased import (
    Op2PSet,
    OpCounter,
    OpLWWRegister,
    OpORSet,
    OpRGA,
    OpRGAAddAt,
    OpWooki,
)
from .statebased import (
    SBLWWRegister,
    SB2PSet,
    SBGCounter,
    SBGSet,
    SBLWWElementSet,
    SBMVRegister,
    SBPNCounter,
)

__all__ = [
    "Op2PSet",
    "SBLWWRegister",
    "Effector",
    "EffectorClass",
    "GeneratorResult",
    "OpBasedCRDT",
    "OpCounter",
    "OpLWWRegister",
    "OpORSet",
    "OpRGA",
    "OpRGAAddAt",
    "OpWooki",
    "SB2PSet",
    "SBGCounter",
    "SBGSet",
    "SBLWWElementSet",
    "SBMVRegister",
    "SBPNCounter",
    "StateBasedCRDT",
]
