"""State-based counters: G-Counter and PN-Counter (Listing 9).

The PN-Counter payload is a pair of per-replica vectors ``(P, N)``; ``inc``
(``dec``) bumps the origin's entry of ``P`` (``N``) and ``merge`` is the
pointwise maximum — the canonical join semilattice.  ``read`` returns
``ΣP − ΣN``.

Appendix D classifies their local effectors as *cumulative*: the local
effector of every ``inc`` at replica ``r`` has the same argument
``(inc, r)``, and effectors commute unconditionally (Prop′₁).
Execution-order linearizable w.r.t. ``Spec(Counter)`` (Fig. 12:
PN-Counter, SB, EO).
"""

from typing import Any, Tuple

from ...core.freeze import FrozenDict
from ...core.label import Label
from ...core.spec import Role
from ..base import EffectorClass, StateBasedCRDT

Vector = FrozenDict
State = Tuple[Vector, Vector]


def _bump(vector: Vector, replica: str) -> Vector:
    return vector.set(replica, vector.get(replica, 0) + 1)


def _join(v1: Vector, v2: Vector) -> Vector:
    merged = dict(v1)
    for replica, count in v2.items():
        if count > merged.get(replica, 0):
            merged[replica] = count
    return FrozenDict(merged)


def _leq(v1: Vector, v2: Vector) -> bool:
    return all(count <= v2.get(replica, 0) for replica, count in v1.items())


class SBPNCounter(StateBasedCRDT):
    """State-based PN-Counter; state is ``(P, N)``."""

    type_name = "PN-Counter"
    methods = {
        "inc": Role.UPDATE,
        "dec": Role.UPDATE,
        "read": Role.QUERY,
    }
    effector_class = EffectorClass.CUMULATIVE

    def initial_state(self) -> State:
        return (FrozenDict(), FrozenDict())

    def apply(
        self, state: State, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, State]:
        p, n = state
        if method == "inc":
            return None, (_bump(p, replica), n)
        if method == "dec":
            return None, (p, _bump(n, replica))
        if method == "read":
            return sum(p.values()) - sum(n.values()), state
        raise KeyError(method)

    def merge(self, state1: State, state2: State) -> State:
        return (_join(state1[0], state2[0]), _join(state1[1], state2[1]))

    def compare(self, state1: State, state2: State) -> bool:
        return _leq(state1[0], state2[0]) and _leq(state1[1], state2[1])

    def effector_args(self, label: Label) -> Any:
        if label.method in ("inc", "dec"):
            return (label.method, label.origin)
        return None

    def apply_local(self, state: State, arg: Any) -> State:
        method, replica = arg
        p, n = state
        if method == "inc":
            return (_bump(p, replica), n)
        return (p, _bump(n, replica))

    def predicate_p(self, state: State, arg: Any) -> bool:
        method, replica = arg
        vector = state[0] if method == "inc" else state[1]
        return vector.get(replica, 0) == 0


class SBGCounter(StateBasedCRDT):
    """State-based grow-only counter (the P half of the PN-Counter)."""

    type_name = "G-Counter"
    methods = {
        "inc": Role.UPDATE,
        "read": Role.QUERY,
    }
    effector_class = EffectorClass.CUMULATIVE

    def initial_state(self) -> Vector:
        return FrozenDict()

    def apply(
        self, state: Vector, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, Vector]:
        if method == "inc":
            return None, _bump(state, replica)
        if method == "read":
            return sum(state.values()), state
        raise KeyError(method)

    def merge(self, state1: Vector, state2: Vector) -> Vector:
        return _join(state1, state2)

    def compare(self, state1: Vector, state2: Vector) -> bool:
        return _leq(state1, state2)

    def effector_args(self, label: Label) -> Any:
        if label.method == "inc":
            return ("inc", label.origin)
        return None

    def apply_local(self, state: Vector, arg: Any) -> Vector:
        _method, replica = arg
        return _bump(state, replica)

    def predicate_p(self, state: Vector, arg: Any) -> bool:
        _method, replica = arg
        return state.get(replica, 0) == 0
