"""State-based multi-value register (Listing 7, Appendix E.1).

The payload is a set of ``(value, version-vector)`` pairs.  A ``write(a)``
computes a version vector strictly above everything it has seen (pointwise
max of all stored vectors, plus one at the origin's entry) and replaces the
payload with the singleton ``{(a, V')}``; ``merge`` keeps the pairs of both
sides that are not strictly dominated by a pair of the other — so
concurrent writes *coexist* and ``read`` may return several values.

Local effectors are *uniquely identified* (Appendix D.3): the fresh version
vector is unique per write (Lemma E.1), vector order is consistent with
visibility, and concurrent writes get incomparable vectors (Lemma E.2).
Execution-order linearizable w.r.t. ``Spec(MV-Reg)`` (Fig. 12: MVR, SB, EO).
"""

from typing import Any, FrozenSet, Tuple

from ...core.label import Label
from ...core.spec import Role
from ...core.timestamp import VersionVector
from ..base import EffectorClass, StateBasedCRDT

Pair = Tuple[Any, VersionVector]
State = FrozenSet[Pair]


class SBMVRegister(StateBasedCRDT):
    """State-based MVR; state is a frozenset of (value, vv) pairs."""

    type_name = "MV-Register"
    methods = {
        "write": Role.QUERY_UPDATE,
        "read": Role.QUERY,
    }
    effector_class = EffectorClass.UNIQUE

    def initial_state(self) -> State:
        return frozenset()

    def apply(
        self, state: State, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, State]:
        if method == "write":
            (value,) = args
            joined = VersionVector()
            for _, vv in state:
                joined = joined.join(vv)
            fresh = joined.bump(replica)
            return fresh, frozenset({(value, fresh)})
        if method == "read":
            return frozenset(v for v, _ in state), state
        raise KeyError(method)

    def merge(self, state1: State, state2: State) -> State:
        keep1 = {
            (v, vv) for v, vv in state1
            if not any(vv.lt(other) for _, other in state2)
        }
        keep2 = {
            (v, vv) for v, vv in state2
            if not any(vv.lt(other) for _, other in state1)
        }
        return frozenset(keep1 | keep2)

    def compare(self, state1: State, state2: State) -> bool:
        return all(
            any(vv.leq(other) for _, other in state2) for _, vv in state1
        )

    def effector_args(self, label: Label) -> Any:
        if label.method == "write":
            (value,) = label.args
            return (value, label.ret)  # ret is the fresh version vector
        return None

    def apply_local(self, state: State, arg: Any) -> State:
        value, vv = arg
        survivors = {
            (v, other) for v, other in state if not other.lt(vv)
        }
        return frozenset(survivors | {(value, vv)})

    def arg_lt(self, arg1: Any, arg2: Any) -> bool:
        return arg1[1].lt(arg2[1])

    def predicate_p(self, state: State, arg: Any) -> bool:
        _value, vv = arg
        return all(not vv.lt(other) for _, other in state)
