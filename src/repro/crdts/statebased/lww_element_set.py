"""State-based LWW-Element-Set (Listing 8).

The payload is ``(A, R)``: timestamped add and remove records.  An element
is in the set when some add record beats *every* remove record for it
(strictly — a remove with an equal-or-larger timestamp wins; our Lamport
timestamps are unique, so only the larger-vs-smaller cases arise).
``merge`` is the pairwise union.

Local effectors are *uniquely identified* by their timestamps and the
timestamp order is consistent with visibility (the runtime's Lamport clocks
advance on merge), so Appendix D.3 applies with timestamp-order
linearizations against the plain ``Spec(Set)`` (Fig. 12:
LWW-Element-Set, SB, TO).
"""

from typing import Any, FrozenSet, Tuple

from ...core.label import Label
from ...core.spec import Role
from ..base import EffectorClass, StateBasedCRDT

Record = Tuple[Any, Any]  # (element, timestamp)
State = Tuple[FrozenSet[Record], FrozenSet[Record]]


def lww_contents(state: State) -> FrozenSet[Any]:
    """The elements currently in the set (Listing 8's ``read``)."""
    adds, removes = state
    present = set()
    for element, add_ts in adds:
        beats_all = all(
            rem_ts < add_ts
            for rem_element, rem_ts in removes
            if rem_element == element
        )
        if beats_all:
            present.add(element)
    return frozenset(present)


class SBLWWElementSet(StateBasedCRDT):
    """State-based LWW-Element-Set; state is ``(A, R)``."""

    type_name = "LWW-Element-Set"
    methods = {
        "add": Role.UPDATE,
        "remove": Role.UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"add", "remove"})
    effector_class = EffectorClass.UNIQUE

    def initial_state(self) -> State:
        return (frozenset(), frozenset())

    def apply(
        self, state: State, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, State]:
        adds, removes = state
        if method == "add":
            (element,) = args
            return None, (adds | {(element, ts)}, removes)
        if method == "remove":
            (element,) = args
            return None, (adds, removes | {(element, ts)})
        if method == "read":
            return lww_contents(state), state
        raise KeyError(method)

    def merge(self, state1: State, state2: State) -> State:
        return (state1[0] | state2[0], state1[1] | state2[1])

    def compare(self, state1: State, state2: State) -> bool:
        return state1[0] <= state2[0] and state1[1] <= state2[1]

    def effector_args(self, label: Label) -> Any:
        if label.method in ("add", "remove"):
            (element,) = label.args
            return (label.method, element, label.ts)
        return None

    def apply_local(self, state: State, arg: Any) -> State:
        method, element, ts = arg
        adds, removes = state
        if method == "add":
            return (adds | {(element, ts)}, removes)
        return (adds, removes | {(element, ts)})

    def arg_lt(self, arg1: Any, arg2: Any) -> bool:
        return arg1[2] < arg2[2]

    def predicate_p(self, state: State, arg: Any) -> bool:
        _method, _element, ts = arg
        stored = {record[1] for record in state[0] | state[1]}
        return all(not (ts < other) for other in stored)

    def timestamps_in_state(self, state: State):
        return [record[1] for record in state[0] | state[1]]
