"""State-based grow-only set and two-phase set (Listing 10).

* **G-Set** — a bare grow-only set: ``add`` inserts, ``merge`` is union.
* **2P-Set** — ``(A, R)`` with a tombstone set ``R``: an element is present
  when in ``A \\ R``; removal is permanent and re-adding has no effect, so
  clients must add each value at most once (the paper's usage assumption,
  enforced by our workload generators).

Both have *idempotent* local effectors (Appendix D.5: applying an effector
twice equals applying it once — Prop₆), and are execution-order
linearizable w.r.t. ``Spec(Set)`` (Fig. 12: 2P-Set, SB, EO).
"""

from typing import Any, FrozenSet, Tuple

from ...core.label import Label
from ...core.spec import Role
from ..base import EffectorClass, StateBasedCRDT

TwoPhaseState = Tuple[FrozenSet[Any], FrozenSet[Any]]


class SBGSet(StateBasedCRDT):
    """State-based grow-only set; state is a frozenset."""

    type_name = "G-Set"
    methods = {
        "add": Role.UPDATE,
        "read": Role.QUERY,
    }
    effector_class = EffectorClass.IDEMPOTENT

    def initial_state(self) -> FrozenSet[Any]:
        return frozenset()

    def apply(
        self, state, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, FrozenSet[Any]]:
        if method == "add":
            (element,) = args
            return None, state | {element}
        if method == "read":
            return state, state
        raise KeyError(method)

    def merge(self, state1, state2):
        return state1 | state2

    def compare(self, state1, state2) -> bool:
        return state1 <= state2

    def effector_args(self, label: Label) -> Any:
        if label.method == "add":
            (element,) = label.args
            return ("add", element)
        return None

    def apply_local(self, state, arg):
        _method, element = arg
        return state | {element}

    def predicate_p(self, state, arg) -> bool:
        _method, element = arg
        return element not in state


class SB2PSet(StateBasedCRDT):
    """State-based two-phase set; state is ``(A, R)``."""

    type_name = "2P-Set"
    methods = {
        "add": Role.UPDATE,
        "remove": Role.UPDATE,
        "read": Role.QUERY,
    }
    effector_class = EffectorClass.IDEMPOTENT

    def initial_state(self) -> TwoPhaseState:
        return (frozenset(), frozenset())

    def precondition(
        self, state: TwoPhaseState, method: str, args: Tuple
    ) -> bool:
        if method == "remove":
            (element,) = args
            added, removed = state
            return element in added and element not in removed
        return True

    def apply(
        self, state: TwoPhaseState, method: str, args: Tuple, ts: Any,
        replica: str,
    ) -> Tuple[Any, TwoPhaseState]:
        added, removed = state
        if method == "add":
            (element,) = args
            return None, (added | {element}, removed)
        if method == "remove":
            (element,) = args
            return None, (added, removed | {element})
        if method == "read":
            return added - removed, state
        raise KeyError(method)

    def merge(self, state1: TwoPhaseState, state2: TwoPhaseState):
        return (state1[0] | state2[0], state1[1] | state2[1])

    def compare(self, state1: TwoPhaseState, state2: TwoPhaseState) -> bool:
        return state1[0] <= state2[0] and state1[1] <= state2[1]

    def effector_args(self, label: Label) -> Any:
        if label.method in ("add", "remove"):
            (element,) = label.args
            return (label.method, element)
        return None

    def apply_local(self, state: TwoPhaseState, arg: Any) -> TwoPhaseState:
        method, element = arg
        added, removed = state
        if method == "add":
            return (added | {element}, removed)
        return (added, removed | {element})

    def predicate_p(self, state: TwoPhaseState, arg: Any) -> bool:
        method, element = arg
        added, removed = state
        if method == "add":
            return element not in added
        return element not in removed
