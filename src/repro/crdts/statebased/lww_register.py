"""State-based last-writer-wins register.

The state-based counterpart of Listing 4: the payload is a single
``(value, timestamp)`` pair, ``merge`` keeps the pair with the larger
timestamp, and ``write`` installs a fresh timestamp (the runtime's Lamport
clocks make fresh timestamps dominate everything merged so far).

Local effectors are uniquely identified by their timestamps (Appendix D.3)
and the register linearizes in timestamp order against ``Spec(Reg)``.
"""

from typing import Any, Optional, Tuple

from ...core.label import Label
from ...core.spec import Role
from ...core.timestamp import BOTTOM
from ..base import EffectorClass, StateBasedCRDT

State = Tuple[Optional[Any], Any]  # (value, timestamp)


class SBLWWRegister(StateBasedCRDT):
    """State-based LWW register; state is ``(value, ts)``."""

    type_name = "LWW-Register (state)"
    methods = {
        "write": Role.UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"write"})
    effector_class = EffectorClass.UNIQUE

    def __init__(self, initial_value: Optional[Any] = None) -> None:
        self._initial_value = initial_value

    def initial_state(self) -> State:
        return (self._initial_value, BOTTOM)

    def apply(
        self, state: State, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, State]:
        if method == "write":
            (value,) = args
            current_value, current_ts = state
            if current_ts < ts:
                return None, (value, ts)
            return None, state
        if method == "read":
            return state[0], state
        raise KeyError(method)

    def merge(self, state1: State, state2: State) -> State:
        return state2 if state1[1] < state2[1] else state1

    def compare(self, state1: State, state2: State) -> bool:
        return state1[1] < state2[1] or state1 == state2

    def effector_args(self, label: Label) -> Any:
        if label.method == "write":
            (value,) = label.args
            return (value, label.ts)
        return None

    def apply_local(self, state: State, arg: Any) -> State:
        value, ts = arg
        if state[1] < ts:
            return (value, ts)
        return state

    def arg_lt(self, arg1: Any, arg2: Any) -> bool:
        return arg1[1] < arg2[1]

    def predicate_p(self, state: State, arg: Any) -> bool:
        _value, ts = arg
        return not (ts < state[1])

    def timestamps_in_state(self, state: State):
        _value, ts = state
        return [] if ts is BOTTOM else [ts]
