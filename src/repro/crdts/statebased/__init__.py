"""State-based CRDT implementations (Sec. 6, Appendix D/E)."""

from .counters import SBGCounter, SBPNCounter
from .lww_register import SBLWWRegister
from .lww_element_set import SBLWWElementSet, lww_contents
from .mv_register import SBMVRegister
from .sets import SB2PSet, SBGSet

__all__ = [
    "SBLWWRegister",
    "SB2PSet",
    "SBGCounter",
    "SBGSet",
    "SBLWWElementSet",
    "SBMVRegister",
    "SBPNCounter",
    "lww_contents",
]
