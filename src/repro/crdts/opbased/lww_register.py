"""Operation-based last-writer-wins register (Listing 4 / Appendix B.2).

The payload is a ``(value, timestamp)`` pair.  ``write(a)`` samples a fresh
timestamp ``ts'`` and broadcasts the effector ``(a, ts')``; a receiving
replica installs the pair only when its own timestamp is smaller — so the
write with the largest timestamp wins everywhere, and concurrent write
effectors commute.  Timestamp-order linearizable w.r.t. ``Spec(Reg)``
(Fig. 12: LWW-Register, OB, TO).
"""

from typing import Any, Optional, Tuple

from ...core.spec import Role
from ...core.timestamp import BOTTOM
from ..base import Effector, GeneratorResult, OpBasedCRDT

State = Tuple[Optional[Any], Any]  # (value, timestamp)


class OpLWWRegister(OpBasedCRDT):
    """Op-based LWW register; state is ``(value, ts)`` with ts₀ = ⊥."""

    type_name = "LWW-Register"
    methods = {
        "write": Role.UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"write"})

    def __init__(self, initial_value: Optional[Any] = None) -> None:
        self._initial_value = initial_value

    def initial_state(self) -> State:
        return (self._initial_value, BOTTOM)

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        if method == "write":
            (value,) = args
            return GeneratorResult(
                ret=None, effector=Effector("write", (value, ts))
            )
        if method == "read":
            return GeneratorResult(ret=state[0], effector=None)
        raise KeyError(method)

    def apply_effector(self, state: State, effector: Effector) -> State:
        if effector.method == "write":
            value, ts = effector.args
            current_value, current_ts = state
            if current_ts < ts:
                return (value, ts)
            return state
        raise KeyError(effector.method)
