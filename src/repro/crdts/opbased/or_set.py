"""Operation-based Observed-Remove Set (Listing 2, Sec. 2.2).

Every ``add(a)`` tags the element with a unique identifier (we use the
freshly sampled timestamp, which Lamport pairs make globally unique) and
returns it.  ``remove(a)`` is a *query-update*: its generator observes the
``(a, k)`` pairs currently in the local state and returns them; its effector
removes exactly those pairs.  A concurrent ``add`` — whose identifier the
remove has not observed — therefore survives, which is the "add wins over
concurrent remove" behaviour of Fig. 5.

Execution-order linearizable w.r.t. ``Spec(OR-Set)`` after the query-update
rewriting of Example 3.6 (Fig. 12: OR-Set, OB, EO).
"""

from typing import Any, FrozenSet, Tuple

from ...core.spec import Role
from ..base import Effector, GeneratorResult, OpBasedCRDT

State = FrozenSet[Tuple[Any, Any]]  # set of (element, identifier) pairs


class OpORSet(OpBasedCRDT):
    """Op-based OR-Set; state is a frozenset of (element, id) pairs."""

    type_name = "OR-Set"
    methods = {
        "add": Role.UPDATE,
        "remove": Role.QUERY_UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"add"})

    def initial_state(self) -> State:
        return frozenset()

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        if method == "add":
            (element,) = args
            identifier = ts  # getUniqueIdentifier(): Lamport ts are unique
            return GeneratorResult(
                ret=identifier,
                effector=Effector("add", (element, identifier)),
            )
        if method == "remove":
            (element,) = args
            observed = frozenset(p for p in state if p[0] == element)
            return GeneratorResult(
                ret=observed,
                effector=Effector("remove", (observed,)),
            )
        if method == "read":
            values = frozenset(e for e, _ in state)
            return GeneratorResult(ret=values, effector=None)
        raise KeyError(method)

    def apply_effector(self, state: State, effector: Effector) -> State:
        if effector.method == "add":
            element, identifier = effector.args
            return state | {(element, identifier)}
        if effector.method == "remove":
            (observed,) = effector.args
            return state - observed
        raise KeyError(effector.method)
