"""Replicated Growable Array (Listing 1, Sec. 2.1).

The payload is a *timestamp tree* — a set of triples ``(parent, ts, elem)``
rooted at the pre-existing element ``◦`` — and a tombstone set.
``addAfter(a, b)`` samples a timestamp for ``b`` and hangs it under ``a``;
``remove(a)`` tombstones ``a`` (the node stays, so concurrent ``addAfter``
under it still finds its parent — the commutativity trick of Sec. 2.1);
``read`` traverses the tree pre-order with siblings visited in *decreasing*
timestamp order, skipping tombstoned values.

Timestamp-order linearizable w.r.t. ``Spec(RGA)`` (Fig. 12: RGA, OB, TO).
"""

from typing import Any, Dict, FrozenSet, List, Tuple

from ...core.sentinels import ROOT
from ...core.spec import Role
from ..base import Effector, GeneratorResult, OpBasedCRDT

Node = Tuple[Any, Any, Any]  # (parent, ts, elem)
State = Tuple[FrozenSet[Node], FrozenSet[Any]]  # (Ti-Tree N, Tomb)


def tree_elements(nodes: FrozenSet[Node]) -> FrozenSet[Any]:
    """The elements stored in a Ti-Tree (excluding the implicit root)."""
    return frozenset(elem for _, _, elem in nodes)


def traverse(nodes: FrozenSet[Node], tombs: FrozenSet[Any]) -> Tuple[Any, ...]:
    """Pre-order traversal, siblings by decreasing timestamp (Sec. 2.1).

    Tombstoned elements are omitted from the output but still traversed —
    their subtrees remain reachable.  ``◦`` is never reported.
    """
    children: Dict[Any, List[Tuple[Any, Any]]] = {}
    for parent, ts, elem in nodes:
        children.setdefault(parent, []).append((ts, elem))
    for siblings in children.values():
        siblings.sort(key=lambda pair: (pair[0].counter, pair[0].replica),
                      reverse=True)

    output: List[Any] = []

    def visit(elem: Any) -> None:
        if elem != ROOT and elem not in tombs:
            output.append(elem)
        for _, child in children.get(elem, ()):
            visit(child)

    visit(ROOT)
    return tuple(output)


class OpRGA(OpBasedCRDT):
    """Op-based RGA; state is ``(N, Tomb)``."""

    type_name = "RGA"
    methods = {
        "addAfter": Role.UPDATE,
        "remove": Role.UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"addAfter"})

    def initial_state(self) -> State:
        return (frozenset(), frozenset())

    def precondition(self, state: State, method: str, args: Tuple) -> bool:
        nodes, tombs = state
        elements = tree_elements(nodes)
        if method == "addAfter":
            anchor, value = args
            anchor_ok = anchor == ROOT or (
                anchor in elements and anchor not in tombs
            )
            return anchor_ok and value not in elements and value != ROOT
        if method == "remove":
            (value,) = args
            return value in elements and value not in tombs and value != ROOT
        return True

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        nodes, tombs = state
        if method == "addAfter":
            anchor, value = args
            return GeneratorResult(
                ret=None, effector=Effector("addAfter", (anchor, ts, value))
            )
        if method == "remove":
            (value,) = args
            return GeneratorResult(
                ret=None, effector=Effector("remove", (value,))
            )
        if method == "read":
            return GeneratorResult(ret=traverse(nodes, tombs), effector=None)
        raise KeyError(method)

    def apply_effector(self, state: State, effector: Effector) -> State:
        nodes, tombs = state
        if effector.method == "addAfter":
            anchor, ts, value = effector.args
            return (nodes | {(anchor, ts, value)}, tombs)
        if effector.method == "remove":
            (value,) = effector.args
            return (nodes, tombs | {value})
        raise KeyError(effector.method)
