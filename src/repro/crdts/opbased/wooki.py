"""Wooki — a W-string list CRDT with ``addBetween`` (Listing 5, App. B.3).

The payload is a *W-string*: an ordered sequence of W-characters
``(id, value, degree, visible)`` delimited by the permanent sentinels
``◦begin``/``◦end``.  ``addBetween(a, b, c)`` creates a W-character for
``b`` whose degree is one more than the larger of its neighbours' and weaves
it into the string with the recursive ``integrateIns`` procedure — which
deterministically resolves conflicts by degree first, then identifier
(timestamp) order.  ``remove`` merely hides a character (sets its flag).

Execution-order linearizable w.r.t. the *nondeterministic* ``Spec(Wooki)``
(Fig. 12: Wooki, OB, EO): the spec admits any position between ``a`` and
``c``, and ``integrateIns`` deterministically picks one.
"""

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ...core.sentinels import BEGIN, END
from ...core.spec import Role
from ...core.timestamp import Timestamp
from ..base import Effector, GeneratorResult, OpBasedCRDT


@dataclass(frozen=True)
class WChar:
    """A W-character: identifier, value, degree, visibility flag."""

    wid: Any
    value: Any
    degree: int
    visible: bool


_BEGIN_CHAR = WChar(BEGIN, BEGIN, 0, True)
_END_CHAR = WChar(END, END, 0, True)

State = Tuple[WChar, ...]


def _id_lt(a: Any, b: Any) -> bool:
    """Identifier order ``<id`` — both are Lamport timestamps here."""
    assert isinstance(a, Timestamp) and isinstance(b, Timestamp)
    return a < b


def _index_of(chars: Tuple[WChar, ...], wid: Any) -> int:
    for i, c in enumerate(chars):
        if c.wid == wid:
            return i
    raise KeyError(f"W-character {wid!r} not in string")


def _find_by_value(chars: Tuple[WChar, ...], value: Any) -> Optional[WChar]:
    for c in chars:
        if c.value == value:
            return c
    return None


def integrate_ins(
    chars: Tuple[WChar, ...], w: WChar, wp_id: Any, wn_id: Any
) -> Tuple[WChar, ...]:
    """The recursive ``integrateIns`` of Listing 5 (pure version)."""
    mutable: List[WChar] = list(chars)

    def rec(prev_id: Any, next_id: Any) -> None:
        p = _index_of(tuple(mutable), prev_id)
        n = _index_of(tuple(mutable), next_id)
        sub = mutable[p + 1:n]
        if not sub:
            mutable.insert(n, w)
            return
        dmin = min(c.degree for c in sub)
        fence = [c for c in sub if c.degree == dmin]
        if _id_lt(w.wid, fence[0].wid):
            rec(prev_id, fence[0].wid)
            return
        i = 0
        while i < len(fence) - 1 and _id_lt(fence[i].wid, w.wid):
            i += 1
        if i == len(fence) - 1 and _id_lt(fence[i].wid, w.wid):
            rec(fence[i].wid, next_id)
        else:
            rec(fence[i - 1].wid, fence[i].wid)

    rec(wp_id, wn_id)
    return tuple(mutable)


def values_of(chars: Tuple[WChar, ...]) -> Tuple[Any, ...]:
    """Visible values, sentinels excluded."""
    return tuple(
        c.value for c in chars
        if c.visible and c.value not in (BEGIN, END)
    )


class OpWooki(OpBasedCRDT):
    """Op-based Wooki; state is the W-string."""

    type_name = "Wooki"
    methods = {
        "addBetween": Role.UPDATE,
        "remove": Role.UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"addBetween"})

    def initial_state(self) -> State:
        return (_BEGIN_CHAR, _END_CHAR)

    def precondition(self, state: State, method: str, args: Tuple) -> bool:
        if method == "addBetween":
            before, value, after = args
            if after == BEGIN or before == END:
                return False
            if value in (BEGIN, END):
                return False
            wp = _find_by_value(state, before)
            wn = _find_by_value(state, after)
            if wp is None or wn is None:
                return False
            if _find_by_value(state, value) is not None:
                return False
            return _index_of(state, wp.wid) < _index_of(state, wn.wid)
        if method == "remove":
            (value,) = args
            if value in (BEGIN, END):
                return False
            char = _find_by_value(state, value)
            return char is not None and char.visible
        return True

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        if method == "addBetween":
            before, value, after = args
            wp = _find_by_value(state, before)
            wn = _find_by_value(state, after)
            degree = max(wp.degree, wn.degree) + 1
            w = WChar(ts, value, degree, True)
            return GeneratorResult(
                ret=None,
                effector=Effector("integrate", (w, wp.wid, wn.wid)),
            )
        if method == "remove":
            (value,) = args
            return GeneratorResult(
                ret=None, effector=Effector("hide", (value,))
            )
        if method == "read":
            return GeneratorResult(ret=values_of(state), effector=None)
        raise KeyError(method)

    def apply_effector(self, state: State, effector: Effector) -> State:
        if effector.method == "integrate":
            w, wp_id, wn_id = effector.args
            return integrate_ins(state, w, wp_id, wn_id)
        if effector.method == "hide":
            (value,) = effector.args
            return tuple(
                WChar(c.wid, c.value, c.degree, False)
                if c.value == value else c
                for c in state
            )
        raise KeyError(effector.method)
