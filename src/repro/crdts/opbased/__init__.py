"""Operation-based CRDT implementations (Sec. 2, Appendix B)."""

from .counter import OpCounter
from .lww_register import OpLWWRegister
from .or_set import OpORSet
from .two_phase_set import Op2PSet
from .rga import OpRGA, traverse, tree_elements
from .rga_addat import OpRGAAddAt
from .wooki import OpWooki, WChar, integrate_ins, values_of

__all__ = [
    "Op2PSet",
    "OpCounter",
    "OpLWWRegister",
    "OpORSet",
    "OpRGA",
    "OpRGAAddAt",
    "OpWooki",
    "WChar",
    "integrate_ins",
    "traverse",
    "tree_elements",
    "values_of",
]
