"""Operation-based two-phase set.

The op-based counterpart of Listing 10: the payload is ``(A, R)``; ``add``
and ``remove`` broadcast idempotent set-insertions (into ``A`` and the
tombstone set ``R`` respectively), so all effectors commute.  The ``remove``
precondition requires the element to be live at the origin, and causal
delivery then guarantees the matching ``add`` arrives first everywhere.
Clients must add each value at most once (the 2P-Set usage assumption).

Execution-order linearizable w.r.t. the plain ``Spec(Set)``.
"""

from typing import Any, FrozenSet, Tuple

from ...core.spec import Role
from ..base import Effector, GeneratorResult, OpBasedCRDT

State = Tuple[FrozenSet[Any], FrozenSet[Any]]


class Op2PSet(OpBasedCRDT):
    """Op-based 2P-Set; state is ``(A, R)``."""

    type_name = "2P-Set (op)"
    methods = {
        "add": Role.UPDATE,
        "remove": Role.UPDATE,
        "read": Role.QUERY,
    }

    def initial_state(self) -> State:
        return (frozenset(), frozenset())

    def precondition(self, state: State, method: str, args: Tuple) -> bool:
        added, removed = state
        if method == "add":
            (element,) = args
            return element not in added
        if method == "remove":
            (element,) = args
            return element in added and element not in removed
        return True

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        added, removed = state
        if method == "add":
            (element,) = args
            return GeneratorResult(None, Effector("add", (element,)))
        if method == "remove":
            (element,) = args
            return GeneratorResult(None, Effector("remove", (element,)))
        if method == "read":
            return GeneratorResult(added - removed, None)
        raise KeyError(method)

    def apply_effector(self, state: State, effector: Effector) -> State:
        added, removed = state
        (element,) = effector.args
        if effector.method == "add":
            return (added | {element}, removed)
        if effector.method == "remove":
            return (added, removed | {element})
        raise KeyError(effector.method)
