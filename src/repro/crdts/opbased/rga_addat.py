"""RGA with the index-based ``addAt`` interface (Appendix C.4).

Same payload as :class:`~repro.crdts.opbased.rga.OpRGA`; the interface of
[Attiya et al. 2016]:

* ``addAt(a, k) ⇒ s`` — insert value ``a`` at position ``k`` of the local
  list; ``k`` past the end appends; returns the *updated local* list.
  Internally resolves to ``addAfter(b, a)`` where ``b`` is the local
  ``(k-1)``-th visible element (``◦`` for a head insert or an empty view).
* ``remove(a) ⇒ s`` — tombstone ``a`` and return the updated local list.
* ``read() ⇒ s``.

This object is **not** RA-linearizable w.r.t. ``Spec(addAt1)`` or
``Spec(addAt2)`` (Lemma C.1, Fig. 14) but **is** w.r.t. ``Spec(addAt3)``
(Lemma C.2) — the API experiment of Sec. 4.2's closing remark.
"""

from typing import Any, Tuple

from ...core.sentinels import ROOT
from ...core.spec import Role
from ..base import Effector, GeneratorResult, OpBasedCRDT
from .rga import OpRGA, State, traverse, tree_elements


class OpRGAAddAt(OpRGA):
    """RGA payload behind the ``addAt`` index interface."""

    type_name = "RGA-addAt"
    methods = {
        "addAt": Role.QUERY_UPDATE,
        "remove": Role.QUERY_UPDATE,
        "read": Role.QUERY,
    }
    timestamped_methods = frozenset({"addAt"})

    def precondition(self, state: State, method: str, args: Tuple) -> bool:
        nodes, tombs = state
        elements = tree_elements(nodes)
        if method == "addAt":
            value, index = args
            return value not in elements and value != ROOT and index >= 0
        if method == "remove":
            (value,) = args
            return value in elements and value not in tombs and value != ROOT
        return True

    def generator(
        self, state: State, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        nodes, tombs = state
        if method == "addAt":
            value, index = args
            local = traverse(nodes, tombs)
            if not local or index == 0:
                anchor = ROOT
            elif len(local) >= index:
                anchor = local[index - 1]
            else:
                anchor = local[-1]
            effector = Effector("addAfter", (anchor, ts, value))
            updated = traverse(nodes | {(anchor, ts, value)}, tombs)
            return GeneratorResult(ret=updated, effector=effector)
        if method == "remove":
            (value,) = args
            updated = traverse(nodes, tombs | {value})
            return GeneratorResult(
                ret=updated, effector=Effector("remove", (value,))
            )
        if method == "read":
            return GeneratorResult(ret=traverse(nodes, tombs), effector=None)
        raise KeyError(method)
