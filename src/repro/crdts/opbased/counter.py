"""Operation-based counter (Listing 3 / Appendix B.1).

The simplest op-based CRDT: the payload is an integer, ``inc``/``dec``
broadcast effectors that shift it by ±1 (which trivially commute), and
``read`` returns it.  Execution-order linearizable w.r.t. ``Spec(Counter)``.
"""

from typing import Any, Tuple

from ...core.spec import Role
from ..base import Effector, GeneratorResult, OpBasedCRDT


class OpCounter(OpBasedCRDT):
    """Op-based counter; state is an ``int``."""

    type_name = "Counter"
    methods = {
        "inc": Role.UPDATE,
        "dec": Role.UPDATE,
        "read": Role.QUERY,
    }

    def initial_state(self) -> int:
        return 0

    def generator(
        self, state: int, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        if method == "inc":
            return GeneratorResult(ret=None, effector=Effector("inc"))
        if method == "dec":
            return GeneratorResult(ret=None, effector=Effector("dec"))
        if method == "read":
            return GeneratorResult(ret=state, effector=None)
        raise KeyError(method)

    def apply_effector(self, state: int, effector: Effector) -> int:
        if effector.method == "inc":
            return state + 1
        if effector.method == "dec":
            return state - 1
        raise KeyError(effector.method)
