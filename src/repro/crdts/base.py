"""Base classes for CRDT implementations.

Op-based CRDTs (Sec. 2, Fig. 1) split every method into a *generator* — run
once, at the origin replica, allowed to read the state — and an *effector* —
a pure state transformer broadcast to (and applied at) every replica.
Queries produce no effector; updates produce effectors whose behaviour
depends only on the generator's outputs (never on the receiving state beyond
what the effector arguments encode).

State-based CRDTs (Sec. 6, Appendix D) apply the whole method at the origin
and instead exchange *states*, merged via the least-upper-bound ``merge`` of
a join semilattice.  For the Appendix D proof methodology each operation is
additionally given a "local effector" — a proof artifact: the state delta it
performs at the origin, identified by ``effector_args``.

All states are immutable values (tuples / frozensets / FrozenDict) so that
the property-checking harness can compare, hash, and replay them freely.
"""

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Tuple

from ..core.freeze import freeze
from ..core.label import Label
from ..core.spec import Role


@dataclass(frozen=True)
class Effector:
    """A broadcastable effector: a named pure transformer plus arguments."""

    method: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"eff:{self.method}({inner})"


@dataclass(frozen=True)
class GeneratorResult:
    """What a generator produces: a return value and (maybe) an effector."""

    ret: Any = None
    effector: Optional[Effector] = None


class OpBasedCRDT(ABC):
    """An operation-based CRDT in the paper's generator/effector style."""

    #: Data type name, e.g. ``"OR-Set"``.
    type_name: str = "op-based CRDT"
    #: Role of each method (query / update / query-update), per Sec. 3.1.
    methods: Mapping[str, Role] = {}
    #: Methods whose generator samples a timestamp.
    timestamped_methods: FrozenSet[str] = frozenset()
    #: Whether replica states are immutable values that may be *shared*
    #: between configuration snapshots.  All in-tree CRDTs use persistent
    #: tuples / frozensets / FrozenDicts, so sharing is safe; a CRDT with
    #: mutable states must set this to False, and the exploration engine
    #: falls back to ``copy.deepcopy`` branching for it.
    snapshot_safe: bool = True

    @abstractmethod
    def initial_state(self) -> Any:
        """The initial replica state σ₀."""

    def fingerprint(self, state: Any) -> Any:
        """A hashable canonical form of ``state`` (the Fingerprintable hook).

        Two states with equal fingerprints must be observably equal: the
        exploration engine merges configurations whose fingerprints agree.
        The default deep-freezes the state with :func:`repro.core.freeze`;
        override for states with non-canonical representations (e.g. caches
        or insertion-ordered containers that do not affect behaviour).
        """
        return freeze(state)

    def precondition(self, state: Any, method: str, args: Tuple) -> bool:
        """Generator precondition (Listing 1/5 ``precondition`` clauses)."""
        return True

    @abstractmethod
    def generator(
        self, state: Any, method: str, args: Tuple, ts: Any
    ) -> GeneratorResult:
        """Run the generator at the origin replica.

        ``ts`` is the freshly sampled timestamp when the method is in
        ``timestamped_methods``, otherwise ``BOTTOM``.
        """

    @abstractmethod
    def apply_effector(self, state: Any, effector: Effector) -> Any:
        """Apply an effector — a pure function of (state, effector args)."""

    def role(self, method: str) -> Role:
        return self.methods[method]


class EffectorClass(enum.Enum):
    """Appendix D classification of state-based local effectors."""

    UNIQUE = "uniquely-identified"   # D.3: unique args + partial order
    CUMULATIVE = "cumulative"        # D.4: args unique per (m, a, b, origin)
    IDEMPOTENT = "idempotent"        # D.5: apply twice = apply once


class StateBasedCRDT(ABC):
    """A state-based CRDT (Listing 6 outline + Appendix D decomposition)."""

    type_name: str = "state-based CRDT"
    methods: Mapping[str, Role] = {}
    timestamped_methods: FrozenSet[str] = frozenset()
    effector_class: EffectorClass = EffectorClass.UNIQUE
    #: See :attr:`OpBasedCRDT.snapshot_safe`.
    snapshot_safe: bool = True

    @abstractmethod
    def initial_state(self) -> Any:
        """The initial replica state σ₀."""

    def fingerprint(self, state: Any) -> Any:
        """A hashable canonical form of ``state``.

        See :meth:`OpBasedCRDT.fingerprint`.
        """
        return freeze(state)

    def precondition(self, state: Any, method: str, args: Tuple) -> bool:
        return True

    @abstractmethod
    def apply(
        self, state: Any, method: str, args: Tuple, ts: Any, replica: str
    ) -> Tuple[Any, Any]:
        """The method body θ: returns ``(return value, new state)``.

        Queries leave the state unchanged.  ``replica`` is the origin
        replica identifier (``myRep()`` in Listing 7/9).
        """

    @abstractmethod
    def merge(self, state1: Any, state2: Any) -> Any:
        """Least upper bound of two replica states."""

    def compare(self, state1: Any, state2: Any) -> bool:
        """``state1 ≤ state2`` in the join semilattice.

        Default: ``merge(s1, s2) == s2`` (the canonical lattice order).
        """
        return self.merge(state1, state2) == state2

    def role(self, method: str) -> Role:
        return self.methods[method]

    # ------------------------------------------------------------------
    # Appendix D "local effector" decomposition (proof artifacts)
    # ------------------------------------------------------------------

    @abstractmethod
    def effector_args(self, label: Label) -> Any:
        """``arg(ℓ)``: the local-effector argument of an update label.

        Returns ``None`` for queries (they have no effector).
        """

    @abstractmethod
    def apply_local(self, state: Any, arg: Any) -> Any:
        """``apply(σ, arg(ℓ))``: the universal local-effector function."""

    def arg_lt(self, arg1: Any, arg2: Any) -> bool:
        """Strict partial order on effector args (UNIQUE class only)."""
        raise NotImplementedError(
            f"{self.type_name} does not order its effector arguments"
        )

    def predicate_p(self, state: Any, arg: Any) -> bool:
        """P1/P2 (Appendix D.3/D.4): ``arg`` is maximal / fresh w.r.t. the
        effectors already folded into ``state``."""
        raise NotImplementedError

    def timestamps_in_state(self, state: Any):
        """Timestamps stored in a state (drives Lamport clocks on merge)."""
        return ()
