"""Client-side reasoning over CRDT objects (Sec. 3.3).

The paper's showcase: two replicas run

    add(a); rem(a); X = read()   ∥   add(a); Y = read()

against an OR-Set, and the post-condition ``a ∈ X ⇒ a ∈ Y`` holds in every
execution — an argument the paper carries out purely over
RA-linearizations.  This module makes both directions executable:

* :func:`check_client_assertion` — run per-replica programs under **all**
  delivery interleavings (exhaustive small-scope model checking of the
  operational semantics) and evaluate a predicate over the programs' return
  values.
* :func:`enumerate_ra_linearizations` — enumerate every RA-linearization
  witness of a history, supporting the specification-level reasoning of
  Sec. 3.3.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.history import History
from ..core.label import Label
from ..core.linearization import induced_predecessors, iter_topological_orders
from ..core.ralin import check_update_order
from ..core.rewriting import QueryUpdateRewriting, rewrite_history
from ..core.spec import SequentialSpec
from ..crdts.base import OpBasedCRDT
from ..runtime.schedule import Program, explore_op_programs
from ..runtime.system import OpBasedSystem


@dataclass
class ClientCheckResult:
    """Outcome of exhaustive client-program checking."""

    holds: bool
    configurations: int
    counterexamples: List[Dict[str, List[Any]]] = field(default_factory=list)


def check_client_assertion(
    make_crdt: Callable[[], OpBasedCRDT],
    programs: Dict[str, Program],
    predicate: Callable[[Dict[str, List[Any]]], bool],
    replicas: Optional[Sequence[str]] = None,
    max_counterexamples: int = 5,
) -> ClientCheckResult:
    """Check ``predicate`` over the return values of every interleaving.

    ``programs`` maps replica ids to straight-line operation lists; the
    predicate receives ``{replica: [return values in program order]}``.
    """
    replica_ids = list(replicas) if replicas else sorted(programs)
    counterexamples: List[Dict[str, List[Any]]] = []

    def visit(system: OpBasedSystem, returns: Dict[str, List[Any]]) -> None:
        if not predicate(returns):
            if len(counterexamples) < max_counterexamples:
                counterexamples.append(
                    {replica: list(vals) for replica, vals in returns.items()}
                )

    def make_system() -> OpBasedSystem:
        return OpBasedSystem(make_crdt(), replicas=replica_ids)

    visited = explore_op_programs(make_system, programs, visit)
    return ClientCheckResult(
        holds=not counterexamples,
        configurations=visited,
        counterexamples=counterexamples,
    )


def enumerate_ra_linearizations(
    history: History,
    spec: SequentialSpec,
    gamma: Optional[QueryUpdateRewriting] = None,
    max_orders: Optional[int] = None,
) -> Iterator[Tuple[List[Label], List[Label]]]:
    """Yield every RA-linearization witness ``(update_order, full_seq)``.

    The enumeration covers all linear extensions of the visibility closure
    restricted to updates and filters them through Def. 3.5 — the search the
    paper's client reasoning quantifies over ("the possible values of X and
    Y can be computed by enumerating their RA-linearizations").
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    updates = [l for l in rewritten.labels if spec.is_update(l)]
    preds = induced_predecessors(rewritten, updates)
    for order in iter_topological_orders(
        sorted(updates, key=lambda l: l.uid), preds, max_orders=max_orders
    ):
        outcome = check_update_order(rewritten, spec, order)
        if outcome.ok:
            yield list(order), list(outcome.linearization or [])


def possible_query_returns(
    history: History,
    spec: SequentialSpec,
    query: Label,
    gamma: Optional[QueryUpdateRewriting] = None,
) -> List[Any]:
    """All return values the spec could justify for ``query`` across
    RA-linearizations of ``history`` (with the query's return left free).

    Useful for explaining to a client *what* a read may return.
    """
    rewritten = rewrite_history(history, gamma) if gamma else history
    target = gamma.qry(query) if gamma else query
    updates = frozenset(l for l in rewritten.labels if spec.is_update(l))
    visible = rewritten.visible_to(target) & updates
    preds = induced_predecessors(rewritten, visible)
    returns: List[Any] = []
    for order in iter_topological_orders(
        sorted(visible, key=lambda l: l.uid), preds
    ):
        frontier = spec.replay(list(order))
        for state in frontier:
            for candidate in _query_values(spec, state, target):
                if candidate not in returns:
                    returns.append(candidate)
    return returns


def _query_values(spec: SequentialSpec, state: Any, query: Label) -> List[Any]:
    """Probe which return value the spec validates for ``query`` at
    ``state`` by re-checking the label with its own return."""
    if spec.step(state, query):
        return [query.ret]
    return []
