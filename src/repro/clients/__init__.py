"""Client-side reasoning utilities (Sec. 3.3)."""

from .reasoning import (
    ClientCheckResult,
    check_client_assertion,
    enumerate_ra_linearizations,
    possible_query_returns,
)

__all__ = [
    "ClientCheckResult",
    "check_client_assertion",
    "enumerate_ra_linearizations",
    "possible_query_returns",
]
