"""The three list-with-index (``addAt``) specifications of Appendix C.

The paper uses these to show that RA-linearizability is sensitive to the
data type's API:

* ``Spec(addAt1)`` — no tombstones: ``addAt(a,k)`` inserts at index ``k`` of
  the *live* list.  RGA-with-addAt is **not** RA-linearizable w.r.t. it
  (Lemma C.1, Fig. 14).
* ``Spec(addAt2)`` — tombstones, index counted over live elements only; the
  insert position among tombstoned neighbours is nondeterministic.  Also not
  RA-linearizable for RGA-with-addAt (Lemma C.1: its admitted sequences are
  included in Spec(addAt1)'s when each value is removed at most once).
* ``Spec(addAt3)`` — operations *return* the local list content, and the
  index is interpreted against a sub-sequence of the abstract list (the
  origin replica's view).  RGA-with-addAt **is** RA-linearizable w.r.t. it
  (Lemma C.2).
"""

from typing import Any, FrozenSet, Iterable, List, Set, Tuple

from ..core.label import Label
from ..core.spec import Role, SequentialSpec
from .sequences import insert_at, is_subsequence, without

_ROLES = {
    "addAt": Role.UPDATE,
    "remove": Role.UPDATE,
    "read": Role.QUERY,
}

PlainState = Tuple[Any, ...]
TombState = Tuple[Tuple[Any, ...], FrozenSet[Any]]


class AddAt1Spec(SequentialSpec):
    """``Spec(addAt1)``: live list, physical removal."""

    name = "Spec(addAt1)"

    def initial(self) -> PlainState:
        return ()

    def step(self, state: PlainState, label: Label) -> Iterable[PlainState]:
        if label.method == "addAt":
            value, index = label.args
            if value in state:
                return []
            position = index if index <= len(state) else len(state)
            return [insert_at(state, position, value)]
        if label.method == "remove":
            (value,) = label.args
            if value not in state:
                return []
            return [tuple(x for x in state if x != value)]
        if label.method == "read":
            return [state] if label.ret == state else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]


class AddAt2Spec(SequentialSpec):
    """``Spec(addAt2)``: tombstoned list, live index, nondeterministic."""

    name = "Spec(addAt2)"

    def initial(self) -> TombState:
        return ((), frozenset())

    def step(self, state: TombState, label: Label) -> Iterable[TombState]:
        sequence, tombs = state
        if label.method == "addAt":
            value, index = label.args
            if value in sequence:
                return []
            successors: Set[TombState] = set()
            live = without(sequence, tombs)
            for split in range(len(sequence) + 1):
                prefix_live = without(sequence[:split], tombs)
                if len(prefix_live) == index:
                    successors.add((insert_at(sequence, split, value), tombs))
            if len(live) < index:
                successors.add((sequence + (value,), tombs))
            return sorted(successors)
        if label.method == "remove":
            (value,) = label.args
            if value not in sequence:
                return []
            return [(sequence, tombs | {value})]
        if label.method == "read":
            visible = without(sequence, tombs)
            return [state] if label.ret == visible else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]


class AddAt3Spec(SequentialSpec):
    """``Spec(addAt3)``: local-view returns, sub-sequence index semantics."""

    name = "Spec(addAt3)"

    def initial(self) -> TombState:
        return ((), frozenset())

    def _addat_successors(
        self, state: TombState, value: Any, index: int, returned: Tuple
    ) -> List[TombState]:
        sequence, tombs = state
        if value in sequence:
            return []
        if returned.count(value) != 1:
            return []
        at = returned.index(value)
        rest = returned[:at] + returned[at + 1:]
        if not is_subsequence(rest, sequence):
            return []
        successors: Set[TombState] = set()
        if at == 0:
            # b = ◦: the origin's view was empty, or a head insert (k = 0).
            if len(returned) == 1 or index == 0:
                successors.add((insert_at(sequence, 0, value), tombs))
        else:
            anchor = returned[at - 1]
            matches_rule1 = at == index
            matches_rule2 = at == len(returned) - 1 and at < index
            if matches_rule1 or matches_rule2:
                spot = sequence.index(anchor) + 1
                successors.add((insert_at(sequence, spot, value), tombs))
        return sorted(successors)

    def step(self, state: TombState, label: Label) -> Iterable[TombState]:
        sequence, tombs = state
        if label.method == "addAt":
            value, index = label.args
            returned = label.ret if isinstance(label.ret, tuple) else ()
            return self._addat_successors(state, value, index, returned)
        if label.method == "remove":
            (value,) = label.args
            if value not in sequence:
                return []
            returned = label.ret if isinstance(label.ret, tuple) else None
            if returned is None:
                return []
            if value in returned or not is_subsequence(returned, sequence):
                return []
            return [(sequence, tombs | {value})]
        if label.method == "read":
            visible = without(sequence, tombs)
            return [state] if label.ret == visible else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
