"""Sequential specification of Wooki — a list with add-between (App. B.3).

``addBetween(a, b, c)`` inserts the fresh value ``b`` at *some* position
strictly between ``a`` and ``c`` — the specification is nondeterministic
(Sec. 3.2 discusses why: any deterministic conflict resolution must be
allowed).  The sequence is delimited by the permanent sentinels ``◦begin``
and ``◦end``; values are never placed before ``◦begin`` or after ``◦end``
and the sentinels can never be removed.
"""

from typing import Any, FrozenSet, Iterable, List, Tuple

from ..core.label import Label
from ..core.sentinels import BEGIN, END
from ..core.spec import Role, SequentialSpec
from .sequences import insert_at, without

_ROLES = {
    "addBetween": Role.UPDATE,
    "remove": Role.UPDATE,
    "read": Role.QUERY,
}

State = Tuple[Tuple[Any, ...], FrozenSet[Any]]


class WookiSpec(SequentialSpec):
    """``Spec(Wooki)`` — nondeterministic insert position."""

    name = "Spec(Wooki)"

    def initial(self) -> State:
        return ((BEGIN, END), frozenset())

    def step(self, state: State, label: Label) -> Iterable[State]:
        sequence, tombs = state
        if label.method == "addBetween":
            before, value, after = label.args
            if value in sequence:
                return []
            if before == END or after == BEGIN:
                return []
            if before not in sequence or after not in sequence:
                return []
            lo = sequence.index(before)
            hi = sequence.index(after)
            if lo >= hi:
                return []
            successors: List[State] = []
            for position in range(lo + 1, hi + 1):
                successors.append(
                    (insert_at(sequence, position, value), tombs)
                )
            return successors
        if label.method == "remove":
            (value,) = label.args
            if value not in sequence or value in (BEGIN, END):
                return []
            return [(sequence, tombs | {value})]
        if label.method == "read":
            visible = without(sequence, tombs | {BEGIN, END})
            return [state] if label.ret == visible else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
