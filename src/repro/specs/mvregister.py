"""Sequential specification of the multi-value register (Appendix D.3/E.1).

The abstract state is a set of ``(value, id)`` pairs where identifiers are
partially ordered (version vectors in the Dynamo-style implementation).
``write(a, id)`` is admitted when ``id`` is not dominated by any identifier
already present; it inserts ``(a, id)`` and evicts every strictly-smaller
pair.  ``read() ⇒ S`` returns the current set of values — possibly more than
one, which is exactly the behaviour the paper insists a faithful MVR
specification must expose (Sec. 1, "Simpler specifications, not simplistic
specifications").

The query-update rewriting for the implementation maps
``write(a) ⇒ V'`` to the single update label ``write(a, V')`` (the fresh
version vector acts as a unique identifier).
"""

from typing import Any, FrozenSet, Iterable, Tuple

from ..core.label import Label
from ..core.rewriting import QueryUpdateRewriting, Rewritten
from ..core.spec import Role, SequentialSpec
from ..core.timestamp import VersionVector

_ROLES = {
    "write": Role.UPDATE,
    "read": Role.QUERY,
}

Pair = Tuple[Any, VersionVector]


class MVRegisterSpec(SequentialSpec):
    """``Spec(MV-Reg)``: abstract state is a set of (value, id) pairs."""

    name = "Spec(MV-Reg)"

    def initial(self) -> FrozenSet[Pair]:
        return frozenset()

    def step(self, state: FrozenSet[Pair], label: Label) -> Iterable[Any]:
        if label.method == "write":
            value, vv = label.args
            if any(vv.leq(other) for _, other in state):
                return []
            survivors = {
                (v, other) for v, other in state if not other.lt(vv)
            }
            return [frozenset(survivors | {(value, vv)})]
        if label.method == "read":
            values = frozenset(v for v, _ in state)
            return [state] if label.ret == values else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]


class MVRegisterRewriting(QueryUpdateRewriting):
    """γ for the state-based MVR: ``write(a) ⇒ V'  ↦  write(a, V')``.

    The implementation records the freshly generated version vector as the
    operation's return value; the rewriting folds it into the arguments of a
    plain update label.
    """

    def __init__(self) -> None:
        self._cache = {}

    def rewrite(self, label: Label) -> Rewritten:
        if label not in self._cache:
            if label.method == "write":
                (value,) = label.args
                vv = label.ret
                image = Label(
                    "write",
                    (value, vv),
                    ret=None,
                    ts=label.ts,
                    obj=label.obj,
                    origin=label.origin,
                )
                self._cache[label] = (image,)
            else:
                self._cache[label] = (label,)
        return self._cache[label]
