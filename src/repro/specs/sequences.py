"""Small helpers over element sequences used by the list specifications."""

from typing import Any, Sequence, Tuple


def is_subsequence(candidate: Sequence[Any], full: Sequence[Any]) -> bool:
    """True when ``candidate`` embeds into ``full`` preserving order."""
    it = iter(full)
    return all(any(element == item for item in it) for element in candidate)


def without(sequence: Sequence[Any], removed) -> Tuple[Any, ...]:
    """``l/T``: the sequence with every element of ``removed`` dropped."""
    removed_set = set(removed)
    return tuple(x for x in sequence if x not in removed_set)


def insert_after(
    sequence: Sequence[Any], anchor: Any, element: Any
) -> Tuple[Any, ...]:
    """Insert ``element`` immediately after ``anchor`` (which must occur)."""
    result = []
    inserted = False
    for item in sequence:
        result.append(item)
        if item == anchor:
            result.append(element)
            inserted = True
    if not inserted:
        raise ValueError(f"anchor {anchor!r} not in sequence")
    return tuple(result)


def insert_at(sequence: Sequence[Any], index: int, element: Any) -> Tuple[Any, ...]:
    """Insert ``element`` at position ``index``."""
    items = list(sequence)
    items.insert(index, element)
    return tuple(items)
