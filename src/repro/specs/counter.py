"""Sequential specification of a counter (Example 3.2 / Appendix B.1).

The abstract state is an integer; ``inc``/``dec`` shift it by ±1 and
``read() ⇒ k`` is admitted exactly when ``k`` equals the state.
"""

from typing import Any, Iterable

from ..core.label import Label
from ..core.spec import Role, SequentialSpec

_ROLES = {
    "inc": Role.UPDATE,
    "dec": Role.UPDATE,
    "read": Role.QUERY,
}


class CounterSpec(SequentialSpec):
    """``Spec(Counter)``."""

    name = "Spec(Counter)"

    def initial(self) -> int:
        return 0

    def step(self, state: int, label: Label) -> Iterable[Any]:
        if label.method == "inc":
            return [state + 1]
        if label.method == "dec":
            return [state - 1]
        if label.method == "read":
            return [state] if label.ret == state else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
