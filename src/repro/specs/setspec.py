"""Plain sequential Set specification (Appendix E.2's ``Spec(Set)``).

``add(a)`` and ``remove(a)`` are updates (always admitted), ``read() ⇒ A``
is a query admitted when ``A`` equals the set contents.  Used by the
LWW-Element-Set (timestamp-order) and the 2P-Set (execution-order), and as
the *standard* Set specification against which Fig. 5a shows OR-Set is not
strongly linearizable.
"""

from typing import Any, FrozenSet, Iterable

from ..core.label import Label
from ..core.spec import Role, SequentialSpec

_ROLES = {
    "add": Role.UPDATE,
    "remove": Role.UPDATE,
    "read": Role.QUERY,
}


class SetSpec(SequentialSpec):
    """``Spec(Set)``: abstract state is a set of values."""

    name = "Spec(Set)"

    def initial(self) -> FrozenSet[Any]:
        return frozenset()

    def step(self, state: FrozenSet[Any], label: Label) -> Iterable[Any]:
        if label.method == "add":
            (value,) = label.args
            return [state | {value}]
        if label.method == "remove":
            (value,) = label.args
            return [state - {value}]
        if label.method == "read":
            return [state] if label.ret == state else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
