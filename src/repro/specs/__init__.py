"""Sequential specifications of all data types studied in the paper."""

from .addat import AddAt1Spec, AddAt2Spec, AddAt3Spec
from .counter import CounterSpec
from .mvregister import MVRegisterRewriting, MVRegisterSpec
from .orset import ORSetRewriting, ORSetSpec, plain_set_view
from .register import LWWRegisterSpec
from .rga import RGASpec
from .setspec import SetSpec
from .wooki import WookiSpec

__all__ = [
    "AddAt1Spec",
    "AddAt2Spec",
    "AddAt3Spec",
    "CounterSpec",
    "LWWRegisterSpec",
    "MVRegisterRewriting",
    "MVRegisterSpec",
    "ORSetRewriting",
    "ORSetSpec",
    "plain_set_view",
    "RGASpec",
    "SetSpec",
    "WookiSpec",
]
