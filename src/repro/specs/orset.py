"""Sequential specification of the OR-Set and its rewriting (Example 3.4/3.6).

The OR-Set's ``remove`` is a *query-update*: its generator observes the
element-identifier pairs currently visible (``readIds``) and its effector
removes exactly those.  The query-update rewriting γ therefore maps:

* ``add(a) ⇒ k``        ↦ ``add(a, k)``                      (update)
* ``remove(a) ⇒ R``     ↦ ``(readIds(a) ⇒ R, remove(R))``    (query, update)
* ``read() ⇒ A``        ↦ itself                             (query)

and the specification constrains the rewritten labels over an abstract state
that is a set of ``(element, id)`` pairs.
"""

from typing import Any, Dict, FrozenSet, Iterable, Tuple

from ..core.label import Label
from ..core.rewriting import QueryUpdateRewriting, Rewritten
from ..core.spec import Role, SequentialSpec

_ROLES = {
    "add": Role.UPDATE,
    "remove": Role.UPDATE,
    "readIds": Role.QUERY,
    "read": Role.QUERY,
}

Pair = Tuple[Any, Any]


class ORSetSpec(SequentialSpec):
    """``Spec(OR-Set)`` over rewritten labels."""

    name = "Spec(OR-Set)"

    def initial(self) -> FrozenSet[Pair]:
        return frozenset()

    def step(self, state: FrozenSet[Pair], label: Label) -> Iterable[Any]:
        if label.method == "add":
            element, identifier = label.args
            pair = (element, identifier)
            if pair in state:
                return []
            return [state | {pair}]
        if label.method == "remove":
            (pairs,) = label.args
            return [state - frozenset(pairs)]
        if label.method == "readIds":
            (element,) = label.args
            expected = frozenset(p for p in state if p[0] == element)
            return [state] if label.ret == expected else []
        if label.method == "read":
            values = frozenset(e for e, _ in state)
            return [state] if label.ret == values else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]


def plain_set_view() -> QueryUpdateRewriting:
    """A forgetful relabeling onto the plain Set vocabulary.

    Maps ``add(a) ⇒ k`` to ``add(a)`` and ``remove(a) ⇒ R`` to
    ``remove(a)`` (dropping identifiers), leaving ``read`` untouched — the
    labels against which Fig. 5a's standard-linearizability argument is
    stated.
    """
    from ..core.rewriting import RewritingMap

    def forget(label: Label):
        if label.method in ("add", "remove"):
            return (
                Label(
                    label.method,
                    label.args,
                    ret=None,
                    obj=label.obj,
                    origin=label.origin,
                ),
            )
        return (label,)

    return RewritingMap(forget)


class ORSetRewriting(QueryUpdateRewriting):
    """The γ of Example 3.6."""

    def __init__(self) -> None:
        self._cache: Dict[Label, Rewritten] = {}

    def rewrite(self, label: Label) -> Rewritten:
        if label in self._cache:
            return self._cache[label]
        if label.method == "add":
            (element,) = label.args
            identifier = label.ret
            image: Rewritten = (
                Label(
                    "add",
                    (element, identifier),
                    ret=None,
                    ts=label.ts,
                    obj=label.obj,
                    origin=label.origin,
                ),
            )
        elif label.method == "remove":
            (element,) = label.args
            observed = label.ret
            query = Label(
                "readIds",
                (element,),
                ret=observed,
                ts=label.ts,
                obj=label.obj,
                origin=label.origin,
            )
            update = Label(
                "remove",
                (observed,),
                ret=None,
                obj=label.obj,
                origin=label.origin,
            )
            image = (query, update)
        else:
            image = (label,)
        self._cache[label] = image
        return image
