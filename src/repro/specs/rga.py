"""Sequential specification of RGA — a list with add-after (Example 3.3).

The abstract state is ``(l, T)``: ``l`` is the sequence of *all* values ever
inserted (including removed ones, which stay as spec-level tombstones in
``T``) and always starts with the pre-existing element ``◦``.

* ``addAfter(a, b)`` inserts the fresh value ``b`` immediately after ``a``
  (which must occur in ``l``; whether it is tombstoned is irrelevant, since
  a concurrent ``remove(a)`` may legitimately linearize earlier).
* ``remove(b)`` requires ``b ∈ l``, ``b ≠ ◦`` and adds ``b`` to ``T``.
* ``read() ⇒ s`` is admitted when ``s = l/T`` (``◦`` never reported).
"""

from typing import Any, FrozenSet, Iterable, Tuple

from ..core.label import Label
from ..core.sentinels import ROOT
from ..core.spec import Role, SequentialSpec
from .sequences import insert_after, without

_ROLES = {
    "addAfter": Role.UPDATE,
    "remove": Role.UPDATE,
    "read": Role.QUERY,
}

State = Tuple[Tuple[Any, ...], FrozenSet[Any]]


class RGASpec(SequentialSpec):
    """``Spec(RGA)``."""

    name = "Spec(RGA)"

    def initial(self) -> State:
        return ((ROOT,), frozenset())

    def step(self, state: State, label: Label) -> Iterable[State]:
        sequence, tombs = state
        if label.method == "addAfter":
            anchor, value = label.args
            if value in sequence or anchor not in sequence:
                return []
            return [(insert_after(sequence, anchor, value), tombs)]
        if label.method == "remove":
            (value,) = label.args
            if value not in sequence or value == ROOT:
                return []
            return [(sequence, tombs | {value})]
        if label.method == "read":
            visible = without(sequence, tombs | {ROOT})
            return [state] if label.ret == visible else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
