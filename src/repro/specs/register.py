"""Sequential specification of a last-writer-wins register (Appendix B.2).

``write(a)`` replaces the abstract state; ``read() ⇒ v`` is admitted when
``v`` equals the state.  The LWW-Register implementation linearizes in
timestamp order against this specification (Fig. 12).
"""

from typing import Any, Iterable, Optional

from ..core.label import Label
from ..core.spec import Role, SequentialSpec

_ROLES = {
    "write": Role.UPDATE,
    "read": Role.QUERY,
}


class LWWRegisterSpec(SequentialSpec):
    """``Spec(Reg)``: abstract state is a single value."""

    name = "Spec(Reg)"

    def __init__(self, initial_value: Optional[Any] = None) -> None:
        self._initial_value = initial_value

    def initial(self) -> Any:
        return self._initial_value

    def step(self, state: Any, label: Label) -> Iterable[Any]:
        if label.method == "write":
            (value,) = label.args
            return [value]
        if label.method == "read":
            return [state] if label.ret == state else []
        raise KeyError(label.method)

    def role(self, method: str) -> Role:
        return _ROLES[method]
