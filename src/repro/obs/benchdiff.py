"""Regression gate between two bench JSON artifacts.

``repro bench diff OLD NEW`` (and ``make bench-diff``) compares two
bench documents — ``BENCH_explore.json`` / ``BENCH_verify.json`` shapes,
arbitrarily nested dicts of sections — metric by metric, classifying
each leaf by name:

* **exact** — semantic results: configuration/state counts, orbit
  counts, verdict lists.  Any change is a regression: if the engine
  legitimately explores differently, the committed baseline must be
  regenerated in the same change, which is exactly the review signal
  the gate exists to produce.
* **time** (lower is better) — ``*seconds``, ``*_mib`` memory peaks.
  Regression when ``new > old × (1 + tolerance)``.
* **rate** (higher is better) — ``speedup``, ``configs_per_sec``,
  ``*_ratio``, ``*_reduction``.  Regression when
  ``new < old × (1 − tolerance)``.
* **info** — everything else (eviction counts, cache sizes, scope
  strings): differences are reported but never gate.

Timing tolerances default to 30% because shared CI runners are noisy;
``--tolerance`` tightens or loosens both directions.  Metrics missing
from the new document are warnings (a refactor may drop a section),
metrics missing from the old are informational.  The exit contract:
**nonzero iff at least one regression**, zero on self-compare.
"""

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default relative tolerance for time/rate metrics.
DEFAULT_TOLERANCE = 0.30

#: Leaf names compared exactly (semantic results, not costs).
_EXACT_NAMES = frozenset({
    "configurations", "distinct_configurations", "naive_configurations",
    "checks", "orbits", "verdicts", "states_visited", "unique_digests",
    "symmetry_group",
})

_EXACT_SUFFIXES = ("_configurations", "_states")

#: Higher-is-better leaf names / suffixes.
_RATE_NAMES = frozenset({
    "speedup", "configs_per_sec", "op_based_speedup", "overall_speedup",
    "modeled_speedup",
})
_RATE_SUFFIXES = ("_ratio", "_reduction", "_speedup")


def classify(name: str) -> str:
    """The comparison class for one leaf metric name."""
    if name in _EXACT_NAMES or name.endswith(_EXACT_SUFFIXES):
        return "exact"
    if name.endswith("seconds") or name.endswith("_mib"):
        return "time"
    if name in _RATE_NAMES or name.endswith(_RATE_SUFFIXES):
        return "rate"
    return "info"


@dataclass
class DiffRow:
    """One compared metric: where, what, and the verdict."""

    path: str
    kind: str
    status: str  # ok | regression | improved | changed | missing | added
    old: Any = None
    new: Any = None
    detail: str = ""

    @property
    def gating(self) -> bool:
        return self.status == "regression"


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare_leaf(path: str, name: str, old: Any, new: Any,
                  tolerance: float) -> DiffRow:
    kind = classify(name)
    if old == new:
        return DiffRow(path, kind, "ok", old, new)
    if not (_is_number(old) and _is_number(new)):
        status = "regression" if kind == "exact" else "changed"
        return DiffRow(path, kind, status, old, new, "value changed")
    if kind == "exact":
        return DiffRow(path, kind, "regression", old, new,
                       "exact metric diverged — regenerate the baseline "
                       "if intentional")
    if kind == "info":
        return DiffRow(path, kind, "changed", old, new)
    rel = (new - old) / old if old else (1.0 if new else 0.0)
    if kind == "time":
        if rel > tolerance:
            return DiffRow(path, kind, "regression", old, new,
                           f"+{rel:.0%} slower (tolerance {tolerance:.0%})")
        if rel < -tolerance:
            return DiffRow(path, kind, "improved", old, new,
                           f"{-rel:.0%} faster")
    else:  # rate: higher is better
        if rel < -tolerance:
            return DiffRow(path, kind, "regression", old, new,
                           f"{-rel:.0%} lower (tolerance {tolerance:.0%})")
        if rel > tolerance:
            return DiffRow(path, kind, "improved", old, new,
                           f"+{rel:.0%} higher")
    return DiffRow(path, kind, "ok", old, new, f"within tolerance ({rel:+.0%})")


def _walk(old: Any, new: Any, prefix: str, tolerance: float,
          rows: List[DiffRow]) -> None:
    if isinstance(old, Mapping) and isinstance(new, Mapping):
        for key in sorted(set(old) | set(new)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in new:
                rows.append(DiffRow(path, classify(str(key)), "missing",
                                    old=old[key],
                                    detail="absent from NEW"))
            elif key not in old:
                rows.append(DiffRow(path, classify(str(key)), "added",
                                    new=new[key],
                                    detail="absent from OLD"))
            else:
                _walk(old[key], new[key], path, tolerance, rows)
        return
    name = prefix.rsplit(".", 1)[-1]
    rows.append(_compare_leaf(prefix, name, old, new, tolerance))


def diff_benches(old: Mapping[str, Any], new: Mapping[str, Any],
                 tolerance: Optional[float] = None,
                 sections: Optional[List[str]] = None) -> List[DiffRow]:
    """Compare two bench documents; rows for every leaf, sorted by path.

    ``sections`` restricts the comparison to the named top-level
    sections — the gating-CI mode, where only the sections a job just
    regenerated should decide its exit code.  A requested section
    absent from NEW gates (the refresh silently dropped it); one absent
    from both documents is an error in the request itself.
    """
    if sections is not None:
        missing = [s for s in sections if s not in old and s not in new]
        if missing:
            raise ValueError(
                f"unknown bench section(s): {', '.join(missing)}"
            )
        rows: List[DiffRow] = []
        for section in sections:
            if section not in new:
                rows.append(DiffRow(
                    section, "exact", "regression", old=old.get(section),
                    detail="requested section absent from NEW",
                ))
            elif section not in old:
                rows.append(DiffRow(
                    section, "exact", "added", new=new.get(section),
                    detail="absent from OLD",
                ))
            else:
                _walk(old[section], new[section], section,
                      DEFAULT_TOLERANCE if tolerance is None else tolerance,
                      rows)
        return rows
    rows = []
    _walk(old, new, "", DEFAULT_TOLERANCE if tolerance is None else tolerance,
          rows)
    return rows


def summarize(rows: List[DiffRow]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row.status] = counts.get(row.status, 0) + 1
    return counts


def format_bench_diff(rows: List[DiffRow], old_path: str,
                      new_path: str) -> str:
    """Human-readable report; regressions first, then notable changes."""
    counts = summarize(rows)
    lines = [
        f"bench diff: {old_path} -> {new_path}",
        "  " + ", ".join(
            f"{counts.get(s, 0)} {s}"
            for s in ("ok", "improved", "changed", "added", "missing",
                      "regression")
            if counts.get(s, 0)
        ),
    ]

    def fmt(value: Any) -> str:
        if _is_number(value):
            return f"{value:g}"
        return json.dumps(value) if value is not None else "-"

    order = {"regression": 0, "missing": 1, "improved": 2, "changed": 3,
             "added": 4}
    notable = sorted(
        (row for row in rows if row.status != "ok"),
        key=lambda row: (order.get(row.status, 9), row.path),
    )
    for row in notable:
        lines.append(
            f"  [{row.status:>10}] {row.path}: "
            f"{fmt(row.old)} -> {fmt(row.new)}"
            + (f"  ({row.detail})" if row.detail else "")
        )
    regressions = counts.get("regression", 0)
    lines.append(
        f"  verdict: {'REGRESSION' if regressions else 'ok'}"
        f" ({regressions} gating)"
    )
    return "\n".join(lines)


def bench_diff_paths(old_path: str, new_path: str,
                     tolerance: Optional[float] = None,
                     sections: Optional[List[str]] = None
                     ) -> Tuple[str, int]:
    """Load, diff, and render two bench files.

    Returns ``(report, exit_code)`` with exit 1 iff a regression gates.
    ``sections`` restricts both gating and report to the named
    top-level sections.
    """
    with open(old_path, "r", encoding="utf-8") as handle:
        old = json.load(handle)
    with open(new_path, "r", encoding="utf-8") as handle:
        new = json.load(handle)
    rows = diff_benches(old, new, tolerance, sections=sections)
    report = format_bench_diff(rows, old_path, new_path)
    return report, (1 if any(row.gating for row in rows) else 0)


__all__ = [
    "DEFAULT_TOLERANCE",
    "DiffRow",
    "bench_diff_paths",
    "classify",
    "diff_benches",
    "format_bench_diff",
    "summarize",
]
