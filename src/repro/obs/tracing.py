"""Lightweight span tracing with a JSONL event exporter.

A :class:`Tracer` collects a flat stream of *events* — dicts with a
``type`` (``"span"`` or a caller-chosen event name), a wall-clock
timestamp, and arbitrary JSON-able attributes.  Spans additionally carry
wall and CPU durations (``time.perf_counter`` / ``time.process_time``),
so a pipeline stage whose wall time dwarfs its CPU time is immediately
visible as queue wait or I/O rather than compute.

Events are buffered in memory and exported as JSON Lines — one JSON
object per line, the append-friendly format the related structured-
logging systems use — either incrementally (construct with ``path``) or
in one shot (:meth:`Tracer.export`).  The schema is documented in
``docs/observability.md``.

The tracer is process-local; worker processes ship their event lists
back through the pool pipe and the coordinator extends its own stream
(see :func:`repro.obs.instrument.Instrumentation.absorb_worker`), tagging
each event with the worker's pid so per-worker load is reconstructible.
"""

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Event-stream schema identifier (recorded on every exported line).
TRACE_SCHEMA = "repro.trace/1"


class Span:
    """An open span; finished and recorded when its ``with`` block exits.

    Extra attributes may be attached mid-flight via :meth:`set`; they are
    included in the recorded event.
    """

    __slots__ = ("name", "attrs", "wall", "cpu",
                 "_tracer", "_wall0", "_cpu0", "_started")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        #: Measured durations, available after the ``with`` block exits.
        self.wall = 0.0
        self.cpu = 0.0
        self._tracer = tracer

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._started = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        event = {
            "type": "span",
            "name": self.name,
            "ts": self._started,
            "wall": self.wall,
            "cpu": self.cpu,
            "pid": os.getpid(),
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        self._tracer.record(event)


class Tracer:
    """An in-memory event stream with optional incremental JSONL output."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.events: List[Dict[str, Any]] = []
        self._path = path
        self._file = None

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one named stage."""
        return Span(self, name, attrs)

    def event(self, type_: str, **attrs: Any) -> None:
        """Record one instantaneous event."""
        record = {"type": type_, "ts": time.time(), "pid": os.getpid()}
        record.update(attrs)
        self.record(record)

    def record(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self._path is not None:
            if self._file is None:
                self._file = open(self._path, "a", encoding="utf-8")
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
            self._file.flush()

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The recorded span events, optionally filtered by name."""
        return [
            e for e in self.events
            if e["type"] == "span" and (name is None or e["name"] == name)
        ]

    def export(self, path: str) -> int:
        """Write every buffered event as JSON Lines; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"type": "meta", "schema": TRACE_SCHEMA})
                + "\n"
            )
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
