"""Structured metrics with snapshot and deterministic merge.

The verification pipeline is process-parallel (:mod:`repro.proofs.parallel`
ships frontier-split shards to worker processes), so metrics cannot be a
single shared mutable registry.  Instead each process owns a
:class:`MetricsRegistry`, and registries communicate by **snapshot**: a
plain-JSON dict that pickles through the worker pipe exactly like the
fingerprint sets do.  Merging snapshots is deterministic — every merge
operation is commutative and associative (counters sum, gauges take
``max``/``min``, histogram buckets sum element-wise) — so the union of the
workers' metrics is independent of scheduling, exactly like the union of
their fingerprint sets.

Instruments are created lazily by name + labels and carry a
``deterministic`` flag separating two contracts (see
``docs/observability.md``):

* **deterministic** instruments describe the *verification outcome*
  (distinct configurations, per-scope verdicts).  The pipeline records
  them exactly once per scope — post-merge in the parallel paths — so a
  serial run and a ``--jobs N`` run produce identical values.
* **work** instruments (the default) describe *how much machinery ran*
  (states visited, cache hits, queue wait).  Frontier-split workers
  legitimately re-explore shared subtree states, so their totals may
  exceed the serial run's; they explain cost, not results.
"""

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Snapshot schema identifier, bumped on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Default histogram bucket upper bounds (seconds-oriented, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0,
)


def instrument_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` key — labels sorted, so the key is
    identical in every process regardless of creation order."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing sum; merges by addition."""

    kind = "counter"
    __slots__ = ("name", "labels", "deterministic", "value")

    def __init__(self, name: str, labels: Mapping[str, Any],
                 deterministic: bool) -> None:
        self.name = name
        self.labels = dict(labels)
        self.deterministic = deterministic
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "deterministic": self.deterministic,
            "value": self.value,
        }


class Gauge:
    """A point-in-time value; merges by ``max`` (default) or ``min``.

    Only order-independent policies are offered — a "last write wins"
    gauge would make the merged snapshot depend on worker scheduling.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "deterministic", "policy", "value")

    def __init__(self, name: str, labels: Mapping[str, Any],
                 deterministic: bool, policy: str) -> None:
        if policy not in ("max", "min"):
            raise ValueError(f"unknown gauge policy {policy!r}")
        self.name = name
        self.labels = dict(labels)
        self.deterministic = deterministic
        self.policy = policy
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        if self.value is None:
            self.value = value
        elif self.policy == "max":
            self.value = max(self.value, value)
        else:
            self.value = min(self.value, value)

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "deterministic": self.deterministic,
            "policy": self.policy,
            "value": self.value,
        }


class Histogram:
    """Fixed-bound bucketed distribution; merges bucket-wise.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot is
    the overflow bucket.  ``sum``/``count``/``min``/``max`` ride along so
    the renderer can report a mean and range without the raw samples.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "deterministic", "bounds", "counts",
                 "sum", "count", "min", "max")

    def __init__(self, name: str, labels: Mapping[str, Any],
                 deterministic: bool,
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = dict(labels)
        self.deterministic = deterministic
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def dump(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.labels,
            "deterministic": self.deterministic,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """One process's instruments, keyed by canonical name+labels.

    ``counter``/``gauge``/``histogram`` get-or-create; re-requesting a key
    with a different kind (or gauge policy / histogram bounds) raises, so
    a metric name means one thing everywhere.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def _get(self, cls, key: str, make):
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"{key} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        instrument = make()
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, deterministic: bool = False,
                **labels: Any) -> Counter:
        key = instrument_key(name, labels)
        return self._get(
            Counter, key, lambda: Counter(name, labels, deterministic)
        )

    def gauge(self, name: str, policy: str = "max",
              deterministic: bool = False, **labels: Any) -> Gauge:
        key = instrument_key(name, labels)
        gauge = self._get(
            Gauge, key, lambda: Gauge(name, labels, deterministic, policy)
        )
        if gauge.policy != policy:
            raise TypeError(
                f"{key} already registered with policy {gauge.policy!r}"
            )
        return gauge

    def histogram(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                  deterministic: bool = False, **labels: Any) -> Histogram:
        key = instrument_key(name, labels)
        hist = self._get(
            Histogram, key,
            lambda: Histogram(name, labels, deterministic, bounds),
        )
        if hist.bounds != tuple(bounds):
            raise TypeError(f"{key} already registered with other bounds")
        return hist

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON copy of every instrument (picklable, orderable)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "instruments": {
                key: self._instruments[key].dump()
                for key in sorted(self._instruments)
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker's) into this registry.

        Deterministic: merging the same multiset of snapshots in any
        order yields identical instrument values.
        """
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema "
                f"{snapshot.get('schema')!r}"
            )
        for dumped in snapshot["instruments"].values():
            kind = dumped["kind"]
            labels = dumped["labels"]
            deterministic = dumped["deterministic"]
            if kind == "counter":
                self.counter(
                    dumped["name"], deterministic=deterministic, **labels
                ).inc(dumped["value"])
            elif kind == "gauge":
                gauge = self.gauge(
                    dumped["name"], policy=dumped["policy"],
                    deterministic=deterministic, **labels,
                )
                if dumped["value"] is not None:
                    gauge.set(dumped["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    dumped["name"], bounds=tuple(dumped["bounds"]),
                    deterministic=deterministic, **labels,
                )
                hist.counts = [
                    a + b for a, b in zip(hist.counts, dumped["counts"])
                ]
                hist.sum += dumped["sum"]
                hist.count += dumped["count"]
                for attr, pick in (("min", min), ("max", max)):
                    theirs = dumped[attr]
                    if theirs is not None:
                        ours = getattr(hist, attr)
                        setattr(
                            hist, attr,
                            theirs if ours is None else pick(ours, theirs),
                        )
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge snapshots into one (order-independent)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


def deterministic_totals(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic instruments' values, keyed canonically.

    This is the section of a metrics artifact that a serial run and a
    ``--jobs N`` run are guaranteed to agree on (pinned by
    ``tests/proofs/test_metrics_parallel.py``).

    Tolerant of older artifacts: instruments dumped before a field
    existed (pre-PR-6 snapshots) are read with defaults instead of
    raising, so ``repro stats`` can always render a historical file.
    """
    return {
        key: dumped.get("value")
        for key, dumped in snapshot.get("instruments", {}).items()
        if dumped.get("deterministic")
        and dumped.get("kind") in ("counter", "gauge")
    }


def dumps(snapshot: Mapping[str, Any]) -> str:
    """Serialize a snapshot to JSON (stable key order)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
