"""Per-worker heartbeat records for in-flight exploration.

A long ``--jobs N`` campaign is silent between launch and verdict; the
heartbeat layer makes each worker emit a small liveness record every
``interval`` seconds: configurations/sec since the last beat, current
frontier depth, steal-queue length, dedup hit rate, spill-tier size,
persistent-snapshot sharing ratio, and the task the worker is on.

The hot-path contract matches ``NULL_INSTRUMENTATION``: the engine
holds ``heartbeat = None`` and its DFS pays exactly one attribute check
when heartbeats are off.  When on, :meth:`HeartbeatEmitter.tick` is
still cheap — it counts nodes and only probes the clock every
``check_every`` ticks, emitting a record only when the interval has
elapsed.

Records travel through any ``sink(record)`` callable: a bound
``multiprocessing.Queue.put`` from a stealing worker, or
``ProgressMonitor.ingest`` directly in a serial run.  They are **work
artifacts** — rates and wall times vary run to run — and never touch
the deterministic metric totals.
"""

import os
import time
from typing import Any, Callable, Dict, Optional

#: Heartbeat JSONL schema identifier (the ``--heartbeat-log`` layout).
HEARTBEAT_SCHEMA = "repro.heartbeat/1"

#: Default seconds between records.
DEFAULT_INTERVAL = 2.0

#: Ticks between clock probes — keeps per-node cost to a counter
#: increment and a modulo on almost every DFS expansion.
TICK_CHECK = 256


def _ratio(part: float, whole: float) -> Optional[float]:
    return part / whole if whole else None


class HeartbeatEmitter:
    """Periodically summarizes one worker's live engine counters.

    The emitter observes an :class:`ExploreStats` (and optionally a
    :class:`FingerprintStore`) *by reference*: the engine mutates them,
    the emitter reads them when a beat is due.  ``queue_size`` is an
    optional zero-argument callable reporting the worker's local task
    backlog (steal queue); it may return None or raise
    ``NotImplementedError`` (``Queue.qsize`` on macOS) — both render as
    an unknown queue length.
    """

    __slots__ = ("worker", "sink", "interval", "queue_size", "_check",
                 "_stats", "_fp_store", "_task", "_ticks", "_last_beat",
                 "_last_configs")

    def __init__(self, worker: Optional[str] = None,
                 sink: Callable[[Dict[str, Any]], Any] = None,
                 interval: float = DEFAULT_INTERVAL,
                 queue_size: Optional[Callable[[], Optional[int]]] = None,
                 check_every: int = TICK_CHECK) -> None:
        self.worker = worker if worker is not None else f"pid{os.getpid()}"
        self.sink = sink if sink is not None else (lambda record: None)
        self.interval = max(
            float(DEFAULT_INTERVAL if interval is None else interval), 0.01
        )
        self.queue_size = queue_size
        self._check = max(int(check_every), 1)
        self._stats: Any = None
        self._fp_store: Any = None
        self._task: Optional[str] = None
        self._ticks = 0
        self._last_beat = time.perf_counter()
        self._last_configs = 0

    # -- wiring ---------------------------------------------------------

    def watch(self, stats: Any, fp_store: Any = None) -> None:
        """Bind the live counters the next beats should read."""
        self._stats = stats
        self._fp_store = fp_store
        self._last_configs = getattr(stats, "configurations", 0) or 0

    def begin_task(self, task: str, stats: Any = None,
                   fp_store: Any = None) -> None:
        """Note the task the worker is now on (shown on stall)."""
        self._task = task
        if stats is not None:
            self.watch(stats, fp_store)

    # -- the hot path ---------------------------------------------------

    def tick(self, depth: int) -> None:
        """Called per DFS expansion; emits when the interval elapsed."""
        self._ticks += 1
        if self._ticks % self._check:
            return
        now = time.perf_counter()
        if now - self._last_beat < self.interval:
            return
        self.emit(depth=depth, now=now)

    # -- record assembly ------------------------------------------------

    def emit(self, depth: Optional[int] = None,
             now: Optional[float] = None) -> Dict[str, Any]:
        """Build and sink one heartbeat record immediately."""
        if now is None:
            now = time.perf_counter()
        elapsed = max(now - self._last_beat, 1e-9)
        stats = self._stats
        configs = getattr(stats, "configurations", None)
        record: Dict[str, Any] = {
            "wall": time.time(),
            "worker": self.worker,
            "task": self._task,
            "configs": configs,
            "configs_per_sec": (
                (configs - self._last_configs) / elapsed
                if configs is not None else None
            ),
            "frontier": depth,
            "queue": self._queue_len(),
            "dedup_ratio": self._dedup_ratio(stats),
            "spill": self._spill_size(),
            "pstate_ratio": self._pstate_ratio(stats),
        }
        self._last_beat = now
        if configs is not None:
            self._last_configs = configs
        self.sink(record)
        return record

    def _queue_len(self) -> Optional[int]:
        if self.queue_size is None:
            return None
        try:
            return self.queue_size()
        except NotImplementedError:
            return None

    @staticmethod
    def _dedup_ratio(stats: Any) -> Optional[float]:
        if stats is None:
            return None
        visited = getattr(stats, "states_visited", 0) or 0
        deduped = getattr(stats, "states_deduped", 0) or 0
        return _ratio(deduped, visited + deduped)

    @staticmethod
    def _pstate_ratio(stats: Any) -> Optional[float]:
        if stats is None:
            return None
        copied = getattr(stats, "pstate_copied", 0) or 0
        shared = getattr(stats, "pstate_shared", 0) or 0
        return _ratio(shared, copied + shared)

    def _spill_size(self) -> Optional[int]:
        store = self._fp_store
        if store is None:
            return None
        stats = getattr(store, "stats", None)
        return getattr(stats, "spilled", None) if stats is not None else None


__all__ = [
    "DEFAULT_INTERVAL",
    "HEARTBEAT_SCHEMA",
    "HeartbeatEmitter",
    "TICK_CHECK",
]
