"""Observability: structured metrics, span tracing, run instrumentation.

The instrumentation substrate of the verification pipeline (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with plain-JSON snapshots and a deterministic merge, so parallel
  workers' metrics union exactly like their fingerprint sets.
* :mod:`repro.obs.tracing` — a lightweight span API (wall + CPU time)
  and a JSONL event exporter.
* :mod:`repro.obs.instrument` — the single :class:`Instrumentation`
  handle threaded through the pipeline, no-op by default.

This package is a leaf: it imports nothing from the rest of ``repro``,
so any layer (core, runtime, proofs, CLI) may depend on it.
"""

from .instrument import (
    ARTIFACT_SCHEMA,
    Instrumentation,
    NULL_INSTRUMENTATION,
    read_artifact,
    write_artifact,
)
from .metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    deterministic_totals,
    instrument_key,
    merge_snapshots,
)
from .tracing import TRACE_SCHEMA, Span, Tracer

__all__ = [
    "ARTIFACT_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "SNAPSHOT_SCHEMA",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "deterministic_totals",
    "instrument_key",
    "merge_snapshots",
    "read_artifact",
    "write_artifact",
]
