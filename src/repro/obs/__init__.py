"""Observability: structured metrics, span tracing, run instrumentation.

The instrumentation substrate of the verification pipeline (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with plain-JSON snapshots and a deterministic merge, so parallel
  workers' metrics union exactly like their fingerprint sets.
* :mod:`repro.obs.tracing` — a lightweight span API (wall + CPU time)
  and a JSONL event exporter.
* :mod:`repro.obs.instrument` — the single :class:`Instrumentation`
  handle threaded through the pipeline, no-op by default.
* :mod:`repro.obs.journal` — bounded structured lifecycle journal with
  a deterministic cross-worker merge (``--journal``).
* :mod:`repro.obs.heartbeat` / :mod:`repro.obs.progress` — per-worker
  liveness records and the parent-side live status renderer with stall
  detection (``--progress``).
* :mod:`repro.obs.profile` — phase-attribution timers behind the
  engine's hot loop (``repro stats --phases``).
* :mod:`repro.obs.benchdiff` — the bench regression gate
  (``repro bench diff``).

This package is a leaf: it imports nothing from the rest of ``repro``,
so any layer (core, runtime, proofs, CLI) may depend on it.
"""

from .benchdiff import bench_diff_paths, diff_benches, format_bench_diff
from .heartbeat import HEARTBEAT_SCHEMA, HeartbeatEmitter
from .instrument import (
    ARTIFACT_SCHEMA,
    Instrumentation,
    NULL_INSTRUMENTATION,
    read_artifact,
    write_artifact,
)
from .journal import JOURNAL_SCHEMA, Journal, read_journal
from .metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    deterministic_totals,
    instrument_key,
    merge_snapshots,
)
from .profile import PHASES, PhaseProfiler, phase_totals
from .progress import ProgressMonitor
from .tracing import TRACE_SCHEMA, Span, Tracer

__all__ = [
    "ARTIFACT_SCHEMA",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "HEARTBEAT_SCHEMA",
    "HeartbeatEmitter",
    "Histogram",
    "Instrumentation",
    "JOURNAL_SCHEMA",
    "Journal",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "PHASES",
    "PhaseProfiler",
    "ProgressMonitor",
    "SNAPSHOT_SCHEMA",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "bench_diff_paths",
    "deterministic_totals",
    "diff_benches",
    "format_bench_diff",
    "instrument_key",
    "merge_snapshots",
    "phase_totals",
    "read_artifact",
    "read_journal",
    "write_artifact",
]
