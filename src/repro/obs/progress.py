"""Parent-side rendering of heartbeat records: live status + stalls.

The :class:`ProgressMonitor` is the consumer half of
:mod:`repro.obs.heartbeat`: workers emit records into a channel (a
``multiprocessing.Queue`` for the stealing pool, a direct call for
serial runs), the coordinator feeds them here, and the monitor

* keeps the latest record per worker and renders a one-line fleet
  summary to ``stream`` (stderr by default) at most every ``interval``
  seconds,
* appends every record to a JSONL artifact when ``log_path`` is given
  (``--heartbeat-log``), prefixed by a schema header, and
* flags **stalls**: a worker that has sent nothing for
  ``stall_factor × interval`` seconds gets a warning naming its last
  known task — the signal that distinguishes "deep subtree" from
  "wedged worker" in a long campaign.

Everything here is presentation: no record influences metrics, results,
or the deterministic totals.
"""

import json
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, TextIO

from .heartbeat import DEFAULT_INTERVAL, HEARTBEAT_SCHEMA


def _fmt(value: Any, spec: str = "") -> str:
    if value is None:
        return "?"
    return format(value, spec)


class ProgressMonitor:
    """Aggregates heartbeat records and renders the live status line."""

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 stream: Optional[TextIO] = None,
                 log_path: Optional[str] = None,
                 stall_factor: float = 3.0,
                 clock=time.monotonic) -> None:
        self.interval = max(
            float(DEFAULT_INTERVAL if interval is None else interval), 0.01
        )
        self.stream = stream if stream is not None else sys.stderr
        self.stall_factor = stall_factor
        self.warnings: List[str] = []
        self._clock = clock
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._seen: Dict[str, float] = {}
        self._stalled: set = set()
        self._last_render = 0.0
        self._log = None
        if log_path:
            self._log = open(log_path, "w", encoding="utf-8")
            self._log.write(
                json.dumps({"schema": HEARTBEAT_SCHEMA}, sort_keys=True)
                + "\n"
            )

    # -- intake ---------------------------------------------------------

    def feed(self, record: Mapping[str, Any]) -> None:
        """Absorb one heartbeat record without rendering."""
        worker = str(record.get("worker", "?"))
        self._workers[worker] = dict(record)
        self._seen[worker] = self._clock()
        self._stalled.discard(worker)
        if self._log is not None:
            self._log.write(json.dumps(dict(record)) + "\n")

    def ingest(self, record: Mapping[str, Any]) -> None:
        """Feed + render if due — the sink for serial (in-process) runs."""
        self.feed(record)
        self.maybe_render()

    def drain(self, queue: Any) -> int:
        """Non-blocking drain of a multiprocessing heartbeat queue."""
        import queue as queue_mod
        drained = 0
        while True:
            try:
                record = queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
            self.feed(record)
            drained += 1
        return drained

    # -- rendering ------------------------------------------------------

    def maybe_render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.interval:
            return
        self._last_render = now
        self._check_stalls(now)
        line = self.status_line()
        if line:
            print(line, file=self.stream)

    def status_line(self) -> str:
        if not self._workers:
            return ""
        records = self._workers.values()
        configs = sum(r["configs"] for r in records
                      if r.get("configs") is not None)
        rates = [r["configs_per_sec"] for r in records
                 if r.get("configs_per_sec") is not None]
        frontiers = [r["frontier"] for r in records
                     if r.get("frontier") is not None]
        queues = [r["queue"] for r in records if r.get("queue") is not None]
        dedups = [r["dedup_ratio"] for r in records
                  if r.get("dedup_ratio") is not None]
        spills = sum(r["spill"] for r in records
                     if r.get("spill") is not None)
        parts = [
            f"{len(self._workers)}w",
            f"{configs} cfg",
            f"{_fmt(sum(rates) if rates else None, '.0f')} cfg/s",
            f"depth {_fmt(max(frontiers) if frontiers else None)}",
            f"queue {_fmt(sum(queues) if queues else None)}",
            f"dedup {_fmt(sum(dedups) / len(dedups) if dedups else None, '.0%')}",
        ]
        if spills:
            parts.append(f"spill {spills}")
        if self._stalled:
            parts.append(f"STALLED {len(self._stalled)}")
        return "[progress] " + " · ".join(parts)

    def _check_stalls(self, now: float) -> None:
        threshold = self.stall_factor * self.interval
        for worker, seen in self._seen.items():
            if now - seen <= threshold or worker in self._stalled:
                continue
            self._stalled.add(worker)
            task = self._workers.get(worker, {}).get("task")
            warning = (
                f"[progress] worker {worker} silent for {now - seen:.0f}s"
                f" (last task: {task if task is not None else 'unknown'})"
            )
            self.warnings.append(warning)
            print(warning, file=self.stream)

    # -- shutdown -------------------------------------------------------

    def close(self) -> None:
        """Final render and log flush."""
        if self._workers:
            self.maybe_render(force=True)
        if self._log is not None:
            self._log.close()
            self._log = None


__all__ = ["ProgressMonitor"]
