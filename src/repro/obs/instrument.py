"""The single instrumentation handle threaded through the pipeline.

Every layer of the verification stack — the exploration engine, the
exhaustive checkers, the parallel fan-out, the CLI — takes one optional
:class:`Instrumentation` object instead of separate metrics/tracing
arguments.  The default is :data:`NULL_INSTRUMENTATION`, whose ``enabled``
flag is False: hot paths pay one attribute check (``if ins.enabled:``)
and spans degrade to a reusable no-op context manager, so the disabled
overhead on ``make bench-explore`` is unmeasurable (see
``docs/observability.md`` for the measurement procedure).

The handle also owns the cross-process protocol: a worker process builds
its own enabled handle, runs, and ships :meth:`worker_payload` (metrics
snapshot + trace events) back through the pool pipe; the coordinator
:meth:`absorb_worker`-s each payload.  Deterministic counters — the ones
a serial run and a ``--jobs N`` run must agree on — are recorded exactly
once per scope by whichever layer owns the *final* merged result (see
:meth:`record_result` and :mod:`repro.proofs.parallel`).
"""

import json
import os
import time
from typing import Any, Dict, Mapping, Optional

from .journal import Journal
from .metrics import MetricsRegistry, deterministic_totals, instrument_key
from .profile import PhaseProfiler
from .tracing import Span, Tracer

#: Artifact schema identifier (the ``--metrics`` file layout).
ARTIFACT_SCHEMA = "repro.metrics.artifact/1"


class _NullSpan:
    """Reusable no-op span for disabled instrumentation."""

    __slots__ = ()
    wall = 0.0
    cpu = 0.0

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _MetricSpan(Span):
    """A tracer span that also feeds the ``span.seconds`` histogram."""

    __slots__ = ("_registry",)

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any],
                 registry: MetricsRegistry) -> None:
        super().__init__(tracer, name, attrs)
        self._registry = registry

    def __exit__(self, exc_type, exc, tb) -> None:
        super().__exit__(exc_type, exc, tb)
        # Label key is ``span`` (not ``name``): label kwargs must not
        # collide with the registry methods' positional parameters.
        self._registry.histogram("span.seconds", span=self.name).observe(
            self.wall
        )


class Instrumentation:
    """Metrics + tracing behind one on/off switch.

    ``trace_checks=True`` additionally emits one trace event per explored
    configuration's check verdict (the per-execution event stream of the
    JSONL exporter) — off by default because exhaustive runs visit
    thousands of configurations.
    """

    __slots__ = ("metrics", "tracer", "trace_checks", "enabled", "journal",
                 "profile")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 trace_checks: bool = False,
                 journal: Optional[Journal] = None,
                 profile: Optional[PhaseProfiler] = None) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.trace_checks = trace_checks and tracer is not None
        self.journal = journal
        self.profile = profile
        self.enabled = (
            metrics is not None or tracer is not None or journal is not None
        )

    @classmethod
    def on(cls, trace_path: Optional[str] = None,
           trace_checks: bool = False,
           journal: Optional[Journal] = None,
           profile: Optional[PhaseProfiler] = None) -> "Instrumentation":
        """A fully enabled handle (fresh registry + tracer + journal +
        phase profiler — the observatory is on whenever metrics are)."""
        return cls(
            MetricsRegistry(), Tracer(trace_path), trace_checks,
            journal=journal if journal is not None else Journal(),
            profile=profile if profile is not None else PhaseProfiler(),
        )

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A timing context manager; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        if self.tracer is None:
            tracer = Tracer()  # metrics-only handle: keep the histogram
            return _MetricSpan(tracer, name, attrs, self.metrics)
        if self.metrics is None:
            return self.tracer.span(name, **attrs)
        return _MetricSpan(self.tracer, name, attrs, self.metrics)

    def event(self, type_: str, **attrs: Any) -> None:
        if self.tracer is not None:
            self.tracer.event(type_, **attrs)

    def journal_event(self, kind: str, /, **fields: Any) -> None:
        """Record one lifecycle event; no-op without a journal."""
        if self.journal is not None:
            self.journal.record(kind, **fields)

    def _fold_profile(self) -> None:
        """Fold accumulated phase timings into ``profile.*`` work
        counters (then reset, so repeated folds never double-count).

        Riding on the metrics layer buys the cross-worker merge and the
        artifact round trip without a second protocol.
        """
        profile = self.profile
        if profile is None or self.metrics is None or not profile:
            return
        m = self.metrics
        for phase, seconds in profile.seconds.items():
            m.counter("profile.seconds", phase=phase).inc(seconds)
            m.counter("profile.regions", phase=phase).inc(
                profile.counts.get(phase, 0)
            )
        profile.reset()

    # -- pipeline recording hooks --------------------------------------

    def record_explore(self, stats: Any, kind: str,
                       entry: Optional[str] = None) -> None:
        """Fold one exploration run's :class:`ExploreStats` into metrics.

        All ``explore.*`` instruments are *work* metrics: frontier-split
        workers re-expand subtree-shared states, so their totals may
        exceed a serial run's.
        """
        if self.metrics is None:
            return
        m = self.metrics
        labels = {"kind": kind}
        if entry is not None:
            labels["entry"] = entry
        m.counter("explore.runs", **labels).inc()
        m.counter("explore.configurations", **labels).inc(
            stats.configurations
        )
        m.counter("explore.states_visited", **labels).inc(
            stats.states_visited
        )
        m.counter("explore.states_deduped", **labels).inc(
            stats.states_deduped
        )
        m.counter("explore.branches_pruned", **labels).inc(
            stats.branches_pruned
        )
        m.counter("explore.commute_checks", **labels).inc(
            stats.commute_checks
        )
        m.counter("explore.snapshots", **labels).inc(stats.snapshots)
        m.counter("explore.deepcopies", **labels).inc(stats.deepcopies)
        m.counter("explore.wall_seconds", **labels).inc(stats.wall_time)
        m.gauge("explore.peak_frontier", policy="max", **labels).set(
            stats.peak_frontier
        )
        m.gauge("explore.symmetry.group", policy="max", **labels).set(
            stats.symmetry_group
        )
        m.gauge("explore.symmetry.pinned", policy="max", **labels).set(
            stats.pinned_replicas
        )
        m.gauge("explore.state_fp_cache", policy="max", **labels).set(
            stats.state_fp_cache_peak
        )
        if stats.capped:
            m.counter("explore.capped", **labels).inc()
        if stats.steal_splits:
            m.counter("explore.steal.splits", **labels).inc(
                stats.steal_splits
            )
        if stats.steal_spawned:
            m.counter("explore.steal.spawned", **labels).inc(
                stats.steal_spawned
            )
        if stats.dpor_races:
            m.counter("explore.dpor.races", **labels).inc(stats.dpor_races)
        if stats.dpor_redundant_avoided:
            m.counter("explore.dpor.redundant_avoided", **labels).inc(
                stats.dpor_redundant_avoided
            )
        if stats.dpor_deferred:
            m.counter("explore.dpor.deferred", **labels).inc(
                stats.dpor_deferred
            )
        if stats.dpor_full_expansions:
            m.counter("explore.dpor.full_expansions", **labels).inc(
                stats.dpor_full_expansions
            )
        if stats.dpor_wakeup_branches:
            m.counter("explore.dpor.wakeup_branches", **labels).inc(
                stats.dpor_wakeup_branches
            )
        if stats.dpor_wakeup_fallbacks:
            m.counter("explore.dpor.wakeup_fallbacks", **labels).inc(
                stats.dpor_wakeup_fallbacks
            )
        if stats.dpor_patch_cuts:
            m.counter("explore.dpor.patch_cuts", **labels).inc(
                stats.dpor_patch_cuts
            )
        if stats.dpor_vacuity_drops:
            m.counter("explore.dpor.vacuity_drops", **labels).inc(
                stats.dpor_vacuity_drops
            )
        if stats.dpor_deferred_seen:
            # Peak LRU occupancy, not an event count: take the max across
            # workers rather than summing.
            m.gauge(
                "explore.dpor.deferred_seen", policy="max", **labels
            ).set(stats.dpor_deferred_seen)
        if stats.pstate_copied:
            m.counter("explore.pstate.nodes_copied", **labels).inc(
                stats.pstate_copied
            )
        if stats.pstate_shared:
            m.counter("explore.pstate.nodes_shared", **labels).inc(
                stats.pstate_shared
            )

    def record_steal(self, stats: Any) -> None:
        """Record one work-stealing pool run's scheduler counters.

        All ``explore.steal.*`` instruments are *work* metrics: how the
        dynamic scheduler carved the search into tasks is load- and
        timing-dependent, so totals vary run-to-run even though the
        merged verification result does not.
        """
        if self.metrics is None:
            return
        m = self.metrics
        m.gauge("explore.steal.workers", policy="max").set(stats.workers)
        m.counter("explore.steal.tasks").inc(stats.tasks)
        m.counter("explore.steal.seed_tasks").inc(stats.seed_tasks)
        m.counter("explore.steal.stolen_tasks").inc(stats.stolen_tasks)
        m.counter("explore.steal.idle_seconds").inc(stats.idle_seconds)
        m.counter("explore.steal.wall_seconds").inc(stats.wall_time)

    def record_fp_store(self, stats: Any,
                        entry: Optional[str] = None) -> None:
        """Record one :class:`FingerprintStore`'s counters (work metrics)."""
        if self.metrics is None:
            return
        m = self.metrics
        labels = {"entry": entry} if entry is not None else {}
        m.counter("explore.fp_store.lookups", **labels).inc(stats.lookups)
        m.counter("explore.fp_store.hits", **labels).inc(stats.hits)
        m.counter("explore.fp_store.unique", **labels).inc(stats.unique)
        m.counter("explore.fp_store.evictions", **labels).inc(
            stats.evictions
        )
        m.counter("explore.fp_store.spilled", **labels).inc(stats.spilled)
        m.counter("explore.fp_store.unchecked_hits", **labels).inc(
            stats.unchecked_hits
        )

    def record_check(self, stats: Any, entry: Optional[str] = None) -> None:
        """Fold one :class:`RACheckContext`'s :class:`CheckStats` in."""
        if self.metrics is None:
            return
        m = self.metrics
        labels = {"entry": entry} if entry is not None else {}
        m.counter("check.checks", **labels).inc(stats.checks)
        m.counter("check.verdict_hits", **labels).inc(stats.verdict_hits)
        m.counter("check.unkeyed", **labels).inc(stats.unkeyed)
        m.counter("check.frontier_hits", **labels).inc(stats.frontier_hits)
        m.counter("check.frontier_misses", **labels).inc(
            stats.frontier_misses
        )
        m.counter("check.frontier_unattached", **labels).inc(
            stats.frontier_unattached
        )
        m.gauge("check.frontier_nodes", policy="max", **labels).set(
            stats.frontier_nodes
        )
        for cond, seconds in stats.cond_seconds.items():
            m.counter("check.cond_seconds", cond=cond, **labels).inc(seconds)
        for cond, count in stats.failed_conditions.items():
            m.counter("check.failed", cond=cond, **labels).inc(count)

    def record_result(self, entry: str, result: Any) -> None:
        """Record a scope's *final* outcome (deterministic counters).

        Must be called exactly once per verified scope, on the merged
        result in the parallel paths — never on a frontier-split branch
        shard — so serial and ``--jobs N`` totals coincide.
        """
        if self.metrics is None:
            return
        m = self.metrics
        m.counter("verify.scopes", deterministic=True).inc()
        m.counter("verify.configurations", deterministic=True,
                  entry=entry).inc(result.configurations)
        m.gauge("verify.ok", policy="min", deterministic=True,
                entry=entry).set(1 if result.ok else 0)

    def record_compose(self, result: Any) -> None:
        """Record one compositional store verification (deterministic).

        Called once per :func:`repro.proofs.compositional.verify_store`
        run, on the final :class:`StoreResult` — per-object scope results
        flow through :meth:`record_result` as usual, so ``compose.*`` only
        carries the composition layer itself (object count, side-condition
        sweep size, witness-merge failures, verdict).
        """
        if self.metrics is None:
            return
        m = self.metrics
        labels = {"store": result.store, "mode": result.mode}
        m.counter("compose.stores", deterministic=True, **labels).inc()
        m.counter("compose.objects", deterministic=True, **labels).inc(
            len(result.objects)
        )
        m.counter("compose.side_condition_checks", deterministic=True,
                  **labels).inc(result.side_condition_checks)
        m.counter("compose.combine_failures", deterministic=True,
                  **labels).inc(result.combine_failures)
        m.gauge("compose.ok", policy="min", deterministic=True,
                **labels).set(1 if result.ok else 0)

    def record_chaos(self, report: Any) -> None:
        """Record one fault-injection :class:`ChaosReport`.

        Chaos runs are deterministic in ``(entry, seed, plan)`` and have
        no parallel path, so every ``chaos.*`` instrument is reproducible
        run-to-run; ``chaos.ok`` (min-gauge) is the soak verdict.
        """
        if self.metrics is None:
            return
        m = self.metrics
        labels = {"entry": report.entry_name, "plan": report.plan.name}
        m.counter("chaos.runs", **labels).inc()
        m.counter("chaos.operations", **labels).inc(report.operations)
        m.gauge("chaos.ok", policy="min", **labels).set(
            1 if report.ok else 0
        )
        for kind, count in sorted(report.trace.event_counts().items()):
            m.counter("chaos.events", kind=kind, **labels).inc(count)

    def record_verification(self, result: Any) -> None:
        """Record one randomized-harness :class:`VerificationResult`.

        Seeds are fixed, so executions/operations totals are identical
        between the serial and ``--jobs N`` table paths — deterministic.
        """
        if self.metrics is None:
            return
        m = self.metrics
        m.counter("verify.executions", deterministic=True,
                  entry=result.name).inc(result.executions)
        m.counter("verify.operations", deterministic=True,
                  entry=result.name).inc(result.operations)
        m.gauge("verify.ok", policy="min", deterministic=True,
                entry=result.name).set(1 if result.verified else 0)

    # -- cross-process protocol ----------------------------------------

    def worker_payload(self) -> Dict[str, Any]:
        """What a worker ships back: snapshot + events + identity."""
        self._fold_profile()
        return {
            "pid": os.getpid(),
            "metrics": (
                self.metrics.snapshot() if self.metrics is not None else None
            ),
            "events": list(self.tracer.events) if self.tracer else [],
            "journal": (
                self.journal.payload() if self.journal is not None else None
            ),
        }

    def absorb_worker(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Merge one worker payload into this (coordinator) handle."""
        if payload is None or not self.enabled:
            return
        if self.metrics is not None and payload.get("metrics") is not None:
            self.metrics.merge_snapshot(payload["metrics"])
        if self.tracer is not None:
            self.tracer.events.extend(payload.get("events", ()))
        if self.journal is not None:
            self.journal.absorb(payload.get("journal"))

    # -- artifacts ------------------------------------------------------

    def artifact(self, command: str,
                 meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """The ``--metrics`` JSON artifact: snapshot + events + context.

        ``counters`` repeats the deterministic totals at the top level —
        the section whose values are guaranteed identical between serial
        and parallel runs of the same scopes.
        """
        self._fold_profile()
        snapshot = (
            self.metrics.snapshot() if self.metrics is not None
            else {"schema": None, "instruments": {}}
        )
        return {
            "schema": ARTIFACT_SCHEMA,
            "command": command,
            "generated_at": time.time(),
            "meta": dict(meta) if meta else {},
            "counters": deterministic_totals(snapshot)
            if snapshot["instruments"] else {},
            "metrics": snapshot,
            "events": list(self.tracer.events) if self.tracer else [],
        }


#: The shared disabled handle — the default everywhere.
NULL_INSTRUMENTATION = Instrumentation()


def write_artifact(path: str, instrumentation: Instrumentation,
                   command: str,
                   meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Serialize :meth:`Instrumentation.artifact` to ``path``.

    ``.jsonl`` paths get the event-stream format (one JSON object per
    line: a header, every instrument, every trace event); anything else
    gets the single-document JSON artifact.
    """
    artifact = instrumentation.artifact(command, meta)
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".jsonl"):
            header = {
                k: artifact[k]
                for k in ("schema", "command", "generated_at", "meta")
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for key, dumped in artifact["metrics"]["instruments"].items():
                record = {"type": "instrument", "key": key}
                record.update(dumped)
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            for event in artifact["events"]:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        else:
            handle.write(json.dumps(artifact, indent=2, sort_keys=True))
            handle.write("\n")
    return artifact


def read_artifact(path: str) -> Dict[str, Any]:
    """Load an artifact written by :func:`write_artifact` (either format)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".jsonl"):
        lines = [json.loads(line) for line in text.splitlines() if line]
        header = lines[0] if lines else {}
        instruments = {}
        events = []
        for record in lines[1:]:
            if record.get("type") == "instrument":
                key = record.pop("key")
                record.pop("type")
                instruments[key] = record
            else:
                events.append(record)
        snapshot = {"schema": "repro.metrics/1", "instruments": instruments}
        return {
            "schema": header.get("schema", ARTIFACT_SCHEMA),
            "command": header.get("command", "?"),
            "generated_at": header.get("generated_at"),
            "meta": header.get("meta", {}),
            "counters": deterministic_totals(snapshot),
            "metrics": snapshot,
            "events": events,
        }
    artifact = json.loads(text)
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: not a repro metrics artifact "
            f"(schema {artifact.get('schema')!r})"
        )
    return artifact


__all__ = [
    "ARTIFACT_SCHEMA",
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "instrument_key",
    "read_artifact",
    "write_artifact",
]
