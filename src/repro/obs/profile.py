"""Phase-attribution profiler for the exploration engine.

``span.seconds`` (tracing) answers "how long did this scope take"; the
phase profiler answers "*where inside the engine* did that time go" —
snapshot/restore work, happens-before maintenance, commutativity
probes, spec replay + RA check, fingerprint/canonicalization — without
a sampling profiler and without touching the hot loop when disabled
(the engine holds ``profile = None`` and the DFS pays one attribute
check, the ``NULL_INSTRUMENTATION`` pattern).

A :class:`PhaseProfiler` is two plain dicts (``seconds`` and ``counts``
per phase) fed by :meth:`add`.  The engine routes its domain calls
through a timing proxy when a profiler is attached; the checker times
its check/convergence work explicitly.  :class:`Instrumentation` folds
the dicts into ``profile.seconds{phase=}`` / ``profile.regions{phase=}``
work counters at payload/artifact time, so cross-worker merging and the
artifact round trip come for free from the metrics layer, and
``repro stats --phases`` renders the result.

Phase totals are **work metrics**: they measure machinery cost and vary
with load, so they never enter ``deterministic_totals``.
"""

import time
from typing import Dict, Optional, Tuple

#: The engine phases, in rendering order.  ``(other)`` is not a phase —
#: the renderer derives it as engine wall minus the attributed sum.
PHASES: Tuple[str, ...] = (
    "snapshot",    # copy-on-write push of the configuration
    "restore",     # pop back to the parent configuration
    "apply",       # executing one transition against the domain
    "hb",          # happens-before vector maintenance (source-DPOR)
    "race",        # race reversal planning + wakeup-tree maintenance
    "commute",     # commutativity/independence probes (sleep sets)
    "fingerprint", # configuration fingerprint + orbit canonicalization
    "check",       # spec replay + RA-linearizability check (Def. 3.5)
    "convergence", # strong-convergence oracle on quiescent configs
)


class PhaseProfiler:
    """Accumulates wall seconds and region counts per phase name."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def __bool__(self) -> bool:
        return bool(self.counts)

    def add(self, phase: str, seconds: float, regions: int = 1) -> None:
        """Attribute ``seconds`` of wall time to ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + regions

    def phase(self, name: str) -> "_Region":
        """A context manager for coarse (non-hot-loop) regions."""
        return _Region(self, name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {"seconds": dict(self.seconds), "counts": dict(self.counts)}

    def merge(self, other: "PhaseProfiler") -> None:
        for phase, seconds in other.seconds.items():
            self.add(phase, seconds, other.counts.get(phase, 0))

    def reset(self) -> None:
        self.seconds.clear()
        self.counts.clear()

    def total(self) -> float:
        return sum(self.seconds.values())


class _Region:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: PhaseProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Region":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


def phase_totals(instruments: Dict[str, dict]) -> Dict[str, float]:
    """Extract ``profile.seconds`` per-phase totals from a snapshot's
    instruments dict (as folded by ``Instrumentation``)."""
    totals: Dict[str, float] = {}
    for dumped in instruments.values():
        if dumped.get("name") != "profile.seconds":
            continue
        phase = dumped.get("labels", {}).get("phase")
        if phase is None:
            continue
        totals[phase] = totals.get(phase, 0.0) + (dumped.get("value") or 0.0)
    return totals


def maybe_profiler(instrumentation) -> Optional[PhaseProfiler]:
    """The handle's profiler, or None for disabled handles."""
    return getattr(instrumentation, "profile", None)


__all__ = [
    "PHASES",
    "PhaseProfiler",
    "maybe_profiler",
    "phase_totals",
]
