"""Bounded structured lifecycle journal.

Metrics (:mod:`repro.obs.metrics`) answer "how much happened"; the
journal answers "what happened, and when".  It records discrete
lifecycle events — scope start/end, work-stealing splits and claims,
spill-tier promotions, DPOR race reversals, budget exhaustion, chaos
crashes and replays — as plain dicts with a **deterministic field
order**: every event starts ``wall, worker, seq, kind`` and then its
extra fields in sorted order, so two dumps of the same run are
byte-identical and diffs stay readable.

The journal is bounded (drop-oldest, with a ``dropped`` counter) so a
week-long soak cannot exhaust memory, and it merges across workers the
same way metrics snapshots do: each worker ships its events in
:meth:`payload`, the coordinator :meth:`absorb`-s them, and
:meth:`merged` orders the union by ``(wall, worker, seq)`` — a total
order that does not depend on which worker's payload arrived first.

Journal events are **work artifacts**: wall times and worker ids vary
run to run, so nothing here participates in ``deterministic_totals``.
"""

import json
import os
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Journal dump schema identifier (the ``--journal`` file layout).
JOURNAL_SCHEMA = "repro.journal/1"

#: Default event bound per journal (drop-oldest beyond this).
DEFAULT_LIMIT = 4096

#: The lifecycle event kinds the pipeline emits (informative, not
#: enforced — domains may add their own under a dotted prefix).
EVENT_KINDS = (
    "scope.start",
    "scope.end",
    "steal.split",
    "steal.claim",
    "spill.promote",
    "dpor.reversal",
    "budget.exhausted",
    "chaos.crash",
    "chaos.replay",
)


class Journal:
    """One process's bounded event log.

    ``worker`` names the emitting process in merged output; it defaults
    to ``pid<os.getpid()>`` so coordinator and workers are always
    distinguishable even when the caller does not label them.
    """

    __slots__ = ("worker", "limit", "dropped", "_seq", "_events")

    def __init__(self, worker: Optional[str] = None,
                 limit: int = DEFAULT_LIMIT) -> None:
        if limit <= 0:
            raise ValueError("journal limit must be positive")
        self.worker = worker if worker is not None else f"pid{os.getpid()}"
        self.limit = limit
        self.dropped = 0
        self._seq = 0
        self._events: deque = deque()

    def __len__(self) -> int:
        return len(self._events)

    def record(self, kind: str, /, **fields: Any) -> Dict[str, Any]:
        """Append one event; extra fields land in sorted order.

        ``kind`` is positional-only so a field may also be named
        ``kind`` — it would silently collide with the event's own kind
        slot, so :meth:`_append` rejects it.
        """
        if "kind" in fields or "wall" in fields or "seq" in fields:
            raise ValueError("kind/wall/seq are reserved event fields")
        self._seq += 1
        event: Dict[str, Any] = {
            "wall": time.time(),
            "worker": self.worker,
            "seq": self._seq,
            "kind": kind,
        }
        for key in sorted(fields):
            event[key] = fields[key]
        self._append(event)
        return event

    def _append(self, event: Mapping[str, Any]) -> None:
        if len(self._events) >= self.limit:
            self._events.popleft()
            self.dropped += 1
        self._events.append(dict(event))

    # -- cross-process protocol ----------------------------------------

    def payload(self) -> Dict[str, Any]:
        """What a worker ships back through the pool pipe."""
        return {
            "worker": self.worker,
            "dropped": self.dropped,
            "events": self.events(),
        }

    def absorb(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Merge one worker's :meth:`payload` into this journal."""
        if payload is None:
            return
        self.dropped += payload.get("dropped", 0)
        for event in payload.get("events", ()):
            self._append(event)

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events in insertion order."""
        return [dict(event) for event in self._events]

    def merged(self) -> List[Dict[str, Any]]:
        """Events in the canonical cross-worker order.

        Keyed ``(wall, worker, seq)``: wall clock first (the only clock
        comparable across processes), worker name to break simultaneous
        ties deterministically, per-worker sequence number last.
        """
        return sorted(
            self.events(),
            key=lambda e: (e.get("wall", 0.0), str(e.get("worker", "")),
                           e.get("seq", 0)),
        )

    # -- dump -----------------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the merged journal as JSON Lines with a schema header."""
        events = self.merged()
        header = {
            "schema": JOURNAL_SCHEMA,
            "events": len(events),
            "dropped": self.dropped,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                # No sort_keys: the canonical insertion order
                # (wall, worker, seq, kind, sorted extras) is the format.
                handle.write(json.dumps(event) + "\n")


def read_journal(path: str) -> Dict[str, Any]:
    """Load a :meth:`Journal.dump` file back into header + events."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("schema") != JOURNAL_SCHEMA:
        raise ValueError(f"{path}: not a repro journal dump")
    return {"header": lines[0], "events": lines[1:]}


def merge_journals(journals: Iterable[Journal]) -> List[Dict[str, Any]]:
    """Order the union of several journals' events canonically."""
    merged = Journal(worker="merge", limit=10 ** 9)
    for journal in journals:
        merged.absorb(journal.payload())
    return merged.merged()


__all__ = [
    "DEFAULT_LIMIT",
    "EVENT_KINDS",
    "JOURNAL_SCHEMA",
    "Journal",
    "merge_journals",
    "read_journal",
]
