"""Executable reconstructions of the paper's figures and examples."""

from .figures import (
    Scenario,
    fig2_rga_conflict,
    fig5a_orset,
    fig8_rga,
    fig9_two_orsets,
    fig10_two_rgas,
    fig14_addat,
    section33_programs,
)

__all__ = [
    "Scenario",
    "fig10_two_rgas",
    "fig14_addat",
    "fig2_rga_conflict",
    "fig5a_orset",
    "fig8_rga",
    "fig9_two_orsets",
    "section33_programs",
]
