"""Executable reconstructions of the paper's figures.

Each function drives the operational semantics to produce exactly the
execution a figure depicts (adapted to Lamport timestamps) and returns the
finished system plus the labels the figure names.  Tests, benchmarks, and
examples all share these builders.
"""

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..core.history import History
from ..core.label import Label
from ..core.sentinels import ROOT
from ..crdts.opbased import OpORSet, OpRGA, OpRGAAddAt
from ..runtime.composition import composed, composed_ts
from ..runtime.system import OpBasedSystem


@dataclass
class Scenario:
    """A finished execution plus the figure's named labels."""

    system: OpBasedSystem
    labels: Dict[str, Label]

    @property
    def history(self) -> History:
        return self.system.history()


def fig2_rga_conflict() -> Scenario:
    """Fig. 2: RGA conflict resolution.

    Starting from ``a·b·e·f``-style state (here ``a·b·c``), two replicas
    concurrently ``addAfter(c, d)`` and ``addAfter(c, e)``; after mutual
    propagation both converge (higher timestamp first), and ``remove(d)``
    tombstones ``d``.
    """
    system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
    la = system.invoke("r1", "addAfter", (ROOT, "a"))
    lc = system.invoke("r1", "addAfter", ("a", "c"))   # tc < tb, as in Fig. 2
    lb = system.invoke("r1", "addAfter", ("a", "b"))
    system.deliver_all()
    ld = system.invoke("r1", "addAfter", ("c", "d"))
    le = system.invoke("r2", "addAfter", ("c", "e"))
    system.deliver_all()
    lrm = system.invoke("r2", "remove", ("d",))
    system.deliver_all()
    read = system.invoke("r1", "read")
    system.deliver_all()
    return Scenario(system, {
        "addAfter(◦,a)": la, "addAfter(a,b)": lb, "addAfter(a,c)": lc,
        "addAfter(c,d)": ld, "addAfter(c,e)": le, "remove(d)": lrm,
        "read": read,
    })


def fig5a_orset() -> Scenario:
    """Fig. 5a: the OR-Set execution that defeats standard linearizability.

    Each replica adds ``a`` and ``b`` and removes one element having seen
    only its own adds; after full propagation both reads return ``{a, b}``
    — impossible for any whole-prefix linearization of a sequential Set.
    """
    system = OpBasedSystem(OpORSet(), replicas=("r1", "r2"))
    a1 = system.invoke("r1", "add", ("a",))
    b1 = system.invoke("r1", "add", ("b",))
    ra = system.invoke("r1", "remove", ("a",))
    b2 = system.invoke("r2", "add", ("b",))
    a2 = system.invoke("r2", "add", ("a",))
    rb = system.invoke("r2", "remove", ("b",))
    system.deliver_all()
    read1 = system.invoke("r1", "read")
    read2 = system.invoke("r2", "read")
    system.deliver_all()
    return Scenario(system, {
        "add(a)@r1": a1, "add(b)@r1": b1, "remove(a)": ra,
        "add(b)@r2": b2, "add(a)@r2": a2, "remove(b)": rb,
        "read@r1": read1, "read@r2": read2,
    })


def fig8_rga() -> Scenario:
    """Fig. 8: the RGA execution separating EO from TO linearizations.

    ``addAfter(◦,b)`` executes first (at r2) but draws the *larger*
    timestamp; a read at r1 seeing both inserts returns ``b·a``, which only
    the timestamp-order linearization explains.
    """
    system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
    lb = system.invoke("r2", "addAfter", (ROOT, "b"))   # ℓ2, ts (1,r2)
    la = system.invoke("r1", "addAfter", (ROOT, "a"))   # ℓ1, ts (1,r1) < ℓ2
    system.deliver("r1", lb)
    read = system.invoke("r1", "read")                   # ℓ4 ⇒ b·a
    lc = system.invoke("r2", "addAfter", ("b", "c"))     # ℓ3, ts (2,r2)
    system.deliver_all()
    return Scenario(system, {
        "ℓ1": la, "ℓ2": lb, "ℓ3": lc, "ℓ4": read,
    })


def fig9_two_orsets() -> Scenario:
    """Fig. 9: two OR-Sets whose per-object linearizations need not merge.

    No deliveries: each operation is visible only at its origin, so
    visibility is the two program orders.
    """
    system = composed({"o1": OpORSet(), "o2": OpORSet()},
                      replicas=("r1", "r2"))
    ld = system.invoke("r1", "add", ("d",), obj="o1")
    la = system.invoke("r1", "add", ("a",), obj="o2")
    lb = system.invoke("r2", "add", ("b",), obj="o2")
    lc = system.invoke("r2", "add", ("c",), obj="o1")
    return Scenario(system, {
        "o1.add(d)": ld, "o2.add(a)": la, "o2.add(b)": lb, "o1.add(c)": lc,
    })


def fig10_two_rgas(shared_timestamps: bool) -> Scenario:
    """Fig. 10: two RGAs under ⊗ (independent clocks) or ⊗ts (shared).

    Under ⊗, the interleaved timestamp pattern ``ts1<ts2<ts3`` (o2) and
    ``ts'1<ts'2`` (o1) arises with ``e`` visible to ``a``, and the composed
    history is *not* RA-linearizable.  Under ⊗ts the same action sequence
    yields coherent timestamps and the history is RA-linearizable.
    """
    make = composed_ts if shared_timestamps else composed
    system = make({"o1": OpRGA(), "o2": OpRGA()}, replicas=("r1", "r2", "r3"))
    lc = system.invoke("r1", "addAfter", (ROOT, "c"), obj="o2")   # ts1
    lb = system.invoke("r2", "addAfter", (ROOT, "b"), obj="o1")   # ts'2
    le = system.invoke("r3", "addAfter", (ROOT, "e"), obj="o2")   # ts3
    system.deliver("r1", le)  # e becomes visible before a is issued
    la = system.invoke("r1", "addAfter", (ROOT, "a"), obj="o1")   # ts'1
    ld = system.invoke("r2", "addAfter", (ROOT, "d"), obj="o2")   # ts2
    system.deliver_all()
    read_o2 = system.invoke("r3", "read", (), obj="o2")
    read_o1 = system.invoke("r3", "read", (), obj="o1")
    system.deliver_all()
    return Scenario(system, {
        "o2.addAfter(◦,c)": lc, "o1.addAfter(◦,b)": lb,
        "o2.addAfter(◦,e)": le, "o1.addAfter(◦,a)": la,
        "o2.addAfter(◦,d)": ld,
        "o2.read": read_o2, "o1.read": read_o1,
    })


def fig14_addat() -> Scenario:
    """Fig. 14 / Lemma C.1: the ``addAt`` history with read ``d·e·c``.

    Visibility: ``addAt(a,0) ≺ addAt(b,0)`` (r1), then r2 runs
    ``remove(b); addAt(c,1)`` and r3 runs ``addAt(d,0); remove(a);
    addAt(e,2)`` — exactly the partial order whose ten linear extensions
    Lemma C.1 enumerates.  Not RA-linearizable w.r.t. Spec(addAt1) or
    Spec(addAt2); RA-linearizable w.r.t. Spec(addAt3) (Lemma C.2).
    """
    system = OpBasedSystem(OpRGAAddAt(), replicas=("r1", "r2", "r3"))
    la = system.invoke("r1", "addAt", ("a", 0))
    lb = system.invoke("r1", "addAt", ("b", 0))
    for label in (la, lb):
        system.deliver("r2", label)
        system.deliver("r3", label)
    lrb = system.invoke("r2", "remove", ("b",))
    lc = system.invoke("r2", "addAt", ("c", 1))
    ld = system.invoke("r3", "addAt", ("d", 0))
    lra = system.invoke("r3", "remove", ("a",))
    le = system.invoke("r3", "addAt", ("e", 2))
    system.deliver_all()
    read = system.invoke("r2", "read")
    system.deliver_all()
    return Scenario(system, {
        "addAt(a,0)": la, "addAt(b,0)": lb, "remove(b)": lrb,
        "addAt(c,1)": lc, "addAt(d,0)": ld, "remove(a)": lra,
        "addAt(e,2)": le, "read": read,
    })


def section33_programs() -> Tuple[Dict[str, Any], Any]:
    """Sec. 3.3: the client programs and post-condition ``a∈X ⇒ a∈Y``."""
    programs = {
        "r1": [("add", ("a",)), ("remove", ("a",)), ("read", ())],
        "r2": [("add", ("a",)), ("read", ())],
    }

    def postcondition(returns: Dict[str, Any]) -> bool:
        x = returns["r1"][2]
        y = returns["r2"][1]
        return ("a" not in x) or ("a" in y)

    return programs, postcondition
