"""Checker scaling and design ablations (our measurements; no paper analog —
the paper reports no wall-clock numbers).

Series regenerated:
* execution-order / timestamp-order candidate-check cost vs history size;
* brute-force Def. 3.5 search cost, with the specification-prefix pruning
  ablated on/off (DESIGN.md ablation #2);
* the visibility-closure induced-update-order search space vs the naive
  all-label enumeration (DESIGN.md ablation #1), measured via the strong
  checker which enumerates over all labels.
"""

import pytest

from conftest import emit
from repro.core.ralin import (
    check_ra_linearizable,
    execution_order_check,
    timestamp_order_check,
)
from repro.proofs.registry import entry_by_name
from repro.runtime import random_op_execution

SIZES = [5, 10, 20, 40]


@pytest.mark.parametrize("size", SIZES)
def test_eo_check_scaling_orset(benchmark, size):
    entry = entry_by_name("OR-Set")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=size, seed=size
    )
    gamma = entry.make_gamma()
    spec = entry.make_spec()

    def check():
        return execution_order_check(
            system.history(), spec, system.generation_order, gamma
        )

    result = benchmark(check)
    assert result.ok


@pytest.mark.parametrize("size", SIZES)
def test_to_check_scaling_rga(benchmark, size):
    entry = entry_by_name("RGA")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=size, seed=size
    )
    spec = entry.make_spec()

    def check():
        return timestamp_order_check(
            system.history(), spec, system.generation_order
        )

    result = benchmark(check)
    assert result.ok


@pytest.mark.parametrize("pruning", [True, False], ids=["pruned", "unpruned"])
def test_brute_force_pruning_ablation(benchmark, pruning):
    entry = entry_by_name("RGA")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=9, seed=17
    )
    spec = entry.make_spec()

    def check():
        return check_ra_linearizable(
            system.history(), spec, prune_with_spec=pruning
        )

    result = benchmark(check)
    assert result.ok
    if not pruning:
        emit(
            "Ablation — spec-prefix pruning in the Def. 3.5 search (RGA, "
            "9 ops)",
            f"orders explored without pruning: {result.explored}",
        )


@pytest.mark.parametrize("size", [4, 6, 8])
def test_brute_force_scaling_counter(benchmark, size):
    entry = entry_by_name("Counter")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=size, seed=size
    )
    spec = entry.make_spec()

    def check():
        return check_ra_linearizable(system.history(), spec)

    result = benchmark(check)
    assert result.ok
