"""Fig. 2/3 — RGA conflict resolution and its history.

Regenerates: the worked example — concurrent ``addAfter(c,d)`` /
``addAfter(c,e)`` converge with the higher timestamp first, ``remove(d)``
tombstones, final list ``a·b·c·e`` — and times convergence plus the
timestamp-order RA-linearization of the resulting Fig. 3 history.
"""

from conftest import emit
from repro.core.ralin import timestamp_order_check
from repro.scenarios import fig2_rga_conflict
from repro.specs import RGASpec


def test_fig2_convergence(benchmark):
    scenario = benchmark(fig2_rga_conflict)
    system = scenario.system
    assert system.state("r1") == system.state("r2")
    assert scenario.labels["read"].ret == ("a", "b", "c", "e")


def test_fig3_history_linearizes(benchmark):
    scenario = fig2_rga_conflict()

    def check():
        return timestamp_order_check(
            scenario.history, RGASpec(), scenario.system.generation_order
        )

    result = benchmark(check)
    assert result.ok
    emit(
        "Fig. 2/3 — RGA conflict resolution",
        f"final list after remove(d): {scenario.labels['read'].ret} "
        "[paper: a·b·c·e]\n"
        "replicas converged         : yes\n"
        "timestamp-order witness    : "
        + " · ".join(repr(l) for l in result.update_order),
    )
