"""Work-stealing scheduler vs static root-branch fan-out (our measurement).

The skewed case the scheduler exists for: a *symmetric* 3-replica scope,
where orbit filtering collapses every root branch into one
representative — the static fan-out degenerates to a serial run no
matter how many workers it is given, while the stealing pool splits the
surviving branch's subtrees across the pool.

Machines without enough cores cannot measure that wall-clock gap
directly, so the harness measures it *structurally*: a single-worker
forced-split pool run (``force_pool=True``) is a contention-free
serialization of the task DAG — accurate per-task durations, spawn
times, and parent edges — and a deterministic list-scheduling simulator
replays that DAG on ``MODEL_WORKERS`` virtual workers.  The static
baseline is the same scope with splitting disabled (its "DAG" is the
seed tasks alone), replayed through the same simulator.  On hosts with
enough real cores the real pool wall clock is recorded alongside the
model.

``test_fp_store_memory`` measures the fingerprint-representation
memory-vs-time tradeoff (raw tuples vs interned digests vs the
disk-spill tier) with ``tracemalloc``, and the slow-marked 4-replica
scope completes under the spill tier — both land in the ``steal_3r`` /
``fp_store`` sections of ``BENCH_explore.json``.
"""

import heapq
import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from conftest import emit
from repro.proofs.exhaustive import exhaustive_verify
from repro.proofs.registry import entry_by_name
from repro.proofs.steal import exhaustive_verify_steal
from repro.runtime.fp_store import FingerprintStore

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"

#: The virtual pool size the makespan model schedules onto.
MODEL_WORKERS = 4

#: Hot-tier entries for the bounded-memory spill row.
SPILL_LIMIT = 8192

SYM_3R = {r: [("inc", ()), ("read", ())] for r in ("r1", "r2", "r3")}

SKEWED_4R = {
    "r1": [("inc", ()), ("read", ())],
    "r2": [("inc", ())],
    "r3": [("inc", ())],
    "r4": [("inc", ())],
}


def _update_artifact(key, section):
    artifact = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() \
        else {}
    existing = artifact.get(key)
    if isinstance(existing, dict) and isinstance(section, dict):
        existing.update(section)
    else:
        artifact[key] = section
    JSON_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )


def simulate_makespan(stats, workers):
    """Greedy list-scheduling makespan of a recorded task DAG.

    Tasks become ready at their recorded spawn offset *within the
    parent's execution* (a stolen subtree exists only once the parent's
    DFS reaches and offloads it); seeds are ready at time zero.  A free
    worker takes the earliest-ready task, matching the FIFO task queue.
    """
    duration = {}
    children = {}
    order = {}
    parent_of = {}
    starts = {}
    for index, (tid, parent, _scope, start, end) in enumerate(
            stats.timeline):
        duration[tid] = end - start
        order[tid] = index
        parent_of[tid] = parent
        starts[tid] = start
    for tid, spawn in stats.spawn_times.items():
        parent = parent_of[tid]
        offset = min(max(0.0, spawn - starts[parent]), duration[parent])
        children.setdefault(parent, []).append((tid, offset))
    ready = [
        (0.0, order[tid], tid)
        for tid, parent in parent_of.items() if parent is None
    ]
    heapq.heapify(ready)
    free = [0.0] * workers
    heapq.heapify(free)
    scheduled = 0
    makespan = 0.0
    while ready:
        ready_at, _, tid = heapq.heappop(ready)
        start = max(ready_at, heapq.heappop(free))
        end = start + duration[tid]
        heapq.heappush(free, end)
        makespan = max(makespan, end)
        for child, offset in children.get(tid, ()):
            heapq.heappush(ready, (start + offset, order[child], child))
        scheduled += 1
    assert scheduled == len(duration), "task DAG has unreachable tasks"
    return makespan


def _pool_run(entry, programs, **kwargs):
    sink = {}
    result = exhaustive_verify_steal(
        entry, programs, jobs=1, symmetry=True, oversubscribe=True,
        force_pool=True, fp_store=False, stats_sink=sink, **kwargs
    )
    return result, sink["steal"]


def test_steal_vs_static_3r(benchmark):
    """Modeled ≥2x makespan over the static fan-out on a skewed scope."""
    entry = entry_by_name("Counter")

    def run():
        # Splitting disabled: the task DAG is the orbit-filtered seed
        # set — for a symmetric scope, one representative root branch,
        # i.e. the static fan-out's serial worst case.
        static_result, static = _pool_run(
            entry, SYM_3R, pending_target=0, split_interval=10**9
        )
        steal_result, steal = _pool_run(
            entry, SYM_3R, pending_target=10**6, split_interval=2
        )
        assert static_result.ok and steal_result.ok
        assert steal_result.configurations == static_result.configurations
        assert steal.stolen_tasks > 0
        return static_result, static, steal

    static_result, static, steal = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    static_makespan = simulate_makespan(static, MODEL_WORKERS)
    steal_makespan = simulate_makespan(steal, MODEL_WORKERS)
    speedup = static_makespan / steal_makespan
    section = {
        "scope": "Counter, symmetric 3-replica [inc, read] programs",
        "orbits": static_result.configurations,
        "model_workers": MODEL_WORKERS,
        "model": "list-scheduling replay of a single-worker forced-split "
                 "pool serialization (accurate per-task durations and "
                 "spawn offsets, no core contention)",
        "static_seed_tasks": static.seed_tasks,
        "static_makespan_seconds": round(static_makespan, 4),
        "steal_tasks": steal.tasks,
        "steal_stolen_tasks": steal.stolen_tasks,
        "steal_makespan_seconds": round(steal_makespan, 4),
        "steal_total_task_seconds": round(
            sum(end - start for _, _, _, start, end in steal.timeline), 4
        ),
        "modeled_speedup": round(speedup, 2),
        "cpu_count": os.cpu_count(),
    }
    if (os.cpu_count() or 1) >= 2:
        jobs = min(MODEL_WORKERS, os.cpu_count())
        start = time.perf_counter()
        real_result = exhaustive_verify_steal(
            entry, SYM_3R, jobs=jobs, symmetry=True, fp_store=False,
            split_interval=2,
        )
        wall = time.perf_counter() - start
        assert real_result.configurations == static_result.configurations
        section["real"] = {
            "jobs": jobs,
            "wall_seconds": round(wall, 4),
            "speedup_vs_static_makespan": round(static_makespan / wall, 2),
        }
    _update_artifact("steal_3r", section)
    emit(
        "Work stealing vs static fan-out (skewed symmetric 3r scope)",
        f"static: {static.seed_tasks} seed task(s), makespan "
        f"{static_makespan:6.2f}s on {MODEL_WORKERS} modeled workers\n"
        f"steal:  {steal.tasks} tasks ({steal.stolen_tasks} stolen), "
        f"makespan {steal_makespan:6.2f}s on {MODEL_WORKERS} modeled "
        f"workers\n"
        f"modeled speedup: {speedup:.2f}x",
    )
    # Acceptance: >= 2x over static root-branch splitting.
    assert speedup >= 2.0, section


def test_fp_store_memory(benchmark):
    """Memory-vs-time across fingerprint representations (3r scope)."""
    entry = entry_by_name("Counter")

    def measure(label, **kwargs):
        tracemalloc.start()
        start = time.perf_counter()
        result = exhaustive_verify(entry, SYM_3R, symmetry=True, **kwargs)
        wall = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.ok, result.failures
        row = {
            "peak_mib": round(peak / 2**20, 1),
            "seconds": round(wall, 2),
        }
        if result.fp_store is not None:
            row.update({
                "unique_digests": result.fp_store.unique,
                "evictions": result.fp_store.evictions,
                "spilled": result.fp_store.spilled,
            })
        return result, row

    def run(tmp):
        rows = {}
        raw, rows["raw"] = measure("raw")
        digest, rows["digests"] = measure("digests", fp_store=True)
        import repro.proofs.exhaustive as exhaustive_module

        original = exhaustive_module.FingerprintStore
        exhaustive_module.FingerprintStore = (
            lambda spill_dir: FingerprintStore(
                spill_dir=spill_dir, memory_limit=SPILL_LIMIT
            )
        )
        try:
            spill, rows["spill"] = measure("spill", spill=str(tmp))
        finally:
            exhaustive_module.FingerprintStore = original
        assert raw.configurations == digest.configurations \
            == spill.configurations
        return rows

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        rows = benchmark.pedantic(run, args=(tmp,), rounds=1, iterations=1)
    rows["spill"]["memory_limit"] = SPILL_LIMIT
    section = {
        "scope": "Counter, symmetric 3-replica [inc, read] programs, "
                 "tracemalloc peaks",
        "rows": rows,
    }
    _update_artifact("fp_store", section)
    emit(
        "Fingerprint store: memory vs time",
        "\n".join(
            f"{label:<8} peak {row['peak_mib']:7.1f} MiB   "
            f"{row['seconds']:7.2f}s"
            + (f"   evictions {row['evictions']}"
               if "evictions" in row else "")
            for label, row in rows.items()
        ),
    )
    # The spill tier bounds the hot set: its peak must undercut the
    # unbounded digest ledger's.
    assert rows["spill"]["peak_mib"] < rows["digests"]["peak_mib"], rows
    assert rows["spill"]["evictions"] > 0, rows


@pytest.mark.slow
def test_four_replica_spill(benchmark):
    """A 4-replica scope completes under the spill tier (slow)."""
    import tempfile

    entry = entry_by_name("Counter")

    def run(tmp):
        start = time.perf_counter()
        result = exhaustive_verify(
            entry, SKEWED_4R, symmetry=True, spill=str(tmp)
        )
        wall = time.perf_counter() - start
        assert result.ok, result.failures
        assert result.fp_store is not None
        return result, wall

    with tempfile.TemporaryDirectory() as tmp:
        result, wall = benchmark.pedantic(
            run, args=(tmp,), rounds=1, iterations=1
        )
    store = result.fp_store
    section = {
        "four_replica_spill": {
            "scope": "Counter, 4 replicas (skewed: one reader), "
                     "symmetry + spill tier",
            "orbits": result.configurations,
            "states_visited": result.stats.states_visited,
            "seconds": round(wall, 1),
            "unique_digests": store.unique,
            "evictions": store.evictions,
            "spilled": store.spilled,
            "hit_ratio": round(store.hit_ratio, 3),
        }
    }
    _update_artifact("steal_3r", section)
    emit(
        "4-replica scope under the spill tier",
        f"{result.configurations} orbits, "
        f"{result.stats.states_visited} states, {wall:.1f}s, "
        f"{store.spilled} digests spilled to disk",
    )
