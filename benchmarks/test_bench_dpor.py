"""Source-DPOR + persistent snapshots vs. sleep sets (our measurement).

On symmetric 3-replica scopes, run ``exhaustive_verify`` with both POR
flavors — the classic sleep-set explorer over copy-on-write snapshots
(the PR-6 engine) and source-DPOR over persistent structural-sharing
hash-trie systems — and record wall speedups, interleaving reductions,
and the structural-sharing ratio in the ``dpor_3r`` section of
``BENCH_explore.json``.  Wall clocks are the min over interleaved runs
so a noisy neighbour does not sink either side, and every cell asserts
the two flavors agree bit-for-bit on verdicts and
distinct-configuration counts — including through the work-stealing
scheduler.
"""

import json
from pathlib import Path

import pytest

from conftest import emit
from repro.proofs.exhaustive import exhaustive_verify
from repro.proofs.registry import ALL_ENTRIES

ROUNDS = 3
RESULTS = {}
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"


def _entry(name):
    return next(e for e in ALL_ENTRIES if e.name == name)


SCOPES = {
    "Counter (3r)": (_entry("Counter"), [("inc", ()), ("read", ())], None),
    "Counter (3r, nosym)": (
        _entry("Counter"), [("inc", ()), ("read", ())], False
    ),
    "OR-Set (3r)": (_entry("OR-Set"), [("add", ("a",)), ("read", ())], None),
}


def _programs(program):
    return {r: list(program) for r in ("r1", "r2", "r3")}


def _measure(entry, programs, symmetry):
    """Interleaved min-of-N for both flavors; returns the best runs."""
    best = {}
    for _ in range(ROUNDS):
        for por in ("sleep", "source"):
            result = exhaustive_verify(
                entry, programs, symmetry=symmetry, por=por
            )
            assert result.ok, result.failures
            if por not in best or \
                    result.stats.wall_time < best[por].stats.wall_time:
                best[por] = result
    return best["sleep"], best["source"]


@pytest.mark.parametrize("name", list(SCOPES), ids=list(SCOPES))
def test_source_dpor_speedup(benchmark, name):
    entry, program, symmetry = SCOPES[name]
    programs = _programs(program)
    sleep, source = benchmark.pedantic(
        _measure, args=(entry, programs, symmetry), rounds=1, iterations=1
    )
    # The reduction must be invisible in the results ...
    assert source.ok == sleep.ok
    assert source.configurations == sleep.configurations
    assert source.failures == sleep.failures
    # ... and real in the walk.
    assert source.stats.states_visited < sleep.stats.states_visited
    assert source.stats.dpor_redundant_avoided > 0
    shared = source.stats.pstate_shared
    copied = source.stats.pstate_copied
    RESULTS[name] = {
        "sleep_seconds": round(sleep.stats.wall_time, 4),
        "source_seconds": round(source.stats.wall_time, 4),
        "speedup": round(
            sleep.stats.wall_time / source.stats.wall_time, 2
        ),
        "configurations": source.configurations,
        "sleep_states": sleep.stats.states_visited,
        "source_states": source.stats.states_visited,
        "state_reduction": round(
            sleep.stats.states_visited / source.stats.states_visited, 2
        ),
        "dpor_races": source.stats.dpor_races,
        "dpor_redundant_avoided": source.stats.dpor_redundant_avoided,
        "pstate_sharing_ratio": round(
            shared / (copied + shared), 3
        ) if copied + shared else 0.0,
    }


def test_steal_parity(benchmark):
    """Both flavors agree through the work-stealing scheduler too."""
    entry, program, symmetry = SCOPES["Counter (3r)"]
    programs = _programs(program)

    def run():
        return {
            por: exhaustive_verify(
                entry, programs, symmetry=symmetry, jobs=2,
                oversubscribe=True, por=por,
            )
            for por in ("sleep", "source")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = exhaustive_verify(entry, programs, symmetry=symmetry)
    for por, result in results.items():
        assert result.ok, (por, result.failures)
        assert result.configurations == serial.configurations, por


def test_dpor_table(benchmark):
    benchmark(lambda: None)
    emit("Source-DPOR + persistent snapshots vs. sleep sets, 3-replica "
         "scopes",
         "\n".join(
             f"{name:<20} sleep {r['sleep_seconds']:7.2f}s "
             f"({r['sleep_states']:>6} states)   source "
             f"{r['source_seconds']:7.2f}s ({r['source_states']:>6} "
             f"states)   {r['speedup']:>5.2f}x wall, "
             f"{r['state_reduction']:>5.2f}x states, sharing "
             f"{r['pstate_sharing_ratio']:.3f}"
             for name, r in RESULTS.items()
         ))
    artifact = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() \
        else {}
    artifact["dpor_3r"] = {
        "scope": f"symmetric 3-replica 2-op programs, min of {ROUNDS} "
                 "interleaved runs",
        "entries": RESULTS,
    }
    JSON_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    # Acceptance: >= 2x wall clock over the PR-6 engine on at least one
    # 3-replica scope.
    assert max(r["speedup"] for r in RESULTS.values()) >= 2.0, RESULTS
