"""Shared helpers for the benchmark harness.

Every benchmark both *times* its reproduction (pytest-benchmark) and
*asserts* the paper's qualitative result, so `pytest benchmarks/
--benchmark-only` doubles as the experiment runner.  Run with ``-s`` to see
the regenerated tables.
"""

import pytest


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure block."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
