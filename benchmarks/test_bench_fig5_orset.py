"""Fig. 5 — OR-Set: standard linearizability fails, RA-linearizability holds.

Regenerates: the Fig. 5a execution (both reads return {a, b} after each
replica removed an element it had only locally observed), the failed search
for a standard (whole-prefix) linearization against Spec(Set), and the
Fig. 5b rewriting + RA-linearization that explains it.
"""

from conftest import emit
from repro.core.ralin import check_ra_linearizable, execution_order_check
from repro.core.strong import check_strong_linearizable
from repro.scenarios import fig5a_orset
from repro.specs import ORSetRewriting, ORSetSpec, SetSpec, plain_set_view


def test_fig5a_not_strongly_linearizable(benchmark):
    scenario = fig5a_orset()

    def strong_check():
        return check_strong_linearizable(
            scenario.history, SetSpec(), gamma=plain_set_view()
        )

    witness = benchmark(strong_check)
    assert witness is None
    assert scenario.labels["read@r1"].ret == frozenset({"a", "b"})
    assert scenario.labels["read@r2"].ret == frozenset({"a", "b"})


def test_fig5b_ra_linearizable_after_rewriting(benchmark):
    scenario = fig5a_orset()

    def ra_check():
        return check_ra_linearizable(
            scenario.history, ORSetSpec(), gamma=ORSetRewriting()
        )

    result = benchmark(ra_check)
    assert result.ok


def test_fig5b_execution_order_candidate(benchmark):
    scenario = fig5a_orset()

    def eo_check():
        return execution_order_check(
            scenario.history, ORSetSpec(),
            scenario.system.generation_order, ORSetRewriting(),
        )

    result = benchmark(eo_check)
    assert result.ok
    emit(
        "Fig. 5 — OR-Set execution (reads both return {a,b})",
        "standard linearization (Spec(Set), whole prefix) : NOT FOUND  "
        "[paper: impossible]\n"
        "RA-linearization after query-update rewriting γ   : FOUND      "
        "[paper: exists]\n"
        "witness (execution order): "
        + " · ".join(repr(l) for l in result.linearization),
    )
