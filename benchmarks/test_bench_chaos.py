"""Chaos-run cost per fault plan (our measurement).

One `run_chaos` drives a registry entry through its fault-injected
driver, quiesces, and runs the entry-appropriate RA-linearizability
check plus the convergence oracle.  This benchmark measures that
end-to-end cost for each default plan — i.e. what the adversary costs
over the reliable baseline — on one op-based and one state-based entry.
"""

import pytest

from conftest import emit
from repro.proofs.chaos import default_plans, run_chaos
from repro.proofs.registry import entry_by_name

ENTRIES = ["OR-Set", "G-Counter"]
PLANS = [plan.name for plan in default_plans()]
EVENTS = {}


@pytest.mark.parametrize("entry_name", ENTRIES)
@pytest.mark.parametrize("plan_name", PLANS)
def test_chaos_run_cost(benchmark, entry_name, plan_name):
    entry = entry_by_name(entry_name)
    plan = next(p for p in default_plans() if p.name == plan_name)
    report = benchmark(run_chaos, entry, 7, plan)
    assert report.ok, report.reason
    EVENTS[(entry_name, plan_name)] = len(report.trace.events)


def test_chaos_events_table(benchmark):
    benchmark(lambda: None)
    rows = [
        f"{entry:>10} / {plan:<10}: {events:>4} adversary events"
        for (entry, plan), events in sorted(EVENTS.items())
    ]
    emit("Chaos run adversary-event volume (seed 7)", "\n".join(rows))
    assert EVENTS
