"""The deep exhaustive scope suite behind ``make bench-verify``.

Eight registry entries, each explored over two replicas running
four-operation programs — deep enough (≈ 1 700–4 000 distinct
configurations per scope, ~25 000 final checks in total) that the
verification pipeline dominates the measurement, unlike the standard
two-operation programs which finish before process start-up costs
amortize.

The module is deliberately self-contained and restricted to the
verification API that already existed at the PR-1 baseline, so the
benchmark can execute the *same file* against a checked-out baseline
tree (``serial`` mode) and against the current tree (``serial`` and
``parallel`` modes) and compare like with like:

    PYTHONPATH=<tree>/src python benchmarks/verify_scope_suite.py serial
    PYTHONPATH=src python benchmarks/verify_scope_suite.py parallel 4

Each invocation prints one JSON line: wall seconds for the suite plus
every scope's verdict and distinct-configuration count, which the
benchmark asserts are identical across modes and trees.
"""

import json
import sys
import time

#: ``(registry entry name, per-replica programs, max_gossips)`` —
#: ``max_gossips`` is ``None`` for op-based entries.
SCOPES = [
    ("LWW-Element Set",
     {"r1": [("add", ("a",)), ("read", ()), ("remove", ("a",)), ("read", ())],
      "r2": [("add", ("b",)), ("read", ()), ("add", ("a",)), ("read", ())]},
     3),
    ("OR-Set",
     {"r1": [("add", ("a",)), ("read", ()), ("remove", ("a",)), ("read", ())],
      "r2": [("add", ("a",)), ("read", ()), ("add", ("b",)), ("read", ())]},
     None),
    ("PN-Counter",
     {"r1": [("inc", ()), ("read", ()), ("dec", ()), ("read", ())],
      "r2": [("inc", ()), ("read", ()), ("inc", ()), ("read", ())]},
     3),
    ("Counter",
     {"r1": [("inc", ()), ("read", ()), ("dec", ()), ("read", ())],
      "r2": [("inc", ()), ("read", ()), ("inc", ()), ("read", ())]},
     None),
    ("G-Counter",
     {"r1": [("inc", ()), ("read", ()), ("inc", ()), ("read", ())],
      "r2": [("inc", ()), ("read", ()), ("inc", ()), ("read", ())]},
     3),
    ("G-Set",
     {"r1": [("add", ("a",)), ("read", ()), ("add", ("b",)), ("read", ())],
      "r2": [("add", ("c",)), ("read", ()), ("add", ("a",)), ("read", ())]},
     3),
    ("LWW-Register",
     {"r1": [("write", ("x",)), ("read", ()), ("write", ("y",)), ("read", ())],
      "r2": [("write", ("z",)), ("read", ()), ("write", ("w",)), ("read", ())]},
     None),
    ("Multi-Value Reg.",
     {"r1": [("write", ("x",)), ("read", ()), ("write", ("y",)), ("read", ())],
      "r2": [("write", ("z",)), ("read", ()), ("write", ("w",)), ("read", ())]},
     3),
]


def run_serial():
    """Verify every scope sequentially (PR-1-compatible API only)."""
    from repro.proofs.exhaustive import (
        exhaustive_verify,
        exhaustive_verify_state,
    )
    from repro.proofs.registry import entry_by_name

    results = []
    for name, programs, max_gossips in SCOPES:
        entry = entry_by_name(name)
        if max_gossips is None:
            result = exhaustive_verify(entry, programs)
        else:
            result = exhaustive_verify_state(
                entry, programs, max_gossips=max_gossips
            )
        results.append(result)
    return results


def run_parallel(jobs):
    """Verify every scope through the shared worker pool (current API)."""
    from repro.proofs.parallel import verify_scopes_parallel
    from repro.proofs.registry import entry_by_name

    scopes = [
        (entry_by_name(name), programs, max_gossips)
        for name, programs, max_gossips in SCOPES
    ]
    merged = verify_scopes_parallel(scopes, jobs=jobs)
    return [merged[name] for name, _, _ in SCOPES]


def suite_metrics(results, seconds):
    """Aggregate observability counters for one leg, or ``None``.

    Reads only dataclass attributes via ``getattr`` so the same file
    still runs against the PR-1 baseline tree, whose results carry no
    ``check_stats``.
    """
    checks = verdict_hits = frontier_hits = frontier_misses = 0
    states = 0
    saw_check_stats = False
    for result in results:
        check = getattr(result, "check_stats", None)
        if check is not None:
            saw_check_stats = True
            checks += check.checks
            verdict_hits += check.verdict_hits
            frontier_hits += check.frontier_hits
            frontier_misses += check.frontier_misses
        stats = getattr(result, "stats", None)
        if stats is not None:
            states += stats.states_visited
    configurations = sum(result.configurations for result in results)
    metrics = {
        "states_visited": states,
        "configs_per_sec": round(configurations / seconds, 1)
        if seconds else 0.0,
    }
    if saw_check_stats:
        replays = frontier_hits + frontier_misses
        metrics.update({
            "checks": checks,
            "verdict_hit_ratio": round(verdict_hits / checks, 3)
            if checks else 0.0,
            "frontier_hit_ratio": round(frontier_hits / replays, 3)
            if replays else 0.0,
        })
    return metrics


def main(argv):
    mode = argv[1] if len(argv) > 1 else "serial"
    jobs = int(argv[2]) if len(argv) > 2 else 4
    start = time.perf_counter()
    results = run_parallel(jobs) if mode == "parallel" else run_serial()
    seconds = time.perf_counter() - start
    print(json.dumps({
        "mode": mode,
        "seconds": round(seconds, 3),
        "verdicts": [result.ok for result in results],
        "configurations": [result.configurations for result in results],
        "metrics": suite_metrics(results, seconds),
    }))


if __name__ == "__main__":
    main(sys.argv)
