"""Fig. 12 — the paper's main table.

Regenerates: for each CRDT of Fig. 12 (plus the Appendix C/D extras), run
the full proof-methodology harness (Commutativity / Prop1–Prop6, Refinement,
convergence, end-to-end RA-linearization of every execution) and print the
table with its Imp. (OB/SB) and Lin. (EO/TO) classification.

Paper's result: all nine CRDTs are RA-linearizable, with the classes
printed in Fig. 12.  Ours must verify every row.
"""

import pytest

from conftest import emit
from repro.proofs import ALL_ENTRIES, format_table, verify_entry

RESULTS = {}


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
def test_fig12_row(benchmark, entry):
    result = benchmark.pedantic(
        verify_entry,
        args=(entry,),
        kwargs={"executions": 5, "operations": 10},
        rounds=1,
        iterations=1,
    )
    RESULTS[entry.name] = result
    assert result.verified, result.failures


def test_fig12_table_rendering(benchmark):
    # Render whatever rows ran (full table under `pytest benchmarks/`).
    results = [RESULTS[name] for name in sorted(RESULTS)]
    assert results, "run the per-row benchmarks first"
    text = benchmark(format_table, results)
    emit(
        "Fig. 12 — CRDTs proved RA-linearizable "
        "(SB: state-based, OB: op-based; EO/TO: linearization class)",
        text,
    )
    assert all(r.verified for r in results)
