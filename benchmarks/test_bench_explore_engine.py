"""Naive vs. fast exploration engine (our measurement).

For every registry entry's standard two-replica programs, run
``exhaustive_verify`` with both engines — the kept raw-interleaving
baseline (:mod:`repro.runtime.explore_naive`) and the sleep-set /
dedup / snapshot engine (:mod:`repro.runtime.explore_engine`) — and
record the wall-clock speedup, configurations/second, and dedup ratio
in ``BENCH_explore.json`` so the perf trajectory is tracked across PRs.

``test_symmetry_reduction_three_replica`` additionally measures the
replica-orbit reduction on symmetric 3-replica scopes — the engine with
``symmetry=False`` (the PR-1 configuration) against the orbit-dedup
engine — and records wall speedups and orbit-reduction ratios in the
``symmetry_3r`` section of the same artifact.

The deepest 3-replica scopes (``-m slow``) run the fast engine only: the
naive explorer does not finish them in reasonable time, which is the
point.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import emit
from repro.core.sentinels import ROOT
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.registry import ALL_ENTRIES

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]
SB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "SB"]
RESULTS = {}
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"


def _compare(entry, verify, kwargs):
    start = time.perf_counter()
    naive = verify(entry, standard_programs(entry), engine="naive", **kwargs)
    naive_s = time.perf_counter() - start
    fast = verify(entry, standard_programs(entry), **kwargs)
    assert naive.ok and fast.ok, (naive.failures, fast.failures)
    stats = fast.stats
    RESULTS[entry.name] = {
        "kind": entry.kind,
        "naive_seconds": round(naive_s, 4),
        "fast_seconds": round(stats.wall_time, 4),
        "speedup": round(naive_s / stats.wall_time, 1),
        "naive_configurations": naive.configurations,
        "distinct_configurations": fast.configurations,
        "configs_per_sec": round(fast.configurations / stats.wall_time, 1),
        "dedup_ratio": round(stats.dedup_ratio, 3),
        "branches_pruned": stats.branches_pruned,
        "symmetry_group": stats.symmetry_group,
    }
    check = fast.check_stats
    if check is not None:
        RESULTS[entry.name].update({
            "checks": check.checks,
            "verdict_hit_ratio": round(
                check.verdict_hits / check.checks, 3
            ) if check.checks else 0.0,
            "frontier_hit_ratio": round(check.frontier_hit_ratio, 3),
            "frontier_nodes": check.frontier_nodes,
        })
    return fast


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_op_engine_speedup(benchmark, entry):
    result = benchmark.pedantic(
        _compare,
        args=(entry, exhaustive_verify, {}),
        rounds=1,
        iterations=1,
    )
    assert result.ok


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_state_engine_speedup(benchmark, entry):
    result = benchmark.pedantic(
        _compare,
        args=(entry, exhaustive_verify_state, {"max_gossips": 2}),
        rounds=1,
        iterations=1,
    )
    assert result.ok


def test_speedup_table(benchmark):
    benchmark(lambda: None)
    rows = []
    for name, r in sorted(RESULTS.items()):
        rows.append(
            f"{name:<18} {r['kind']}  naive {r['naive_seconds']:7.3f}s "
            f"({r['naive_configurations']:>5} visits)   engine "
            f"{r['fast_seconds']:7.3f}s ({r['distinct_configurations']:>5} "
            f"distinct)   {r['speedup']:>6.1f}x"
        )
    naive_total = sum(r["naive_seconds"] for r in RESULTS.values())
    fast_total = sum(r["fast_seconds"] for r in RESULTS.values())
    overall = naive_total / fast_total
    ob = {n: r for n, r in RESULTS.items() if r["kind"] == "OB"}
    ob_overall = (
        sum(r["naive_seconds"] for r in ob.values())
        / sum(r["fast_seconds"] for r in ob.values())
    )
    rows.append(
        f"{'TOTAL':<18}     naive {naive_total:7.3f}s             "
        f"engine {fast_total:7.3f}s                  {overall:>6.1f}x"
    )
    emit("Exploration engine: naive vs. sleep sets + dedup + snapshots",
         "\n".join(rows))
    JSON_PATH.write_text(json.dumps(
        {
            "scope": "registry standard programs, 2 replicas",
            "entries": RESULTS,
            "overall_speedup": round(overall, 1),
            "op_based_speedup": round(ob_overall, 1),
        },
        indent=2, sort_keys=True,
    ) + "\n")
    # Acceptance: >= 10x wall clock on exhaustive_verify (op-based).
    assert ob_overall >= 10.0, RESULTS


def test_symmetry_reduction_three_replica(benchmark):
    """Replica-orbit dedup vs. the PR-1 engine on symmetric 3r scopes."""
    counter = next(e for e in OB_ENTRIES if e.name == "Counter")
    orset = next(e for e in OB_ENTRIES if e.name == "OR-Set")
    gcounter = next(e for e in SB_ENTRIES if e.name == "G-Counter")
    scopes = {
        "Counter (3r)": (
            counter, [("inc", ()), ("read", ())], exhaustive_verify, {}
        ),
        "OR-Set (3r)": (
            orset, [("add", ("a",)), ("read", ())], exhaustive_verify, {}
        ),
        "G-Counter (3r)": (
            gcounter, [("inc", ()), ("read", ())],
            exhaustive_verify_state, {"max_gossips": 3},
        ),
    }

    def run():
        section = {}
        for name, (entry, program, verify, kwargs) in scopes.items():
            programs = {r: list(program) for r in ("r1", "r2", "r3")}
            off = verify(entry, programs, symmetry=False, **kwargs)
            on = verify(entry, programs, symmetry=True, **kwargs)
            assert off.ok and on.ok, (off.failures, on.failures)
            section[name] = {
                "nosym_seconds": round(off.stats.wall_time, 4),
                "sym_seconds": round(on.stats.wall_time, 4),
                "speedup": round(
                    off.stats.wall_time / on.stats.wall_time, 2
                ),
                "nosym_configurations": off.configurations,
                "orbits": on.configurations,
                "orbit_reduction": round(
                    off.configurations / on.configurations, 2
                ),
                "symmetry_group": on.stats.symmetry_group,
            }
        return section

    section = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Symmetry reduction: replica-orbit dedup on 3-replica scopes",
         "\n".join(
             f"{name:<13} nosym {r['nosym_seconds']:7.2f}s "
             f"({r['nosym_configurations']:>5} configs)   sym "
             f"{r['sym_seconds']:7.2f}s ({r['orbits']:>5} orbits)   "
             f"{r['speedup']:>5.2f}x wall, {r['orbit_reduction']:>5.2f}x "
             f"orbits"
             for name, r in section.items()
         ))
    artifact = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() \
        else {}
    artifact["symmetry_3r"] = {
        "scope": "symmetric 3-replica programs, group order 3! = 6",
        "entries": section,
    }
    JSON_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    # Acceptance: >= 2x wall clock on at least one 3-replica scope.
    assert max(r["speedup"] for r in section.values()) >= 2.0, section


@pytest.mark.slow
def test_three_replica_scopes(benchmark):
    """Previously infeasible scopes, fast engine only."""
    orset = next(e for e in OB_ENTRIES if e.name == "OR-Set")
    rga = next(e for e in OB_ENTRIES if e.name == "RGA")
    scopes = {
        "OR-Set (3r)": (orset, {
            "r1": [("add", ("a",)), ("remove", ("a",)), ("read", ())],
            "r2": [("add", ("a",)), ("read", ())],
            "r3": [("add", ("a",))],
        }),
        "RGA (3r)": (rga, {
            "r1": [("addAfter", (ROOT, "a")), ("read", ())],
            "r2": [("addAfter", (ROOT, "b")), ("read", ())],
            "r3": [("addAfter", (ROOT, "c")), ("read", ())],
        }),
    }

    def run():
        rows = {}
        for name, (entry, programs) in scopes.items():
            result = exhaustive_verify(entry, programs)
            assert result.ok, result.failures
            rows[name] = result
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("3-replica exhaustive scopes (naive explorer: infeasible)",
         "\n".join(
             f"{name:<12} {res.configurations:>6} distinct configurations, "
             f"{res.stats.states_visited:>8} states, "
             f"{res.stats.wall_time:7.1f}s"
             for name, res in rows.items()
         ))
