"""End-to-end verification pipeline benchmark (our measurement).

Runs the deep exhaustive scope suite (:mod:`verify_scope_suite`) three
ways and records the comparison in ``BENCH_verify.json``:

* **baseline** — the PR-1 tree (commit ``BASELINE_COMMIT``, the fast
  exploration engine *without* the incremental-checking caches),
  extracted with ``git archive`` into ``.bench/pr1`` and run serially;
* **serial** — the current tree with the frontier/verdict caches on
  (their defaults);
* **parallel** — the current tree through
  :func:`repro.proofs.parallel.verify_scopes_parallel` with ``jobs=4``.

Every leg is a fresh subprocess (cold caches, same interpreter), timed
inside the child so interpreter start-up is excluded; each leg runs
``REPEATS`` times and the minimum is kept, the standard way to damp
scheduler noise.  The benchmark asserts the acceptance criterion —
cached + ``--jobs 4`` at least 2x faster end-to-end than the PR-1
serial baseline — and that all three legs agree on every scope's
verdict and distinct-configuration count.

On a single-core runner the parallel leg degenerates to one worker
(see ``_worker_count``), so the recorded speedup there is the
incremental-checking gain plus pool overhead; multi-core runners add
real concurrency on top.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import emit
from verify_scope_suite import SCOPES

REPO = Path(__file__).resolve().parent.parent
SUITE = Path(__file__).resolve().parent / "verify_scope_suite.py"
JSON_PATH = REPO / "BENCH_verify.json"
BASELINE_DIR = REPO / ".bench" / "pr1"

#: "Add fast exploration engine for the exhaustive checkers" — the last
#: commit before the incremental-checking + parallel-pipeline work.
BASELINE_COMMIT = "8384223051553cd6232abffa5242694cfc076739"

REPEATS = 3
JOBS = 4


def _ensure_baseline_tree() -> bool:
    """Materialize the PR-1 ``src/`` tree under ``.bench/pr1``.

    Uses ``git archive`` (no worktree registration, no ``.git``); reuses
    a previous extraction.  Returns False when the commit is unavailable
    (shallow clone without history), letting the caller skip.
    """
    if (BASELINE_DIR / "src" / "repro" / "__init__.py").exists():
        return True
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    archive = subprocess.run(
        ["git", "archive", BASELINE_COMMIT, "src"],
        cwd=REPO, capture_output=True,
    )
    if archive.returncode != 0:
        return False
    extract = subprocess.run(
        ["tar", "-x"], cwd=BASELINE_DIR, input=archive.stdout,
        capture_output=True,
    )
    return extract.returncode == 0


def _run_leg(src_dir: Path, mode: str) -> dict:
    """Run one suite leg ``REPEATS`` times; keep the fastest."""
    env = dict(os.environ, PYTHONPATH=str(src_dir))
    best = None
    for _ in range(REPEATS):
        proc = subprocess.run(
            [sys.executable, str(SUITE), mode, str(JOBS)],
            cwd=REPO, env=env, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        leg = json.loads(proc.stdout.strip().splitlines()[-1])
        if best is None or leg["seconds"] < best["seconds"]:
            best = leg
    return best


def test_verify_pipeline_speedup(benchmark):
    benchmark(lambda: None)  # timing happens in the subprocess legs
    import pytest
    if not _ensure_baseline_tree():
        pytest.skip(f"baseline commit {BASELINE_COMMIT[:12]} not available")

    baseline = _run_leg(BASELINE_DIR / "src", "serial")
    serial = _run_leg(REPO / "src", "serial")
    parallel = _run_leg(REPO / "src", "parallel")

    # Identical results across the baseline and both current pipelines:
    # same verdict and same distinct-configuration count for every scope.
    for leg in (serial, parallel):
        assert leg["verdicts"] == baseline["verdicts"]
        assert leg["configurations"] == baseline["configurations"]

    speedup_serial = baseline["seconds"] / serial["seconds"]
    speedup_parallel = baseline["seconds"] / parallel["seconds"]
    record = {
        "suite": [
            {"entry": name, "operations": sum(len(p) for p in programs.values()),
             "max_gossips": max_gossips}
            for name, programs, max_gossips in SCOPES
        ],
        "baseline_commit": BASELINE_COMMIT,
        "jobs": JOBS,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "baseline_seconds": baseline["seconds"],
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "speedup_serial": round(speedup_serial, 2),
        "speedup_parallel": round(speedup_parallel, 2),
        "verdicts": baseline["verdicts"],
        "configurations": baseline["configurations"],
        # Per-leg observability counters (verify_scope_suite.suite_metrics):
        # cache hit ratios and configurations/second.  The baseline tree
        # predates the caches, so its leg reports exploration counters only.
        "baseline_metrics": baseline.get("metrics"),
        "serial_metrics": serial.get("metrics"),
        "parallel_metrics": parallel.get("metrics"),
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        "Verification pipeline: PR-1 baseline vs incremental vs parallel",
        "\n".join([
            f"scopes: {len(SCOPES)}  "
            f"configs: {sum(baseline['configurations'])}",
            f"baseline (PR-1 serial) : {baseline['seconds']:8.2f}s",
            f"cached serial          : {serial['seconds']:8.2f}s "
            f"({speedup_serial:.2f}x)",
            f"cached + --jobs {JOBS}      : {parallel['seconds']:8.2f}s "
            f"({speedup_parallel:.2f}x)",
        ]),
    )
    assert speedup_parallel >= 2.0, (
        f"end-to-end speedup {speedup_parallel:.2f}x < 2x "
        f"(baseline {baseline['seconds']}s, parallel {parallel['seconds']}s)"
    )
