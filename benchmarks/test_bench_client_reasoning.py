"""Sec. 3.3 — client reasoning: the post-condition ``a∈X ⇒ a∈Y``.

Regenerates: the exhaustive small-scope model-check of the two-replica
OR-Set client program under every delivery interleaving, and the spec-level
enumeration of RA-linearizations the paper's argument quantifies over.
"""

from conftest import emit
from repro.clients import check_client_assertion, enumerate_ra_linearizations
from repro.crdts import OpORSet
from repro.runtime import OpBasedSystem
from repro.scenarios import section33_programs
from repro.specs import ORSetRewriting, ORSetSpec


def test_postcondition_all_interleavings(benchmark):
    programs, postcondition = section33_programs()

    def check():
        return check_client_assertion(OpORSet, programs, postcondition)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert result.holds
    assert result.configurations > 100
    emit(
        "Sec. 3.3 — client verification of  add(a);rem(a);X=read() ∥ "
        "add(a);Y=read()",
        f"interleavings explored : {result.configurations}\n"
        "post-condition a∈X ⇒ a∈Y : HOLDS in every execution "
        "[paper: holds]",
    )


def test_ra_linearization_enumeration(benchmark):
    # One concrete execution; count its RA-linearizations (the set the
    # paper's hand proof quantifies over).
    system = OpBasedSystem(OpORSet(), replicas=("r1", "r2"))
    system.invoke("r1", "add", ("a",))
    system.invoke("r1", "remove", ("a",))
    system.invoke("r2", "add", ("a",))
    system.deliver_all()
    system.invoke("r1", "read")
    system.invoke("r2", "read")
    history = system.history()

    def enumerate_all():
        return list(
            enumerate_ra_linearizations(history, ORSetSpec(), ORSetRewriting())
        )

    witnesses = benchmark(enumerate_all)
    assert witnesses
