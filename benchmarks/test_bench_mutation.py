"""Mutation detection — the harness as a bug finder (our evaluation).

The paper's methodology is only useful if it *fails* on incorrect CRDTs.
This benchmark plants six classic replication bugs (unconditional
last-delivery-wins, eager remove, wrong sibling order, physical tombstone
deletion, summing merge, dominated-pair resurrection) and measures the cost
of detecting each; all six must be caught.
"""

import pytest

from conftest import emit
from repro.proofs.mutants import mutant_catalogue, verify_mutant

CATALOGUE = mutant_catalogue()
OUTCOMES = {}


@pytest.mark.parametrize(
    "name,make_crdt,base", CATALOGUE, ids=[row[0] for row in CATALOGUE]
)
def test_mutant_detection_cost(benchmark, name, make_crdt, base):
    result = benchmark.pedantic(
        verify_mutant, args=(make_crdt, base), rounds=1, iterations=1
    )
    OUTCOMES[name] = result
    assert not result.verified


def test_mutation_table(benchmark):
    rows = []
    for name, result in sorted(OUTCOMES.items()):
        caught_by = []
        if not result.commutativity_ok:
            caught_by.append("commutativity/props")
        if not result.refinement_ok:
            caught_by.append("refinement/fold")
        if not result.convergence_ok:
            caught_by.append("convergence")
        if not result.ralin_ok:
            caught_by.append("RA-lin")
        rows.append(f"{name:<35} caught by: {', '.join(caught_by)}")
    benchmark(lambda: None)
    emit("Mutation testing — all mutants detected", "\n".join(rows))
    assert len(rows) == len(CATALOGUE)
