"""Fig. 9 — composition ⊗: per-object linearizations need not combine.

Regenerates: the two-OR-Set history where the per-object choices
``o1: add(c)·add(d)`` and ``o2: add(a)·add(b)`` cannot be merged into a
global linearization (cyclic constraints), while the alternative o1 choice
``add(d)·add(c)`` merges fine — and the composed history *is*
RA-linearizable (Theorem 5.3: EO objects compose).
"""

from conftest import emit
from repro.core.rewriting import rewrite_history
from repro.runtime.composition import (
    check_composed_ra_linearizable,
    combine_per_object,
    per_object_rewriting,
)
from repro.scenarios import fig9_two_orsets
from repro.specs import ORSetRewriting, ORSetSpec


def _rewritten(scenario, gammas):
    return rewrite_history(scenario.history, per_object_rewriting(gammas))


def test_fig9_bad_choice_cannot_combine(benchmark):
    scenario = fig9_two_orsets()
    gammas = {"o1": ORSetRewriting(), "o2": ORSetRewriting()}
    rewritten = _rewritten(scenario, gammas)
    g1, g2 = gammas["o1"], gammas["o2"]
    bad = {
        "o1": [g1.upd(scenario.labels["o1.add(c)"]),
               g1.upd(scenario.labels["o1.add(d)"])],
        "o2": [g2.upd(scenario.labels["o2.add(a)"]),
               g2.upd(scenario.labels["o2.add(b)"])],
    }
    merged = benchmark(combine_per_object, rewritten, bad)
    assert merged is None


def test_fig9_alternative_choice_combines(benchmark):
    scenario = fig9_two_orsets()
    gammas = {"o1": ORSetRewriting(), "o2": ORSetRewriting()}
    rewritten = _rewritten(scenario, gammas)
    g1, g2 = gammas["o1"], gammas["o2"]
    good = {
        "o1": [g1.upd(scenario.labels["o1.add(d)"]),
               g1.upd(scenario.labels["o1.add(c)"])],
        "o2": [g2.upd(scenario.labels["o2.add(a)"]),
               g2.upd(scenario.labels["o2.add(b)"])],
    }
    merged = benchmark(combine_per_object, rewritten, good)
    assert merged is not None


def test_fig9_composed_history_ra_linearizable(benchmark):
    scenario = fig9_two_orsets()

    def check():
        return check_composed_ra_linearizable(
            scenario.history,
            {"o1": ORSetSpec(), "o2": ORSetSpec()},
            {"o1": ORSetRewriting(), "o2": ORSetRewriting()},
        )

    result = benchmark(check)
    assert result.ok
    emit(
        "Fig. 9 — composing per-object linearizations (two OR-Sets)",
        "o1:[add(c)·add(d)] with o2:[add(a)·add(b)] : NOT COMBINABLE "
        "[paper: cyclic]\n"
        "o1:[add(d)·add(c)] with o2:[add(a)·add(b)] : COMBINABLE     "
        "[paper: fine]\n"
        "composed history RA-linearizable           : YES            "
        "[paper: Theorem 5.3]",
    )
