"""Convergence cost — delivering/merging to quiescence (our measurements).

Series regenerated: op-based ``deliver_all`` cost vs replica count and
operation count; state-based full gossip rounds; both assert the SEC
property the paper ties to RA-linearizability (Sec. 7: "observably
equivalent to strong eventual consistency").
"""

import pytest

from repro.core.convergence import check_convergence
from repro.proofs.registry import entry_by_name
from repro.runtime import random_op_execution, random_state_execution

REPLICA_COUNTS = [2, 3, 5]


@pytest.mark.parametrize("replicas", REPLICA_COUNTS)
def test_opbased_convergence_cost(benchmark, replicas):
    entry = entry_by_name("RGA")
    names = tuple(f"r{i}" for i in range(1, replicas + 1))

    def run():
        return random_op_execution(
            entry.make_crdt(), entry.make_workload(),
            replicas=names, operations=15, seed=replicas,
        )

    system = benchmark(run)
    ok, _ = check_convergence(system.replica_views())
    assert ok


@pytest.mark.parametrize("replicas", REPLICA_COUNTS)
def test_statebased_convergence_cost(benchmark, replicas):
    entry = entry_by_name("PN-Counter")
    names = tuple(f"r{i}" for i in range(1, replicas + 1))

    def run():
        return random_state_execution(
            entry.make_crdt(), entry.make_workload(),
            replicas=names, operations=15, seed=replicas,
        )

    system = benchmark(run)
    ok, _ = check_convergence(system.replica_views())
    assert ok


@pytest.mark.parametrize("operations", [10, 25, 50])
def test_opbased_ops_scaling(benchmark, operations):
    entry = entry_by_name("OR-Set")

    def run():
        return random_op_execution(
            entry.make_crdt(), entry.make_workload(),
            operations=operations, seed=operations,
        )

    system = benchmark(run)
    assert system.pending_count() == 0
