"""Optimal DPOR (wakeup trees) vs. plain source-DPOR (our measurement).

On the ``dpor_3r`` scopes, run ``exhaustive_verify`` with both
race-driven flavors — plain source sets and the optimal layer (wakeup
continuations, patch cuts, vacuity drops) — and record wall speedups,
interleaving reductions, and the optimal-only counters in the
``optimal_3r`` section of ``BENCH_explore.json``.  Wall clocks are the
min over interleaved runs so a noisy neighbour does not sink either
side, and every cell asserts the flavors agree bit-for-bit on verdicts
and distinct-configuration counts.

The hard gates are the structural guarantees: optimal walks no more
states than source on every scope, conservative full expansions are
eliminated outright (only counted wakeup fallbacks remain), and
verdicts are identical in serial, static-parallel, and work-stealing
modes.  Wall speedup is recorded and floored as a regression tripwire;
``docs/performance.md`` discusses why the sound advisory design tops
out near the state-reduction ratio rather than the aspirational 1.5x.
"""

import json
from pathlib import Path

import pytest

from conftest import emit
from repro.proofs.exhaustive import exhaustive_verify
from repro.proofs.registry import ALL_ENTRIES

ROUNDS = 3
RESULTS = {}
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"

#: Noise tripwire, not the target: optimal must never fall meaningfully
#: behind source in wall clock.
SPEEDUP_FLOOR = 0.85


def _entry(name):
    return next(e for e in ALL_ENTRIES if e.name == name)


SCOPES = {
    "Counter (3r)": (_entry("Counter"), [("inc", ()), ("read", ())], None),
    "Counter (3r, nosym)": (
        _entry("Counter"), [("inc", ()), ("read", ())], False
    ),
    "OR-Set (3r)": (_entry("OR-Set"), [("add", ("a",)), ("read", ())], None),
}


def _programs(program):
    return {r: list(program) for r in ("r1", "r2", "r3")}


def _measure(entry, programs, symmetry):
    """Interleaved min-of-N for both flavors; returns the best runs."""
    best = {}
    for _ in range(ROUNDS):
        for por in ("source", "optimal"):
            result = exhaustive_verify(
                entry, programs, symmetry=symmetry, por=por
            )
            assert result.ok, result.failures
            if por not in best or \
                    result.stats.wall_time < best[por].stats.wall_time:
                best[por] = result
    return best["source"], best["optimal"]


@pytest.mark.parametrize("name", list(SCOPES), ids=list(SCOPES))
def test_optimal_dpor_speedup(benchmark, name):
    entry, program, symmetry = SCOPES[name]
    programs = _programs(program)
    source, optimal = benchmark.pedantic(
        _measure, args=(entry, programs, symmetry), rounds=1, iterations=1
    )
    # The extra pruning must be invisible in the results ...
    assert optimal.ok == source.ok
    assert optimal.configurations == source.configurations
    assert optimal.failures == source.failures
    # ... and the structural guarantees must hold: no conservative full
    # expansions survive (vacuity + counted fallbacks absorb them all),
    # and the walk never grows.
    assert optimal.stats.dpor_full_expansions == 0
    assert (
        optimal.stats.states_visited <= source.stats.states_visited
    ), name
    RESULTS[name] = {
        "source_seconds": round(source.stats.wall_time, 4),
        "optimal_seconds": round(optimal.stats.wall_time, 4),
        "speedup": round(
            source.stats.wall_time / optimal.stats.wall_time, 2
        ),
        "configurations": optimal.configurations,
        "source_states": source.stats.states_visited,
        "optimal_states": optimal.stats.states_visited,
        "state_reduction": round(
            source.stats.states_visited / optimal.stats.states_visited, 2
        ),
        "source_full_expansions": source.stats.dpor_full_expansions,
        "optimal_full_expansions": optimal.stats.dpor_full_expansions,
        "wakeup_branches": optimal.stats.dpor_wakeup_branches,
        "wakeup_fallbacks": optimal.stats.dpor_wakeup_fallbacks,
        "vacuity_drops": optimal.stats.dpor_vacuity_drops,
        "patch_cuts": optimal.stats.dpor_patch_cuts,
    }


@pytest.mark.parametrize(
    "mode", ["serial", "static", "steal"], ids=["serial", "static", "steal"]
)
def test_three_way_parity(benchmark, mode):
    """sleep/source/optimal verdicts agree in every execution mode."""
    entry, program, symmetry = SCOPES["Counter (3r)"]
    programs = _programs(program)
    kwargs = {"symmetry": symmetry}
    if mode == "static":
        kwargs.update(jobs=2, steal=False, oversubscribe=True)
    elif mode == "steal":
        kwargs.update(jobs=2, steal=True, oversubscribe=True)

    def run():
        return {
            por: exhaustive_verify(entry, programs, por=por, **kwargs)
            for por in ("sleep", "source", "optimal")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sleep = results["sleep"]
    for por in ("source", "optimal"):
        result = results[por]
        assert result.ok == sleep.ok, (mode, por)
        assert result.configurations == sleep.configurations, (mode, por)
        assert result.failures == sleep.failures, (mode, por)


def test_optimal_table(benchmark):
    benchmark(lambda: None)
    emit("Optimal DPOR (wakeup trees) vs. source-DPOR, 3-replica scopes",
         "\n".join(
             f"{name:<20} source {r['source_seconds']:7.2f}s "
             f"({r['source_states']:>6} states)   optimal "
             f"{r['optimal_seconds']:7.2f}s ({r['optimal_states']:>6} "
             f"states)   {r['speedup']:>5.2f}x wall, "
             f"{r['state_reduction']:>5.2f}x states, "
             f"{r['wakeup_branches']} branches, "
             f"{r['patch_cuts']} patch cuts, "
             f"{r['vacuity_drops']} vacuity drops"
             for name, r in RESULTS.items()
         ))
    artifact = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() \
        else {}
    artifact["optimal_3r"] = {
        "scope": "dpor_3r scopes, source vs optimal, min of "
                 f"{ROUNDS} interleaved runs",
        "entries": RESULTS,
    }
    JSON_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    # Gates: the walk shrinks on every scope, full expansions are gone
    # everywhere, and wall clock never regresses past the noise floor.
    assert all(
        r["state_reduction"] >= 1.0 for r in RESULTS.values()
    ), RESULTS
    assert all(
        r["optimal_full_expansions"] == 0 for r in RESULTS.values()
    ), RESULTS
    assert all(
        r["speedup"] >= SPEEDUP_FLOOR for r in RESULTS.values()
    ), RESULTS
