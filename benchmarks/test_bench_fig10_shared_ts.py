"""Fig. 10/11 — timestamp-order composition needs a shared generator.

Regenerates: the two-RGA execution whose interleaved timestamps (``ts1 <
ts2 < ts3`` for o2, ``ts'1 < ts'2`` for o1, with ``e`` visible before
``a``) make the composed history non-RA-linearizable under the unrestricted
composition ⊗ — and shows that under ⊗ts (Fig. 11's shared timestamp
generator) the very same action sequence produces coherent timestamps and an
RA-linearizable history (Theorem 5.5).
"""

from conftest import emit
from repro.runtime.composition import check_composed_ra_linearizable
from repro.scenarios import fig10_two_rgas
from repro.specs import RGASpec


def test_fig10_independent_clocks_fail(benchmark):
    scenario = fig10_two_rgas(shared_timestamps=False)

    def check():
        return check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )

    result = benchmark(check)
    assert not result.ok
    assert scenario.labels["o2.read"].ret == ("e", "d", "c")
    assert scenario.labels["o1.read"].ret == ("b", "a")


def test_fig10_shared_clock_succeeds(benchmark):
    scenario = fig10_two_rgas(shared_timestamps=True)

    def check():
        return check_composed_ra_linearizable(
            scenario.history, {"o1": RGASpec(), "o2": RGASpec()}
        )

    result = benchmark(check)
    assert result.ok
    # The paper's impossibility argument: under ⊗ts, a's timestamp must
    # exceed e's (delivered before a), so the Fig. 10 pattern is unreachable.
    a = scenario.labels["o1.addAfter(◦,a)"]
    e = scenario.labels["o2.addAfter(◦,e)"]
    assert e.ts < a.ts
    emit(
        "Fig. 10 — two RGAs: composition of TO objects",
        "⊗   (independent timestamp generators) : NOT RA-linearizable "
        "[paper: counterexample]\n"
        "⊗ts (shared timestamp generator)       : RA-linearizable     "
        "[paper: Theorem 5.5]\n"
        f"under ⊗ts the reads become o2:{fig10_two_rgas(True).labels['o2.read'].ret} "
        f"o1:{fig10_two_rgas(True).labels['o1.read'].ret}",
    )
