"""Fig. 14 / Lemmas C.1–C.2 — the API matters: addAt specifications.

Regenerates: the addAt history with final read ``d·e·c``; the exhaustive
check that all ten linear extensions (the ones Lemma C.1 enumerates) fail
against Spec(addAt1) and Spec(addAt2); and the successful
timestamp-order RA-linearization against Spec(addAt3) (Lemma C.2).
"""

from conftest import emit
from repro.core.ralin import check_ra_linearizable, timestamp_order_check
from repro.scenarios import fig14_addat
from repro.specs import AddAt1Spec, AddAt2Spec, AddAt3Spec


def test_fig14_addat1_rejected(benchmark):
    scenario = fig14_addat()

    def check():
        return check_ra_linearizable(
            scenario.history, AddAt1Spec(), prune_with_spec=False
        )

    result = benchmark(check)
    assert not result.ok
    assert result.explored == 10  # exactly Lemma C.1's ten linearizations


def test_fig14_addat2_rejected(benchmark):
    scenario = fig14_addat()
    result = benchmark(check_ra_linearizable, scenario.history, AddAt2Spec())
    assert not result.ok


def test_fig14_addat3_accepted(benchmark):
    scenario = fig14_addat()
    result = benchmark(check_ra_linearizable, scenario.history, AddAt3Spec())
    assert result.ok


def test_fig14_addat3_timestamp_order(benchmark):
    scenario = fig14_addat()

    def check():
        return timestamp_order_check(
            scenario.history, AddAt3Spec(), scenario.system.generation_order
        )

    result = benchmark(check)
    assert result.ok
    emit(
        "Fig. 14 — RGA with addAt(a, k) interface (read ⇒ d·e·c)",
        "Spec(addAt1) (no tombstones)        : NOT RA-linearizable — all 10 "
        "linearizations fail [Lemma C.1]\n"
        "Spec(addAt2) (tombstoned index)     : NOT RA-linearizable "
        "[Lemma C.1]\n"
        "Spec(addAt3) (local-view returns)   : RA-linearizable via "
        "timestamp order [Lemma C.2]",
    )
