"""Exhaustive small-scope verification cost (our measurement).

For each op-based CRDT: explore *every* interleaving of a conflict-heavy
two-replica program (hundreds to thousands of configurations) and check
each against the entry's EO/TO linearization class — a bounded, executable
analogue of the paper's per-CRDT Boogie proofs.
"""

import pytest

from conftest import emit
from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.registry import ALL_ENTRIES

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]
SB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "SB"]
OUTCOMES = {}


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_exhaustive_cost(benchmark, entry):
    result = benchmark.pedantic(
        exhaustive_verify,
        args=(entry, standard_programs(entry)),
        rounds=1,
        iterations=1,
    )
    OUTCOMES[entry.name] = result
    assert result.ok, result.failures


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_exhaustive_state_cost(benchmark, entry):
    result = benchmark.pedantic(
        exhaustive_verify_state,
        args=(entry, standard_programs(entry)),
        kwargs={"max_gossips": 2},
        rounds=1,
        iterations=1,
    )
    OUTCOMES[entry.name] = result
    assert result.ok, result.failures


def test_exhaustive_table(benchmark):
    benchmark(lambda: None)
    rows = [
        f"{name:<15} {res.configurations:>6} interleavings, all "
        f"RA-linearizable"
        for name, res in sorted(OUTCOMES.items())
    ]
    emit("Exhaustive small-scope verification (op-based entries)",
         "\n".join(rows))
    assert all(res.ok for res in OUTCOMES.values())
