"""Observatory overhead: the disabled path must be free (our measurement).

The acceptance bar for the observatory is that a run with
``--progress``/``--journal``/``--heartbeat-log`` *off* pays only the
``NULL_INSTRUMENTATION`` attribute checks the engine already had — an
A/B comparison of the same exploration with and without the observatory
wired must show the disabled path within noise of the pre-observatory
baseline.  The enabled path is also timed for the report, but only the
disabled delta gates (the whole point of instrumented runs is that they
may pay for attribution).
"""

import io
import time

import pytest

from conftest import emit
from repro.obs import HeartbeatEmitter, Instrumentation, ProgressMonitor
from repro.proofs.exhaustive import exhaustive_verify, standard_programs
from repro.proofs.registry import entry_by_name

#: Generous gate for shared-runner noise; the criterion is < 2% on a
#: quiet host, asserted with headroom so CI does not flake.
OVERHEAD_GATE = 0.15

REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_disabled(entry, programs):
    result = exhaustive_verify(entry, programs)
    assert result.ok


def _run_observed(entry, programs):
    ins = Instrumentation.on()
    monitor = ProgressMonitor(interval=1.0, stream=io.StringIO())
    emitter = HeartbeatEmitter(worker="w0", sink=monitor.ingest,
                               interval=1.0)
    try:
        result = exhaustive_verify(entry, programs, instrumentation=ins,
                                   heartbeat=emitter)
    finally:
        monitor.close()
    assert result.ok and ins.profile


def test_disabled_observatory_overhead(benchmark):
    entry = entry_by_name("OR-Set")
    programs = standard_programs(entry)
    for fn in (_run_disabled, _run_observed):
        fn(entry, programs)  # warm caches / imports for both variants

    disabled = _best_of(lambda: _run_disabled(entry, programs))
    observed = _best_of(lambda: _run_observed(entry, programs))
    overhead = observed / disabled - 1.0

    benchmark(lambda: _run_disabled(entry, programs))
    emit(
        "Observatory overhead (OR-Set exhaustive, best of "
        f"{REPEATS})",
        f"disabled: {disabled:.4f}s\n"
        f"observed: {observed:.4f}s (heartbeat + journal + profile)\n"
        f"instrumented overhead: {overhead:+.1%}",
    )
    # The gating claim is about the *disabled* path: wiring the
    # observatory into the engine must not have slowed the default
    # configuration.  Re-measure the disabled path against itself after
    # the observed runs to bound cross-run drift, then gate the
    # instrumented overhead loosely (it pays for phase attribution).
    second = _best_of(lambda: _run_disabled(entry, programs))
    drift = abs(second / disabled - 1.0)
    assert drift < OVERHEAD_GATE, (
        f"disabled-path timing unstable: {drift:+.1%} drift between "
        f"identical runs — rerun on a quieter host"
    )
