"""Compositional per-object proof rule vs whole-store product (Sec. 5).

On a 3-object ⊗ts store, run `verify_store` (per-object exhaustion plus
the side-condition sweep) and `product_verify_store` (every interleaving
of the composed system, checked against the composed spec) on the same
small store programs, and record wall times and the speedup in the
``compose_3r`` section of ``BENCH_explore.json``.  Wall clocks are the
min over interleaved runs so a noisy neighbour does not sink either
side; every round asserts the two routes agree on the verdict — the
differential guarantee of Theorems 5.3/5.5.

The programs stay at one op per object per replica: the product space
multiplies per-object interleavings, so even this scope explores ~600
product configurations where the compositional route explores a handful
per object — and anything larger puts the product side out of bench
range entirely (the point of the rule).
"""

import json
import time
from pathlib import Path

from conftest import emit
from repro.proofs.compositional import (
    parse_store_spec,
    product_verify_store,
    verify_store,
)
from repro.proofs.exhaustive import standard_programs

ROUNDS = 3
RESULTS = {}
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"

STORE_SPEC = "counter:1,orset:1,lww_register:1"


def _store_and_programs():
    store = parse_store_spec(STORE_SPEC)
    programs = {"r1": [], "r2": []}
    for obj, entry in store.objects:
        per_object = standard_programs(entry)
        for replica in programs:
            ops = per_object.get(replica, [])
            if ops:
                programs[replica].append((ops[0][0], ops[0][1], obj))
    return store, programs


def _measure():
    """Interleaved min-of-N for both routes; returns the best runs."""
    store, programs = _store_and_programs()
    best = {}
    for _ in range(ROUNDS):
        started = time.perf_counter()
        compositional = verify_store(store, programs)
        compositional_wall = time.perf_counter() - started
        started = time.perf_counter()
        product = product_verify_store(store, programs)
        product_wall = time.perf_counter() - started
        assert compositional.ok == product.ok, (
            compositional.failures, product.failures
        )
        assert compositional.ok, compositional.failures
        if "compositional" not in best or \
                compositional_wall < best["compositional"][1]:
            best["compositional"] = (compositional, compositional_wall)
        if "product" not in best or product_wall < best["product"][1]:
            best["product"] = (product, product_wall)
    return best["compositional"], best["product"]


def test_compose_3r_speedup(benchmark):
    (compositional, compositional_wall), (product, product_wall) = \
        benchmark.pedantic(_measure, rounds=1, iterations=1)
    RESULTS[STORE_SPEC] = {
        "compositional_seconds": round(compositional_wall, 4),
        "product_seconds": round(product_wall, 4),
        "speedup": round(product_wall / compositional_wall, 2),
        "objects": len(compositional.objects),
        "object_configurations": compositional.configurations,
        "side_condition_checks": compositional.side_condition_checks,
        "product_configurations": product.configurations,
        "verdicts_agree": compositional.ok == product.ok,
    }


def test_compose_table(benchmark):
    benchmark(lambda: None)
    emit("Compositional per-object rule vs whole-store product, "
         "3-object ⊗ts store",
         "\n".join(
             f"{name:<32} compositional {r['compositional_seconds']:7.3f}s "
             f"({r['object_configurations']:>4} configs + "
             f"{r['side_condition_checks']} sweep)   product "
             f"{r['product_seconds']:7.3f}s "
             f"({r['product_configurations']:>5} configs)   "
             f"{r['speedup']:>6.2f}x wall"
             for name, r in RESULTS.items()
         ))
    artifact = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() \
        else {}
    artifact["compose_3r"] = {
        "scope": f"3-object ⊗ts store, 1 op per object per replica on 2 "
                 f"replicas, min of {ROUNDS} interleaved runs",
        "entries": RESULTS,
    }
    JSON_PATH.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    # Acceptance: the compositional route is >= 5x faster than product
    # exploration on the 3-object store, verdicts identical.
    assert all(r["verdicts_agree"] for r in RESULTS.values()), RESULTS
    assert max(r["speedup"] for r in RESULTS.values()) >= 5.0, RESULTS
