"""Workload adequacy of the harness (our measurement).

Prints, per CRDT, how much genuine concurrency and partial visibility the
randomized workloads generated — the evidence that the green Fig. 12 table
is not vacuous.
"""

import pytest

from conftest import emit
from repro.proofs.coverage import format_coverage, measure_coverage
from repro.proofs.registry import ALL_ENTRIES

REPORTS = {}


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
def test_coverage_cost(benchmark, entry):
    report = benchmark.pedantic(
        measure_coverage,
        args=(entry,),
        kwargs={"executions": 5, "operations": 10},
        rounds=1,
        iterations=1,
    )
    REPORTS[entry.name] = report
    assert report.has_concurrency


def test_coverage_table(benchmark):
    benchmark(lambda: None)
    reports = [REPORTS[name] for name in sorted(REPORTS)]
    emit("Workload adequacy (5 executions × 10 ops per entry)",
         format_coverage(reports))
    assert reports
