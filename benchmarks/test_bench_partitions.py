"""Availability under partition (Sec. 1's motivation) — our measurement.

Regenerates: a partition/heal cycle on the Cluster facade; operations stay
available on both sides of the split, healing reaches quiescence, and the
healed history RA-linearizes.  Timed across partition-cycle counts.
"""

import pytest

from repro.core.errors import PreconditionViolation
from repro.proofs.registry import entry_by_name
from repro.runtime import Cluster

import random


def partitioned_run(entry, cycles):
    rng = random.Random(cycles)
    cluster = Cluster(entry.make_crdt(), replicas=("r1", "r2", "r3"))
    workload = entry.make_workload()
    for _ in range(cycles):
        cluster.partition(["r1"], ["r2", "r3"])
        for _ in range(4):
            replica = rng.choice(cluster.replicas)
            proposal = workload.propose(cluster[replica].state(), rng)
            if proposal is None:
                continue
            method, args = proposal
            try:
                getattr(cluster[replica], method)(*args)
            except PreconditionViolation:
                continue
        cluster.heal()
    for replica in cluster.replicas:
        cluster[replica].read()
    return cluster


@pytest.mark.parametrize("cycles", [1, 3, 6])
def test_partition_heal_cycles(benchmark, cycles):
    entry = entry_by_name("OR-Set")
    cluster = benchmark(partitioned_run, entry, cycles)
    assert cluster.converged()
    assert cluster.check(entry.make_spec(), entry.make_gamma()).ok
