"""Fig. 8 — RGA: execution-order fails, timestamp-order succeeds.

Regenerates: the two-replica execution where ``addAfter(◦,b)`` executes
first but carries the larger timestamp; the execution-order candidate is
rejected (the read ``b·a`` cannot be explained) while the timestamp-order
candidate — with the read's *virtual* timestamp placing it before
``addAfter(b,c)`` — is accepted.
"""

from conftest import emit
from repro.core.ralin import execution_order_check, timestamp_order_check
from repro.scenarios import fig8_rga
from repro.specs import RGASpec


def test_fig8_execution_order_rejected(benchmark):
    scenario = fig8_rga()

    def check():
        return execution_order_check(
            scenario.history, RGASpec(), scenario.system.generation_order
        )

    result = benchmark(check)
    assert not result.ok


def test_fig8_timestamp_order_accepted(benchmark):
    scenario = fig8_rga()

    def check():
        return timestamp_order_check(
            scenario.history, RGASpec(), scenario.system.generation_order
        )

    result = benchmark(check)
    assert result.ok
    labels = scenario.labels
    order = result.update_order
    assert order == [labels["ℓ1"], labels["ℓ2"], labels["ℓ3"]]
    emit(
        "Fig. 8 — execution-order vs timestamp-order linearizations (RGA)",
        f"read returns              : {labels['ℓ4'].ret}  [paper: b·a]\n"
        "execution-order candidate : REJECTED   [paper: not a valid "
        "RA-linearization]\n"
        "timestamp-order candidate : ACCEPTED   [paper: ℓ1·ℓ2·ℓ4·ℓ3]\n"
        "witness: "
        + " · ".join(repr(l) for l in result.linearization),
    )
