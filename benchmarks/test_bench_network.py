"""Causal broadcast over an adversarial network (our measurement).

The Fig. 7 semantics assumes causal, exactly-once delivery; the
`UnreliableCausalBroadcast` layer implements it over duplication,
reordering, and loss.  This benchmark measures the delivery overhead as
loss rates climb, asserting quiescence + convergence each time.
"""

import random

import pytest

from conftest import emit
from repro.core.convergence import check_convergence
from repro.core.errors import PreconditionViolation
from repro.proofs.registry import entry_by_name
from repro.runtime import OpBasedSystem
from repro.runtime.causal_broadcast import UnreliableCausalBroadcast

RATES = [0.0, 0.2, 0.4]
STATS = {}


def run(drop_rate):
    entry = entry_by_name("OR-Set")
    rng = random.Random(7)
    system = OpBasedSystem(entry.make_crdt(), replicas=("r1", "r2", "r3"))
    network = UnreliableCausalBroadcast(
        system, seed=7, duplicate_probability=drop_rate,
        drop_probability=drop_rate,
    )
    workload = entry.make_workload()
    issued = 0
    while issued < 15:
        replica = rng.choice(system.replicas)
        proposal = workload.propose(system.state(replica), rng)
        if proposal is None:
            continue
        try:
            system.invoke(replica, *proposal)
            issued += 1
        except PreconditionViolation:
            continue
        network.broadcast_new()
        network.deliver_one()
    network.run_to_quiescence()
    return system, network


@pytest.mark.parametrize("rate", RATES)
def test_network_adversity_cost(benchmark, rate):
    system, network = benchmark(run, rate)
    assert system.pending_count() == 0
    ok, _ = check_convergence(system.replica_views())
    assert ok
    STATS[rate] = network.stats


def test_network_stats_table(benchmark):
    benchmark(lambda: None)
    rows = [
        f"drop/dup rate {rate:>4}: sent={s.packets_sent:>4} "
        f"dropped={s.drops:>3} duplicated={s.duplicates:>3} "
        f"retransmitted={s.retransmissions:>3} buffered={s.buffered:>3}"
        for rate, s in sorted(STATS.items())
    ]
    emit("Causal broadcast under network adversity (15 ops, 3 replicas)",
         "\n".join(rows))
    assert STATS
