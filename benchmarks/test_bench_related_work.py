"""Sec. 7 — placing RA-linearizability among neighbouring criteria.

Regenerates the paper's comparison claims as executable checks:

* **causal convergence** (Burckhardt et al. / Bouajjani et al.): implied by
  RA-linearizability, but *weaker* — the Fig. 10 ⊗ history is causally
  convergent yet not RA-linearizable (the CC update order may contradict
  visibility, which is also why CC fails to compose);
* **session guarantees** (Terry et al.): implied — every history the
  causal op-based runtime produces satisfies RYW, monotonic reads, and
  session-order inheritance.
"""

from conftest import emit
from repro.core.causal import check_causal_convergence
from repro.core.ralin import check_ra_linearizable
from repro.core.sessions import check_session_guarantees
from repro.core.spec import ComposedSpec
from repro.proofs.registry import entry_by_name
from repro.runtime import random_op_execution
from repro.scenarios import fig10_two_rgas
from repro.specs import RGASpec


def test_causal_convergence_strictly_weaker(benchmark):
    scenario = fig10_two_rgas(shared_timestamps=False)
    spec = ComposedSpec({"o1": RGASpec(), "o2": RGASpec()})

    def check():
        return check_causal_convergence(scenario.history, spec)

    cc = benchmark(check)
    ra = check_ra_linearizable(scenario.history, spec)
    assert cc.ok and not ra.ok
    emit(
        "Sec. 7 — RA-linearizability vs causal convergence (Fig. 10 "
        "⊗ history)",
        "causally convergent  : YES (update order free to contradict vis)\n"
        "RA-linearizable      : NO  (update order must respect vis)\n"
        "[paper: RA-lin requires consistency with visibility; CC does not, "
        "and is not compositional]",
    )


def test_session_guarantees_hold(benchmark):
    entry = entry_by_name("OR-Set")
    system = random_op_execution(
        entry.make_crdt(), entry.make_workload(), operations=15, seed=8
    )

    def check():
        return check_session_guarantees(
            system.history(), system.generation_order
        )

    report = benchmark(check)
    assert report.all_hold, report.violations
    emit(
        "Sec. 7 — session guarantees on runtime histories",
        "read-your-writes / monotonic reads / session-order inheritance: "
        "all hold\n[paper: RA-linearizability is stronger than the session "
        "guarantees]",
    )
