"""Op-based LWW register (Listing 4)."""

from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import OpLWWRegister
from repro.crdts.base import Effector


class TestOpLWWRegister:
    def setup_method(self):
        self.crdt = OpLWWRegister()

    def test_initial(self):
        assert self.crdt.initial_state() == (None, BOTTOM)

    def test_write_installs_value(self):
        ts = Timestamp(1, "r1")
        result = self.crdt.generator(self.crdt.initial_state(), "write", ("a",), ts)
        state = self.crdt.apply_effector(self.crdt.initial_state(), result.effector)
        assert state == ("a", ts)

    def test_smaller_timestamp_loses(self):
        newer = ("b", Timestamp(5, "r1"))
        eff = Effector("write", ("a", Timestamp(3, "r2")))
        assert self.crdt.apply_effector(newer, eff) == newer

    def test_larger_timestamp_wins(self):
        older = ("a", Timestamp(3, "r2"))
        eff = Effector("write", ("b", Timestamp(5, "r1")))
        assert self.crdt.apply_effector(older, eff) == ("b", Timestamp(5, "r1"))

    def test_read(self):
        result = self.crdt.generator(("a", Timestamp(1, "r1")), "read", (), BOTTOM)
        assert result.ret == "a" and result.effector is None

    def test_concurrent_writes_commute(self):
        e1 = Effector("write", ("a", Timestamp(1, "r1")))
        e2 = Effector("write", ("b", Timestamp(1, "r2")))
        state = self.crdt.initial_state()
        ab = self.crdt.apply_effector(self.crdt.apply_effector(state, e1), e2)
        ba = self.crdt.apply_effector(self.crdt.apply_effector(state, e2), e1)
        assert ab == ba == ("b", Timestamp(1, "r2"))

    def test_custom_initial_value(self):
        crdt = OpLWWRegister(initial_value="x0")
        assert crdt.initial_state() == ("x0", BOTTOM)
