"""Op-based RGA (Listing 1): Ti-tree, tombstones, traversal."""

import pytest

from repro.core.sentinels import ROOT
from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import OpRGA
from repro.crdts.base import Effector
from repro.crdts.opbased.rga import traverse, tree_elements


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


class TestTraverse:
    def test_empty_tree(self):
        assert traverse(frozenset(), frozenset()) == ()

    def test_single_chain(self):
        nodes = frozenset({(ROOT, ts(1), "a"), ("a", ts(2), "b")})
        assert traverse(nodes, frozenset()) == ("a", "b")

    def test_siblings_by_descending_timestamp(self):
        nodes = frozenset({
            (ROOT, ts(1, "r1"), "a"),
            (ROOT, ts(1, "r2"), "b"),  # (1,r2) > (1,r1): b first
        })
        assert traverse(nodes, frozenset()) == ("b", "a")

    def test_fig2_shape(self):
        # ta < tc < tb: children of ◦ ordered b, c... paper's tree has
        # a then b,c as children of a.  Reconstruct: ◦→a, a→{b,c}.
        nodes = frozenset({
            (ROOT, ts(1), "a"),
            ("a", ts(3), "b"),
            ("a", ts(2), "c"),
        })
        assert traverse(nodes, frozenset()) == ("a", "b", "c")

    def test_tombstoned_skipped_but_subtree_kept(self):
        nodes = frozenset({
            (ROOT, ts(1), "a"),
            ("a", ts(2), "b"),
        })
        assert traverse(nodes, frozenset({"a"})) == ("b",)

    def test_tree_elements(self):
        nodes = frozenset({(ROOT, ts(1), "a"), ("a", ts(2), "b")})
        assert tree_elements(nodes) == {"a", "b"}


class TestOpRGA:
    def setup_method(self):
        self.crdt = OpRGA()

    def test_precondition_add_after_root(self):
        assert self.crdt.precondition(self.crdt.initial_state(), "addAfter", (ROOT, "a"))

    def test_precondition_missing_anchor(self):
        assert not self.crdt.precondition(
            self.crdt.initial_state(), "addAfter", ("ghost", "a")
        )

    def test_precondition_tombstoned_anchor(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset({"a"}))
        assert not self.crdt.precondition(state, "addAfter", ("a", "b"))

    def test_precondition_duplicate_value(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        assert not self.crdt.precondition(state, "addAfter", (ROOT, "a"))

    def test_precondition_remove(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        assert self.crdt.precondition(state, "remove", ("a",))
        assert not self.crdt.precondition(state, "remove", ("ghost",))
        assert not self.crdt.precondition(state, "remove", (ROOT,))

    def test_precondition_remove_twice(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset({"a"}))
        assert not self.crdt.precondition(state, "remove", ("a",))

    def test_add_effector(self):
        result = self.crdt.generator(
            self.crdt.initial_state(), "addAfter", (ROOT, "a"), ts(1)
        )
        state = self.crdt.apply_effector(self.crdt.initial_state(), result.effector)
        assert state == (frozenset({(ROOT, ts(1), "a")}), frozenset())

    def test_remove_effector(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        result = self.crdt.generator(state, "remove", ("a",), BOTTOM)
        after = self.crdt.apply_effector(state, result.effector)
        assert after[1] == frozenset({"a"})

    def test_read(self):
        state = (frozenset({(ROOT, ts(1), "a"), ("a", ts(2), "b")}), frozenset({"a"}))
        result = self.crdt.generator(state, "read", (), BOTTOM)
        assert result.ret == ("b",) and result.effector is None

    def test_concurrent_adds_commute(self):
        e1 = Effector("addAfter", (ROOT, ts(1, "r1"), "a"))
        e2 = Effector("addAfter", (ROOT, ts(1, "r2"), "b"))
        s0 = self.crdt.initial_state()
        ab = self.crdt.apply_effector(self.crdt.apply_effector(s0, e1), e2)
        ba = self.crdt.apply_effector(self.crdt.apply_effector(s0, e2), e1)
        assert ab == ba

    def test_add_remove_commute(self):
        # addAfter(a,b) concurrent with remove(a): the tombstone keeps the
        # parent available (Sec. 2.1).
        base = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        add = Effector("addAfter", ("a", ts(2, "r2"), "b"))
        rem = Effector("remove", ("a",))
        ab = self.crdt.apply_effector(self.crdt.apply_effector(base, add), rem)
        ba = self.crdt.apply_effector(self.crdt.apply_effector(base, rem), add)
        assert ab == ba
        assert traverse(*ab) == ("b",)
