"""State-based G-Set and 2P-Set (Listing 10)."""

from repro.core.label import Label
from repro.core.timestamp import BOTTOM
from repro.crdts import SB2PSet, SBGSet


class TestSBGSet:
    def setup_method(self):
        self.crdt = SBGSet()

    def test_add_read(self):
        _, state = self.crdt.apply(
            self.crdt.initial_state(), "add", ("a",), BOTTOM, "r1"
        )
        assert self.crdt.apply(state, "read", (), BOTTOM, "r1")[0] == {"a"}

    def test_merge_union(self):
        assert self.crdt.merge(frozenset({"a"}), frozenset({"b"})) == {"a", "b"}

    def test_local_effector_idempotent(self):
        arg = self.crdt.effector_args(Label("add", ("a",)))
        once = self.crdt.apply_local(frozenset(), arg)
        assert self.crdt.apply_local(once, arg) == once

    def test_predicate_p(self):
        arg = ("add", "a")
        assert self.crdt.predicate_p(frozenset(), arg)
        assert not self.crdt.predicate_p(frozenset({"a"}), arg)


class TestSB2PSet:
    def setup_method(self):
        self.crdt = SB2PSet()

    def test_add_remove_read(self):
        state = self.crdt.initial_state()
        _, state = self.crdt.apply(state, "add", ("a",), BOTTOM, "r1")
        _, state = self.crdt.apply(state, "add", ("b",), BOTTOM, "r1")
        _, state = self.crdt.apply(state, "remove", ("a",), BOTTOM, "r1")
        assert self.crdt.apply(state, "read", (), BOTTOM, "r1")[0] == {"b"}

    def test_remove_is_permanent(self):
        state = (frozenset({"a"}), frozenset({"a"}))
        # re-adding has no observable effect (a stays tombstoned)
        _, after = self.crdt.apply(state, "add", ("a",), BOTTOM, "r1")
        assert self.crdt.apply(after, "read", (), BOTTOM, "r1")[0] == frozenset()

    def test_remove_precondition(self):
        empty = self.crdt.initial_state()
        assert not self.crdt.precondition(empty, "remove", ("a",))
        added = (frozenset({"a"}), frozenset())
        assert self.crdt.precondition(added, "remove", ("a",))
        removed = (frozenset({"a"}), frozenset({"a"}))
        assert not self.crdt.precondition(removed, "remove", ("a",))

    def test_merge_union_both_components(self):
        s1 = (frozenset({"a"}), frozenset())
        s2 = (frozenset({"b"}), frozenset({"a"}))
        assert self.crdt.merge(s1, s2) == (frozenset({"a", "b"}), frozenset({"a"}))

    def test_compare(self):
        s1 = (frozenset({"a"}), frozenset())
        s2 = (frozenset({"a", "b"}), frozenset({"a"}))
        assert self.crdt.compare(s1, s2) and not self.crdt.compare(s2, s1)

    def test_local_effectors_idempotent(self):
        add = self.crdt.effector_args(Label("add", ("a",)))
        rem = self.crdt.effector_args(Label("remove", ("a",)))
        state = self.crdt.initial_state()
        once = self.crdt.apply_local(state, add)
        assert self.crdt.apply_local(once, add) == once
        removed = self.crdt.apply_local(once, rem)
        assert self.crdt.apply_local(removed, rem) == removed

    def test_predicate_p(self):
        state = (frozenset({"a"}), frozenset())
        assert not self.crdt.predicate_p(state, ("add", "a"))
        assert self.crdt.predicate_p(state, ("add", "b"))
        assert self.crdt.predicate_p(state, ("remove", "a"))
