"""State-based LWW register."""

from repro.core.label import Label
from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import SBLWWRegister
from repro.runtime import StateBasedSystem


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


class TestSBLWWRegister:
    def setup_method(self):
        self.crdt = SBLWWRegister()

    def test_initial(self):
        assert self.crdt.initial_state() == (None, BOTTOM)

    def test_write_and_read(self):
        _, state = self.crdt.apply(
            self.crdt.initial_state(), "write", ("a",), ts(1), "r1"
        )
        assert self.crdt.apply(state, "read", (), BOTTOM, "r1")[0] == "a"

    def test_merge_keeps_newer(self):
        older = ("a", ts(1, "r1"))
        newer = ("b", ts(2, "r2"))
        assert self.crdt.merge(older, newer) == newer
        assert self.crdt.merge(newer, older) == newer

    def test_merge_idempotent(self):
        state = ("a", ts(1))
        assert self.crdt.merge(state, state) == state

    def test_compare(self):
        older = ("a", ts(1))
        newer = ("b", ts(2))
        assert self.crdt.compare(older, newer)
        assert not self.crdt.compare(newer, older)
        assert self.crdt.compare(older, older)

    def test_local_effector(self):
        label = Label("write", ("a",), ts=ts(2), origin="r1")
        arg = self.crdt.effector_args(label)
        assert arg == ("a", ts(2))
        assert self.crdt.apply_local(("x", ts(1)), arg) == ("a", ts(2))
        assert self.crdt.apply_local(("x", ts(3)), arg) == ("x", ts(3))

    def test_predicate_and_order(self):
        assert self.crdt.predicate_p(("x", ts(1)), ("a", ts(2)))
        assert not self.crdt.predicate_p(("x", ts(3)), ("a", ts(2)))
        assert self.crdt.arg_lt(("a", ts(1)), ("b", ts(2)))

    def test_end_to_end_last_writer_wins(self):
        system = StateBasedSystem(SBLWWRegister(), replicas=("r1", "r2"))
        system.invoke("r1", "write", ("a",))
        system.gossip("r1", "r2")
        system.invoke("r2", "write", ("b",))  # larger Lamport ts
        system.sync_all()
        assert system.invoke("r1", "read").ret == "b"
        assert system.invoke("r2", "read").ret == "b"

    def test_custom_initial(self):
        assert SBLWWRegister(initial_value="x0").initial_state()[0] == "x0"
