"""State-based multi-value register (Listing 7)."""

from repro.core.label import Label
from repro.core.timestamp import BOTTOM, VersionVector
from repro.crdts import SBMVRegister


class TestSBMVRegister:
    def setup_method(self):
        self.crdt = SBMVRegister()

    def _write(self, state, value, replica):
        return self.crdt.apply(state, "write", (value,), BOTTOM, replica)

    def test_write_returns_fresh_vector(self):
        vv, state = self._write(self.crdt.initial_state(), "a", "r1")
        assert vv == VersionVector.of({"r1": 1})
        assert state == frozenset({("a", vv)})

    def test_sequential_writes_dominate(self):
        _, s1 = self._write(self.crdt.initial_state(), "a", "r1")
        vv2, s2 = self._write(s1, "b", "r1")
        assert s2 == frozenset({("b", vv2)})
        assert vv2 == VersionVector.of({"r1": 2})

    def test_concurrent_writes_coexist_after_merge(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._write(s0, "a", "r1")
        _, s2 = self._write(s0, "b", "r2")
        merged = self.crdt.merge(s1, s2)
        ret, _ = self.crdt.apply(merged, "read", (), BOTTOM, "r1")
        assert ret == frozenset({"a", "b"})

    def test_write_after_merge_dominates_both(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._write(s0, "a", "r1")
        _, s2 = self._write(s0, "b", "r2")
        merged = self.crdt.merge(s1, s2)
        vv3, s3 = self._write(merged, "c", "r1")
        assert s3 == frozenset({("c", vv3)})
        assert vv3 == VersionVector.of({"r1": 2, "r2": 1})

    def test_merge_drops_dominated(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._write(s0, "a", "r1")
        _, s2 = self._write(s1, "b", "r1")
        assert self.crdt.merge(s1, s2) == s2

    def test_merge_idempotent_commutative(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._write(s0, "a", "r1")
        _, s2 = self._write(s0, "b", "r2")
        assert self.crdt.merge(s1, s1) == s1
        assert self.crdt.merge(s1, s2) == self.crdt.merge(s2, s1)

    def test_compare(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._write(s0, "a", "r1")
        _, s2 = self._write(s1, "b", "r1")
        assert self.crdt.compare(s1, s2)
        assert not self.crdt.compare(s2, s1)

    def test_effector_args_from_return(self):
        vv, _state = self._write(self.crdt.initial_state(), "a", "r1")
        label = Label("write", ("a",), ret=vv, origin="r1")
        assert self.crdt.effector_args(label) == ("a", vv)

    def test_apply_local_matches_write_effect(self):
        s0 = self.crdt.initial_state()
        vv, s1 = self._write(s0, "a", "r1")
        assert self.crdt.apply_local(s0, ("a", vv)) == s1

    def test_arg_order(self):
        a = ("a", VersionVector.of({"r1": 1}))
        b = ("b", VersionVector.of({"r1": 2}))
        c = ("c", VersionVector.of({"r2": 1}))
        assert self.crdt.arg_lt(a, b)
        assert not self.crdt.arg_lt(b, a)
        assert not self.crdt.arg_lt(a, c) and not self.crdt.arg_lt(c, a)

    def test_predicate_p(self):
        vv1 = VersionVector.of({"r1": 1})
        vv2 = VersionVector.of({"r1": 2})
        state = frozenset({("a", vv2)})
        assert not self.crdt.predicate_p(state, ("x", vv1))
        assert self.crdt.predicate_p(state, ("x", vv2.bump("r2")))
