"""Op-based counter (Listing 3)."""

from repro.core.timestamp import BOTTOM
from repro.crdts import OpCounter
from repro.crdts.base import Effector


class TestOpCounter:
    def setup_method(self):
        self.crdt = OpCounter()

    def test_initial(self):
        assert self.crdt.initial_state() == 0

    def test_inc_effector(self):
        result = self.crdt.generator(0, "inc", (), BOTTOM)
        assert result.effector == Effector("inc")
        assert self.crdt.apply_effector(0, result.effector) == 1

    def test_dec_effector(self):
        result = self.crdt.generator(0, "dec", (), BOTTOM)
        assert self.crdt.apply_effector(5, result.effector) == 4

    def test_read_is_pure(self):
        result = self.crdt.generator(7, "read", (), BOTTOM)
        assert result.ret == 7 and result.effector is None

    def test_effectors_commute(self):
        inc, dec = Effector("inc"), Effector("dec")
        for state in (-2, 0, 5):
            ab = self.crdt.apply_effector(self.crdt.apply_effector(state, inc), dec)
            ba = self.crdt.apply_effector(self.crdt.apply_effector(state, dec), inc)
            assert ab == ba
