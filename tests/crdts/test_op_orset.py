"""Op-based OR-Set (Listing 2)."""

from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import OpORSet
from repro.crdts.base import Effector


class TestOpORSet:
    def setup_method(self):
        self.crdt = OpORSet()

    def test_initial_empty(self):
        assert self.crdt.initial_state() == frozenset()

    def test_add_returns_identifier(self):
        ts = Timestamp(1, "r1")
        result = self.crdt.generator(frozenset(), "add", ("a",), ts)
        assert result.ret == ts
        state = self.crdt.apply_effector(frozenset(), result.effector)
        assert state == frozenset({("a", ts)})

    def test_remove_observes_current_pairs(self):
        k1, k2 = Timestamp(1, "r1"), Timestamp(2, "r2")
        state = frozenset({("a", k1), ("a", k2), ("b", k1)})
        result = self.crdt.generator(state, "remove", ("a",), BOTTOM)
        assert result.ret == frozenset({("a", k1), ("a", k2)})
        after = self.crdt.apply_effector(state, result.effector)
        assert after == frozenset({("b", k1)})

    def test_remove_absent_is_noop(self):
        result = self.crdt.generator(frozenset(), "remove", ("a",), BOTTOM)
        assert result.ret == frozenset()
        assert self.crdt.apply_effector(frozenset(), result.effector) == frozenset()

    def test_unobserved_add_survives_remove(self):
        # Fig. 4/5: the remove only erases observed pairs.
        k_seen, k_conc = Timestamp(1, "r1"), Timestamp(1, "r2")
        seen = frozenset({("a", k_seen)})
        remove = self.crdt.generator(seen, "remove", ("a",), BOTTOM).effector
        concurrent_add = Effector("add", ("a", k_conc))
        state = self.crdt.apply_effector(seen, concurrent_add)
        state = self.crdt.apply_effector(state, remove)
        assert state == frozenset({("a", k_conc)})

    def test_read(self):
        k = Timestamp(1, "r1")
        state = frozenset({("a", k), ("b", k)})
        result = self.crdt.generator(state, "read", (), BOTTOM)
        assert result.ret == frozenset({"a", "b"})

    def test_concurrent_add_remove_commute(self):
        k_seen, k_conc = Timestamp(1, "r1"), Timestamp(1, "r2")
        base = frozenset({("a", k_seen)})
        add = Effector("add", ("a", k_conc))
        remove = Effector("remove", (frozenset({("a", k_seen)}),))
        ab = self.crdt.apply_effector(self.crdt.apply_effector(base, add), remove)
        ba = self.crdt.apply_effector(self.crdt.apply_effector(base, remove), add)
        assert ab == ba
