"""Op-based Wooki (Listing 5): W-strings and integrateIns."""

from repro.core.sentinels import BEGIN, END
from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import OpWooki
from repro.crdts.opbased.wooki import WChar, integrate_ins, values_of


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


def wchar(counter, replica, value, degree, visible=True):
    return WChar(ts(counter, replica), value, degree, visible)


class TestIntegrateIns:
    def setup_method(self):
        self.crdt = OpWooki()
        self.initial = self.crdt.initial_state()

    def test_insert_into_empty(self):
        w = wchar(1, "r1", "a", 1)
        result = integrate_ins(self.initial, w, BEGIN, END)
        assert values_of(result) == ("a",)

    def test_concurrent_inserts_ordered_by_id(self):
        wa = wchar(1, "r1", "a", 1)
        wb = wchar(1, "r2", "b", 1)
        one = integrate_ins(integrate_ins(self.initial, wa, BEGIN, END), wb, BEGIN, END)
        two = integrate_ins(integrate_ins(self.initial, wb, BEGIN, END), wa, BEGIN, END)
        assert one == two  # convergence regardless of arrival order
        assert values_of(one) in (("a", "b"), ("b", "a"))

    def test_degree_fence_placement(self):
        # a inserted between sentinels (degree 1); x inserted between a and
        # END (degree 2).  A concurrent degree-1 insert b first settles
        # against the degree-1 fence {a} (b after a by id), then against
        # the inner degree-2 window {x} (b before x by id): a·b·x.
        wa = wchar(1, "r1", "a", 1)
        wx = wchar(2, "r1", "x", 2)
        state = integrate_ins(self.initial, wa, BEGIN, END)
        state = integrate_ins(state, wx, wa.wid, END)
        wb = wchar(1, "r2", "b", 1)
        merged = integrate_ins(state, wb, BEGIN, END)
        assert values_of(merged) == ("a", "b", "x")

    def test_convergence_three_concurrent(self):
        chars = [wchar(1, f"r{i}", f"v{i}", 1) for i in range(3)]
        import itertools

        results = set()
        for perm in itertools.permutations(chars):
            state = self.initial
            for c in perm:
                state = integrate_ins(state, c, BEGIN, END)
            results.add(state)
        assert len(results) == 1


class TestOpWooki:
    def setup_method(self):
        self.crdt = OpWooki()

    def _with_a(self):
        state = self.crdt.initial_state()
        result = self.crdt.generator(state, "addBetween", (BEGIN, "a", END), ts(1))
        return self.crdt.apply_effector(state, result.effector)

    def test_add_between(self):
        state = self._with_a()
        assert values_of(state) == ("a",)

    def test_degree_computed_from_neighbours(self):
        state = self._with_a()
        result = self.crdt.generator(state, "addBetween", ("a", "x", END), ts(2))
        w = result.effector.args[0]
        assert w.degree == 2

    def test_remove_hides(self):
        state = self._with_a()
        result = self.crdt.generator(state, "remove", ("a",), BOTTOM)
        after = self.crdt.apply_effector(state, result.effector)
        assert values_of(after) == ()
        assert len(after) == 3  # char retained, flag flipped

    def test_read(self):
        state = self._with_a()
        assert self.crdt.generator(state, "read", (), BOTTOM).ret == ("a",)

    def test_preconditions(self):
        state = self._with_a()
        ok = self.crdt.precondition
        assert ok(state, "addBetween", (BEGIN, "x", "a"))
        assert ok(state, "addBetween", ("a", "x", END))
        assert not ok(state, "addBetween", ("a", "x", BEGIN))   # before begin
        assert not ok(state, "addBetween", (END, "x", "a"))     # after end
        assert not ok(state, "addBetween", (BEGIN, "a", END))   # duplicate
        assert not ok(state, "addBetween", ("ghost", "x", END))
        assert ok(state, "remove", ("a",))
        assert not ok(state, "remove", ("ghost",))
        assert not ok(state, "remove", (BEGIN,))

    def test_remove_invisible_rejected(self):
        state = self._with_a()
        result = self.crdt.generator(state, "remove", ("a",), BOTTOM)
        state = self.crdt.apply_effector(state, result.effector)
        assert not self.crdt.precondition(state, "remove", ("a",))

    def test_anchor_order_precondition(self):
        state = self._with_a()
        result = self.crdt.generator(state, "addBetween", ("a", "b", END), ts(2))
        state = self.crdt.apply_effector(state, result.effector)
        # a precedes b: inserting "between b and a" is rejected.
        assert not self.crdt.precondition(state, "addBetween", ("b", "x", "a"))
