"""State-based LWW-Element-Set (Listing 8)."""

from repro.core.label import Label
from repro.core.timestamp import Timestamp
from repro.crdts import SBLWWElementSet
from repro.crdts.statebased import lww_contents


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


class TestSBLWWElementSet:
    def setup_method(self):
        self.crdt = SBLWWElementSet()

    def test_add_then_read(self):
        state = self.crdt.initial_state()
        _, state = self.crdt.apply(state, "add", ("a",), ts(1), "r1")
        ret, _ = self.crdt.apply(state, "read", (), None, "r1")
        assert ret == frozenset({"a"})

    def test_newer_remove_wins(self):
        state = (frozenset({("a", ts(1))}), frozenset({("a", ts(2))}))
        assert lww_contents(state) == frozenset()

    def test_newer_add_wins(self):
        state = (frozenset({("a", ts(3))}), frozenset({("a", ts(2))}))
        assert lww_contents(state) == frozenset({"a"})

    def test_remove_of_never_added_invisible(self):
        state = (frozenset(), frozenset({("a", ts(1))}))
        assert lww_contents(state) == frozenset()

    def test_stale_add_does_not_resurrect(self):
        # add@1, remove@2, then a *different* older add@1(r0) arrives late.
        state = (
            frozenset({("a", ts(1, "r1")), ("a", ts(1, "r0"))}),
            frozenset({("a", ts(2, "r1"))}),
        )
        assert lww_contents(state) == frozenset()

    def test_merge_union(self):
        s1 = (frozenset({("a", ts(1))}), frozenset())
        s2 = (frozenset(), frozenset({("a", ts(2))}))
        assert self.crdt.merge(s1, s2) == (
            frozenset({("a", ts(1))}),
            frozenset({("a", ts(2))}),
        )

    def test_merge_lattice_laws(self):
        s1 = (frozenset({("a", ts(1))}), frozenset())
        s2 = (frozenset({("b", ts(2))}), frozenset({("a", ts(3))}))
        assert self.crdt.merge(s1, s2) == self.crdt.merge(s2, s1)
        assert self.crdt.merge(s1, s1) == s1

    def test_compare(self):
        s1 = (frozenset({("a", ts(1))}), frozenset())
        s2 = self.crdt.merge(s1, (frozenset(), frozenset({("b", ts(2))})))
        assert self.crdt.compare(s1, s2) and not self.crdt.compare(s2, s1)

    def test_effector_args_unique_by_timestamp(self):
        add = Label("add", ("a",), ts=ts(1), origin="r1")
        rem = Label("remove", ("a",), ts=ts(2), origin="r1")
        assert self.crdt.effector_args(add) == ("add", "a", ts(1))
        assert self.crdt.effector_args(rem) == ("remove", "a", ts(2))
        assert self.crdt.arg_lt(
            self.crdt.effector_args(add), self.crdt.effector_args(rem)
        )

    def test_apply_local(self):
        state = self.crdt.initial_state()
        state = self.crdt.apply_local(state, ("add", "a", ts(1)))
        state = self.crdt.apply_local(state, ("remove", "a", ts(2)))
        assert lww_contents(state) == frozenset()

    def test_predicate_p(self):
        state = (frozenset({("a", ts(2))}), frozenset())
        assert not self.crdt.predicate_p(state, ("add", "b", ts(1)))
        assert self.crdt.predicate_p(state, ("add", "b", ts(3)))

    def test_timestamps_in_state(self):
        state = (frozenset({("a", ts(1))}), frozenset({("b", ts(2))}))
        assert sorted(self.crdt.timestamps_in_state(state)) == [ts(1), ts(2)]
