"""RGA behind the addAt interface (Appendix C.4)."""

from repro.core.sentinels import ROOT
from repro.core.timestamp import BOTTOM, Timestamp
from repro.crdts import OpRGAAddAt


def ts(counter, replica="r1"):
    return Timestamp(counter, replica)


class TestOpRGAAddAt:
    def setup_method(self):
        self.crdt = OpRGAAddAt()

    def test_insert_into_empty(self):
        result = self.crdt.generator(
            self.crdt.initial_state(), "addAt", ("a", 0), ts(1)
        )
        assert result.ret == ("a",)
        assert result.effector.args[0] == ROOT

    def test_insert_at_head_anchors_root(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        result = self.crdt.generator(state, "addAt", ("x", 0), ts(2))
        assert result.effector.args[0] == ROOT
        assert result.ret == ("x", "a")

    def test_insert_mid_anchors_predecessor(self):
        state = (
            frozenset({(ROOT, ts(2), "a"), (ROOT, ts(1), "b")}),
            frozenset(),
        )  # local list a·b
        result = self.crdt.generator(state, "addAt", ("x", 1), ts(3))
        assert result.effector.args[0] == "a"
        assert result.ret == ("a", "x", "b")

    def test_index_past_end_appends(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        result = self.crdt.generator(state, "addAt", ("x", 9), ts(2))
        assert result.effector.args[0] == "a"
        assert result.ret == ("a", "x")

    def test_index_skips_tombstones(self):
        state = (
            frozenset({(ROOT, ts(2), "a"), (ROOT, ts(1), "b")}),
            frozenset({"a"}),
        )  # local list (b,)
        result = self.crdt.generator(state, "addAt", ("x", 1), ts(3))
        assert result.effector.args[0] == "b"

    def test_remove_returns_updated_view(self):
        state = (
            frozenset({(ROOT, ts(2), "a"), (ROOT, ts(1), "b")}),
            frozenset(),
        )
        result = self.crdt.generator(state, "remove", ("a",), BOTTOM)
        assert result.ret == ("b",)

    def test_preconditions(self):
        state = (frozenset({(ROOT, ts(1), "a")}), frozenset())
        assert self.crdt.precondition(state, "addAt", ("x", 0))
        assert not self.crdt.precondition(state, "addAt", ("a", 0))
        assert not self.crdt.precondition(state, "addAt", ("x", -1))
        assert self.crdt.precondition(state, "remove", ("a",))
        assert not self.crdt.precondition(state, "remove", ("x",))
