"""Op-based 2P-Set."""

import pytest

from repro.core.errors import PreconditionViolation
from repro.core.timestamp import BOTTOM
from repro.crdts import Op2PSet
from repro.crdts.base import Effector
from repro.runtime import OpBasedSystem


class TestOp2PSet:
    def setup_method(self):
        self.crdt = Op2PSet()

    def test_add_remove_read(self):
        state = self.crdt.initial_state()
        state = self.crdt.apply_effector(state, Effector("add", ("a",)))
        state = self.crdt.apply_effector(state, Effector("add", ("b",)))
        state = self.crdt.apply_effector(state, Effector("remove", ("a",)))
        result = self.crdt.generator(state, "read", (), BOTTOM)
        assert result.ret == frozenset({"b"})

    def test_preconditions(self):
        empty = self.crdt.initial_state()
        assert self.crdt.precondition(empty, "add", ("a",))
        assert not self.crdt.precondition(empty, "remove", ("a",))
        added = (frozenset({"a"}), frozenset())
        assert not self.crdt.precondition(added, "add", ("a",))
        assert self.crdt.precondition(added, "remove", ("a",))
        removed = (frozenset({"a"}), frozenset({"a"}))
        assert not self.crdt.precondition(removed, "remove", ("a",))

    def test_effectors_commute(self):
        add_b = Effector("add", ("b",))
        rem_a = Effector("remove", ("a",))
        base = (frozenset({"a"}), frozenset())
        ab = self.crdt.apply_effector(self.crdt.apply_effector(base, add_b), rem_a)
        ba = self.crdt.apply_effector(self.crdt.apply_effector(base, rem_a), add_b)
        assert ab == ba

    def test_end_to_end_remove_wins_over_own_add(self):
        system = OpBasedSystem(Op2PSet(), replicas=("r1", "r2"))
        system.invoke("r1", "add", ("a",))
        system.deliver_all()
        system.invoke("r2", "remove", ("a",))
        system.deliver_all()
        assert system.invoke("r1", "read").ret == frozenset()

    def test_remove_requires_observed_add(self):
        system = OpBasedSystem(Op2PSet(), replicas=("r1", "r2"))
        system.invoke("r1", "add", ("a",))
        with pytest.raises(PreconditionViolation):
            system.invoke("r2", "remove", ("a",))  # add not delivered yet
