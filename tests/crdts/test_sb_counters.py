"""State-based G-Counter and PN-Counter (Listing 9)."""

from repro.core.freeze import FrozenDict
from repro.core.label import Label
from repro.core.timestamp import BOTTOM
from repro.crdts import SBGCounter, SBPNCounter


class TestSBPNCounter:
    def setup_method(self):
        self.crdt = SBPNCounter()

    def _run(self, state, method, replica="r1", args=()):
        return self.crdt.apply(state, method, args, BOTTOM, replica)

    def test_initial(self):
        assert self.crdt.initial_state() == (FrozenDict(), FrozenDict())

    def test_inc_dec_read(self):
        state = self.crdt.initial_state()
        _, state = self._run(state, "inc")
        _, state = self._run(state, "inc", replica="r2")
        _, state = self._run(state, "dec")
        ret, _ = self._run(state, "read")
        assert ret == 1

    def test_merge_pointwise_max(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._run(s0, "inc", replica="r1")
        _, s1 = self._run(s1, "inc", replica="r1")
        _, s2 = self._run(s0, "inc", replica="r2")
        merged = self.crdt.merge(s1, s2)
        assert self.crdt.apply(merged, "read", (), BOTTOM, "r1")[0] == 3

    def test_merge_idempotent(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._run(s0, "inc")
        assert self.crdt.merge(s1, s1) == s1

    def test_merge_commutative(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._run(s0, "inc", replica="r1")
        _, s2 = self._run(s0, "dec", replica="r2")
        assert self.crdt.merge(s1, s2) == self.crdt.merge(s2, s1)

    def test_compare_lattice_order(self):
        s0 = self.crdt.initial_state()
        _, s1 = self._run(s0, "inc")
        assert self.crdt.compare(s0, s1)
        assert not self.crdt.compare(s1, s0)

    def test_effector_args_and_apply_local(self):
        label = Label("inc", origin="r1")
        arg = self.crdt.effector_args(label)
        assert arg == ("inc", "r1")
        state = self.crdt.apply_local(self.crdt.initial_state(), arg)
        assert state[0].get("r1") == 1

    def test_query_has_no_effector_args(self):
        assert self.crdt.effector_args(Label("read", ret=0)) is None

    def test_predicate_p(self):
        s0 = self.crdt.initial_state()
        arg = ("inc", "r1")
        assert self.crdt.predicate_p(s0, arg)
        assert not self.crdt.predicate_p(self.crdt.apply_local(s0, arg), arg)


class TestSBGCounter:
    def setup_method(self):
        self.crdt = SBGCounter()

    def test_inc_and_read(self):
        state = self.crdt.initial_state()
        _, state = self.crdt.apply(state, "inc", (), BOTTOM, "r1")
        _, state = self.crdt.apply(state, "inc", (), BOTTOM, "r2")
        assert self.crdt.apply(state, "read", (), BOTTOM, "r1")[0] == 2

    def test_merge(self):
        s0 = self.crdt.initial_state()
        _, s1 = self.crdt.apply(s0, "inc", (), BOTTOM, "r1")
        _, s2 = self.crdt.apply(s0, "inc", (), BOTTOM, "r2")
        merged = self.crdt.merge(s1, s2)
        assert sum(merged.values()) == 2

    def test_compare(self):
        s0 = self.crdt.initial_state()
        _, s1 = self.crdt.apply(s0, "inc", (), BOTTOM, "r1")
        assert self.crdt.compare(s0, s1) and not self.crdt.compare(s1, s0)
