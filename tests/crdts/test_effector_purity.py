"""Effector purity: op-based effectors are pure functions of their inputs.

The whole Sec. 4 methodology rests on effectors being replayable: applying
the same effector to equal states must give equal results, and application
must not mutate its input.  Checked for every op-based entry over effectors
harvested from real executions.
"""

import pytest

from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import random_op_execution

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]


def harvest(entry, seed=3, operations=10):
    crdt = entry.make_crdt()
    system = random_op_execution(
        crdt, entry.make_workload(), operations=operations, seed=seed
    )
    effectors = [
        system.effector_of(label)
        for label in system.generation_order
        if system.effector_of(label) is not None
    ]
    states = [crdt.initial_state()] + [
        system.state(replica) for replica in system.replicas
    ]
    return crdt, effectors, states


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_effectors_deterministic(entry):
    crdt, effectors, states = harvest(entry)
    assert effectors
    final = states[-1]
    for effector in effectors:
        once = crdt.apply_effector(final, effector)
        again = crdt.apply_effector(final, effector)
        assert once == again


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_effectors_do_not_mutate_input(entry):
    crdt, effectors, states = harvest(entry)
    final = states[-1]
    snapshot = final  # states are immutable values; identity must persist
    for effector in effectors:
        crdt.apply_effector(final, effector)
        assert final == snapshot


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_effectors_hashable_and_comparable(entry):
    _crdt, effectors, _states = harvest(entry)
    assert len(set(effectors)) >= 1
    for effector in effectors:
        assert effector == effector
        hash(effector)


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_states_are_hashable_values(entry):
    crdt, _effectors, states = harvest(entry)
    for state in states:
        hash(state)
    assert crdt.initial_state() == crdt.initial_state()
