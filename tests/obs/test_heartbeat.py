"""Heartbeat emission and parent-side progress rendering."""

import io
import json

from repro.obs.heartbeat import (
    DEFAULT_INTERVAL,
    HEARTBEAT_SCHEMA,
    HeartbeatEmitter,
)
from repro.obs.progress import ProgressMonitor


class FakeStats:
    def __init__(self, configurations=0, states_visited=0, states_deduped=0,
                 pstate_copied=0, pstate_shared=0):
        self.configurations = configurations
        self.states_visited = states_visited
        self.states_deduped = states_deduped
        self.pstate_copied = pstate_copied
        self.pstate_shared = pstate_shared


class FakeStore:
    class stats:
        spilled = 7


class TestEmitter:
    def test_record_shape(self):
        records = []
        emitter = HeartbeatEmitter(worker="w0", sink=records.append,
                                   interval=0.0)
        stats = FakeStats(configurations=10, states_visited=6,
                          states_deduped=2, pstate_copied=1, pstate_shared=3)
        emitter.begin_task("Counter:s:0:1", stats, FakeStore())
        record = emitter.emit(depth=4)
        assert records == [record]
        assert record["worker"] == "w0"
        assert record["task"] == "Counter:s:0:1"
        assert record["configs"] == 10
        assert record["frontier"] == 4
        assert record["dedup_ratio"] == 2 / 8
        assert record["pstate_ratio"] == 3 / 4
        assert record["spill"] == 7
        assert record["configs_per_sec"] is not None

    def test_rate_is_delta_since_last_beat(self):
        emitter = HeartbeatEmitter(worker="w0", interval=0.0)
        stats = FakeStats(configurations=100)
        emitter.watch(stats)
        emitter.emit(now=emitter._last_beat + 1.0)
        stats.configurations = 250
        record = emitter.emit(now=emitter._last_beat + 1.0)
        assert abs(record["configs_per_sec"] - 150.0) < 1e-6

    def test_unwatched_emitter_reports_unknowns(self):
        record = HeartbeatEmitter(worker="w0").emit()
        assert record["configs"] is None
        assert record["configs_per_sec"] is None
        assert record["dedup_ratio"] is None
        assert record["spill"] is None
        assert record["queue"] is None

    def test_interval_clamp_keeps_explicit_zero_fast(self):
        # interval=0.0 must clamp to the 0.01 floor, NOT fall back to
        # the 2s default — `--progress 0` means "render every beat".
        assert HeartbeatEmitter(interval=0.0).interval == 0.01
        assert HeartbeatEmitter(interval=None).interval == DEFAULT_INTERVAL

    def test_queue_size_not_implemented_renders_unknown(self):
        def qsize():
            raise NotImplementedError  # Queue.qsize on macOS
        emitter = HeartbeatEmitter(worker="w0", queue_size=qsize)
        assert emitter.emit()["queue"] is None
        emitter.queue_size = lambda: 3
        assert emitter.emit()["queue"] == 3

    def test_tick_gates_on_counter_then_interval(self):
        records = []
        emitter = HeartbeatEmitter(worker="w0", sink=records.append,
                                   interval=0.0, check_every=4)
        emitter.watch(FakeStats())
        emitter._last_beat -= 1.0  # make the first clock probe due
        for depth in range(1, 4):
            emitter.tick(depth)
        assert records == []  # counter gate: no clock probe yet
        emitter.tick(4)
        assert len(records) == 1  # 4th tick probes, interval has elapsed


class TestProgressMonitor:
    def test_status_line_aggregates_fleet(self):
        monitor = ProgressMonitor(interval=0.0, stream=io.StringIO())
        monitor.feed({"worker": "w0", "configs": 30, "configs_per_sec": 10.0,
                      "frontier": 3, "queue": 1, "dedup_ratio": 0.5,
                      "spill": 2, "pstate_ratio": None, "task": "a"})
        monitor.feed({"worker": "w1", "configs": 20, "configs_per_sec": 5.0,
                      "frontier": 5, "queue": 2, "dedup_ratio": 0.25,
                      "spill": None, "pstate_ratio": None, "task": "b"})
        line = monitor.status_line()
        assert line.startswith("[progress] 2w · 50 cfg · 15 cfg/s")
        assert "depth 5" in line
        assert "queue 3" in line
        assert "dedup 38%" in line
        assert "spill 2" in line

    def test_unknown_fields_render_as_question_marks(self):
        monitor = ProgressMonitor(interval=0.0, stream=io.StringIO())
        monitor.feed({"worker": "w0", "configs": None,
                      "configs_per_sec": None, "frontier": None,
                      "queue": None, "dedup_ratio": None, "spill": None})
        line = monitor.status_line()
        assert "? cfg/s" in line and "depth ?" in line and "queue ?" in line

    def test_latest_record_per_worker_wins(self):
        monitor = ProgressMonitor(interval=0.0, stream=io.StringIO())
        monitor.feed({"worker": "w0", "configs": 10})
        monitor.feed({"worker": "w0", "configs": 99})
        assert "99 cfg" in monitor.status_line()

    def test_stall_detection_uses_fake_clock(self):
        now = [0.0]
        stream = io.StringIO()
        monitor = ProgressMonitor(interval=1.0, stream=stream,
                                  stall_factor=3.0, clock=lambda: now[0])
        monitor.feed({"worker": "w0", "task": "Counter:s:0:1", "configs": 1})
        now[0] = 10.0  # silent for 10s > 3 x 1s
        monitor.maybe_render(force=True)
        assert len(monitor.warnings) == 1
        assert "w0 silent for 10s" in monitor.warnings[0]
        assert "Counter:s:0:1" in monitor.warnings[0]
        assert "STALLED 1" in monitor.status_line()
        # A fresh beat un-stalls the worker.
        monitor.feed({"worker": "w0", "configs": 2})
        assert "STALLED" not in monitor.status_line()

    def test_log_writes_schema_header_then_records(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        monitor = ProgressMonitor(interval=0.0, stream=io.StringIO(),
                                  log_path=path)
        monitor.feed({"worker": "w0", "configs": 1})
        monitor.close()
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0] == {"schema": HEARTBEAT_SCHEMA}
        assert lines[1]["worker"] == "w0"

    def test_drain_consumes_queue_without_blocking(self):
        import queue
        q = queue.Queue()
        q.put({"worker": "w0", "configs": 1})
        q.put({"worker": "w1", "configs": 2})
        monitor = ProgressMonitor(interval=0.0, stream=io.StringIO())
        assert monitor.drain(q) == 2
        assert monitor.drain(q) == 0
        assert "2w" in monitor.status_line()

    def test_render_throttled_by_interval(self):
        now = [0.0]
        stream = io.StringIO()
        monitor = ProgressMonitor(interval=5.0, stream=stream,
                                  clock=lambda: now[0])
        now[0] = 6.0
        monitor.ingest({"worker": "w0", "configs": 1})  # due: renders
        monitor.ingest({"worker": "w0", "configs": 2})  # throttled
        assert stream.getvalue().count("[progress]") == 1
        monitor.close()  # force-renders the final state
        assert stream.getvalue().count("[progress]") == 2
