"""The bench regression gate (:mod:`repro.obs.benchdiff`)."""

import json

import pytest

from repro.obs.benchdiff import (
    DEFAULT_TOLERANCE,
    bench_diff_paths,
    classify,
    diff_benches,
    format_bench_diff,
)


class TestClassify:
    @pytest.mark.parametrize("name", [
        "configurations", "distinct_configurations", "naive_configurations",
        "checks", "orbits", "verdicts", "states_visited", "unique_digests",
        "symmetry_group", "fast_configurations", "spilled_states",
    ])
    def test_exact(self, name):
        assert classify(name) == "exact"

    @pytest.mark.parametrize("name", [
        "seconds", "wall_seconds", "naive_seconds", "peak_mib",
    ])
    def test_time(self, name):
        assert classify(name) == "time"

    @pytest.mark.parametrize("name", [
        "speedup", "configs_per_sec", "op_based_speedup", "overall_speedup",
        "modeled_speedup", "hit_ratio", "orbit_reduction", "steal_speedup",
    ])
    def test_rate(self, name):
        assert classify(name) == "rate"

    @pytest.mark.parametrize("name", ["scope", "evictions", "jobs", "notes"])
    def test_info(self, name):
        assert classify(name) == "info"


def _rows_by_path(rows):
    return {row.path: row for row in rows}


class TestDiff:
    def test_self_compare_is_all_ok(self):
        doc = {"entries": {"Counter": {"configurations": 10,
                                       "seconds": 1.0, "speedup": 2.0}}}
        rows = diff_benches(doc, doc)
        assert all(row.status == "ok" for row in rows)
        assert not any(row.gating for row in rows)

    def test_exact_divergence_gates(self):
        old = {"s": {"distinct_configurations": 100}}
        new = {"s": {"distinct_configurations": 101}}
        row = diff_benches(old, new)[0]
        assert row.status == "regression" and row.gating
        assert "regenerate the baseline" in row.detail

    def test_time_regression_respects_tolerance(self):
        old = {"s": {"wall_seconds": 1.0}}
        within = {"s": {"wall_seconds": 1.0 + DEFAULT_TOLERANCE - 0.01}}
        beyond = {"s": {"wall_seconds": 2.0}}
        assert diff_benches(old, within)[0].status == "ok"
        assert diff_benches(old, beyond)[0].status == "regression"
        assert diff_benches(old, {"s": {"wall_seconds": 0.1}})[0].status \
            == "improved"

    def test_rate_regression_is_symmetric_to_time(self):
        old = {"s": {"speedup": 4.0}}
        assert diff_benches(old, {"s": {"speedup": 1.0}})[0].status \
            == "regression"
        assert diff_benches(old, {"s": {"speedup": 8.0}})[0].status \
            == "improved"
        assert diff_benches(old, {"s": {"speedup": 3.5}})[0].status == "ok"

    def test_tolerance_override(self):
        old = {"s": {"wall_seconds": 1.0}}
        new = {"s": {"wall_seconds": 1.2}}
        assert diff_benches(old, new)[0].status == "ok"  # 20% < 30%
        assert diff_benches(old, new, tolerance=0.1)[0].status == "regression"

    def test_missing_in_new_warns_without_gating(self):
        rows = diff_benches({"s": {"wall_seconds": 1.0}}, {})
        row = _rows_by_path(rows)["s"]
        assert row.status == "missing" and not row.gating

    def test_added_in_new_is_informational(self):
        rows = diff_benches({}, {"s": {"wall_seconds": 1.0}})
        assert _rows_by_path(rows)["s"].status == "added"

    def test_info_changes_never_gate(self):
        rows = diff_benches({"s": {"scope": "2 replicas"}},
                            {"s": {"scope": "3 replicas"}})
        row = rows[0]
        assert row.status == "changed" and not row.gating

    def test_non_numeric_exact_change_gates(self):
        rows = diff_benches({"s": {"verdicts": ["ok", "ok"]}},
                            {"s": {"verdicts": ["ok", "FAIL"]}})
        assert rows[0].status == "regression"


class TestSections:
    OLD = {"dpor_3r": {"speedup": 2.0},
           "steal_3r": {"wall_seconds": 1.0},
           "optimal_3r": {"configurations": 490}}

    def test_only_named_sections_are_compared(self):
        new = {"dpor_3r": {"speedup": 2.0},
               "steal_3r": {"wall_seconds": 99.0},  # would gate unfiltered
               "optimal_3r": {"configurations": 490}}
        rows = diff_benches(self.OLD, new,
                            sections=["dpor_3r", "optimal_3r"])
        assert not any(row.gating for row in rows)
        assert all(row.path.startswith(("dpor_3r", "optimal_3r"))
                   for row in rows)

    def test_regression_inside_named_section_still_gates(self):
        new = dict(self.OLD, dpor_3r={"speedup": 1.0})
        rows = diff_benches(self.OLD, new, sections=["dpor_3r"])
        assert any(row.gating for row in rows)

    def test_section_dropped_from_new_gates(self):
        new = {"dpor_3r": {"speedup": 2.0}}
        rows = diff_benches(self.OLD, new,
                            sections=["dpor_3r", "optimal_3r"])
        row = _rows_by_path(rows)["optimal_3r"]
        assert row.status == "regression" and row.gating
        assert "absent from NEW" in row.detail

    def test_section_new_in_new_is_added(self):
        old = {"dpor_3r": {"speedup": 2.0}}
        rows = diff_benches(old, self.OLD,
                            sections=["dpor_3r", "optimal_3r"])
        assert _rows_by_path(rows)["optimal_3r"].status == "added"

    def test_unknown_section_raises(self):
        with pytest.raises(ValueError, match="unknown bench section"):
            diff_benches(self.OLD, self.OLD, sections=["typo_3r"])


class TestReport:
    def test_report_leads_with_regressions(self):
        old = {"a": {"wall_seconds": 1.0}, "b": {"scope": "x"}}
        new = {"a": {"wall_seconds": 9.0}, "b": {"scope": "y"}}
        report = format_bench_diff(diff_benches(old, new), "OLD", "NEW")
        lines = report.splitlines()
        assert lines[0] == "bench diff: OLD -> NEW"
        body = [line for line in lines if line.startswith("  [")]
        assert "regression" in body[0]
        assert report.splitlines()[-1].startswith("  verdict: REGRESSION")

    def test_clean_report_verdict_ok(self):
        doc = {"a": {"wall_seconds": 1.0}}
        report = format_bench_diff(diff_benches(doc, doc), "OLD", "NEW")
        assert report.splitlines()[-1] == "  verdict: ok (0 gating)"


class TestPaths:
    def test_self_compare_exits_zero(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"s": {"configurations": 5}}))
        report, code = bench_diff_paths(str(path), str(path))
        assert code == 0 and "verdict: ok" in report

    def test_injected_regression_exits_nonzero(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(
            {"s": {"distinct_configurations": 100, "wall_seconds": 1.0}}))
        new.write_text(json.dumps(
            {"s": {"distinct_configurations": 100, "wall_seconds": 5.0}}))
        report, code = bench_diff_paths(str(old), str(new))
        assert code == 1 and "verdict: REGRESSION (1 gating)" in report

    def test_unreadable_json_raises_for_cli_exit_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):  # JSONDecodeError subclasses it
            bench_diff_paths(str(bad), str(bad))

    def test_real_committed_baselines_self_compare(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[2]
        for name in ("BENCH_explore.json", "BENCH_verify.json"):
            report, code = bench_diff_paths(str(root / name), str(root / name))
            assert code == 0, report
