"""The bounded lifecycle journal (:mod:`repro.obs.journal`)."""

import json

import pytest

from repro.obs.journal import (
    EVENT_KINDS,
    JOURNAL_SCHEMA,
    Journal,
    merge_journals,
    read_journal,
)


class TestRecord:
    def test_field_order_is_canonical(self):
        journal = Journal(worker="w0")
        event = journal.record("scope.start", zebra=1, alpha=2, entry="X")
        assert list(event) == ["wall", "worker", "seq", "kind",
                               "alpha", "entry", "zebra"]
        assert event["kind"] == "scope.start"
        assert event["worker"] == "w0"
        assert event["seq"] == 1

    def test_seq_increments_per_journal(self):
        journal = Journal(worker="w0")
        first = journal.record("scope.start")
        second = journal.record("scope.end")
        assert (first["seq"], second["seq"]) == (1, 2)

    @pytest.mark.parametrize("reserved", ["kind", "wall", "seq"])
    def test_reserved_fields_rejected(self, reserved):
        journal = Journal(worker="w0")
        with pytest.raises(ValueError, match="reserved"):
            journal.record("scope.start", **{reserved: 1})

    def test_default_worker_names_the_pid(self):
        assert Journal().worker.startswith("pid")

    def test_known_kinds_are_dotted(self):
        assert all("." in kind for kind in EVENT_KINDS)


class TestBound:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Journal(limit=0)

    def test_drop_oldest_beyond_limit(self):
        journal = Journal(worker="w0", limit=3)
        for i in range(5):
            journal.record("scope.start", index=i)
        assert len(journal) == 3
        assert journal.dropped == 2
        assert [e["index"] for e in journal.events()] == [2, 3, 4]


class TestMerge:
    def test_absorb_payload_and_dropped_counter(self):
        worker = Journal(worker="w1", limit=1)
        worker.record("steal.claim", task="a")
        worker.record("steal.claim", task="b")  # drops the first
        parent = Journal(worker="pool")
        parent.absorb(worker.payload())
        parent.absorb(None)  # tolerated
        assert len(parent) == 1
        assert parent.dropped == 1
        assert parent.events()[0]["worker"] == "w1"

    def test_merged_orders_by_wall_worker_seq(self):
        parent = Journal(worker="pool")
        # Hand-built events with controlled wall clocks: absorb keeps
        # insertion order, merged() must re-sort canonically.
        parent.absorb({"worker": "w1", "dropped": 0, "events": [
            {"wall": 2.0, "worker": "w1", "seq": 1, "kind": "scope.end"},
            {"wall": 1.0, "worker": "w1", "seq": 2, "kind": "scope.start"},
        ]})
        parent.absorb({"worker": "w0", "dropped": 0, "events": [
            {"wall": 2.0, "worker": "w0", "seq": 1, "kind": "scope.end"},
        ]})
        keys = [(e["wall"], e["worker"]) for e in parent.merged()]
        assert keys == [(1.0, "w1"), (2.0, "w0"), (2.0, "w1")]

    def test_merge_journals_unions_workers(self):
        a = Journal(worker="w0")
        b = Journal(worker="w1")
        a.record("scope.start", entry="X")
        b.record("steal.claim", task="t")
        merged = merge_journals([a, b])
        assert {e["worker"] for e in merged} == {"w0", "w1"}
        assert len(merged) == 2


class TestDump:
    def test_round_trip(self, tmp_path):
        journal = Journal(worker="w0")
        journal.record("scope.start", entry="Counter")
        journal.record("scope.end", entry="Counter", ok=True)
        path = str(tmp_path / "journal.jsonl")
        journal.dump(path)
        loaded = read_journal(path)
        assert loaded["header"]["schema"] == JOURNAL_SCHEMA
        assert loaded["header"]["events"] == 2
        assert loaded["header"]["dropped"] == 0
        kinds = [e["kind"] for e in loaded["events"]]
        assert kinds == ["scope.start", "scope.end"]

    def test_dump_preserves_canonical_field_order(self, tmp_path):
        journal = Journal(worker="w0")
        journal.record("dpor.reversal", frame=3, depth=1)
        path = str(tmp_path / "journal.jsonl")
        journal.dump(path)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Events are dumped without sort_keys: insertion order is the
        # format (wall, worker, seq, kind, sorted extras).
        assert list(json.loads(lines[1])) == [
            "wall", "worker", "seq", "kind", "depth", "frame"]

    def test_read_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text(json.dumps({"schema": "something/else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro journal"):
            read_journal(str(path))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_journal(str(empty))
