"""The Instrumentation handle and artifact I/O (:mod:`repro.obs`)."""

import json

import pytest

from repro.obs.instrument import (
    ARTIFACT_SCHEMA,
    Instrumentation,
    NULL_INSTRUMENTATION,
    read_artifact,
    write_artifact,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestNullHandle:
    def test_disabled_by_default(self):
        assert NULL_INSTRUMENTATION.enabled is False
        assert Instrumentation().enabled is False

    def test_span_is_reusable_noop(self):
        first = NULL_INSTRUMENTATION.span("a")
        second = NULL_INSTRUMENTATION.span("b", entry="X")
        assert first is second  # one shared object, no allocation
        with first as span:
            span.set(anything=1)

    def test_recording_hooks_are_noops(self):
        NULL_INSTRUMENTATION.event("check", ok=True)
        NULL_INSTRUMENTATION.record_result(
            "X", type("R", (), {"configurations": 1, "ok": True})()
        )


class TestEnabledHandle:
    def test_on_builds_registry_and_tracer(self):
        ins = Instrumentation.on()
        assert ins.enabled and ins.metrics is not None
        assert ins.tracer is not None and ins.trace_checks is False

    def test_trace_checks_requires_tracer(self):
        ins = Instrumentation(MetricsRegistry(), tracer=None,
                              trace_checks=True)
        assert ins.trace_checks is False

    def test_span_feeds_histogram_and_tracer(self):
        ins = Instrumentation.on()
        with ins.span("stage", entry="X"):
            pass
        hist = ins.metrics.histogram("span.seconds", span="stage")
        assert hist.count == 1
        assert [e["name"] for e in ins.tracer.spans()] == ["stage"]

    def test_metrics_only_span_still_times(self):
        ins = Instrumentation(MetricsRegistry())
        with ins.span("stage"):
            pass
        assert ins.metrics.histogram("span.seconds", span="stage").count == 1


class TestWorkerProtocol:
    def test_payload_round_trip(self):
        worker = Instrumentation.on()
        worker.metrics.counter("check.checks", entry="X").inc(5)
        worker.event("check", ok=True)
        payload = worker.worker_payload()
        json.dumps(payload)  # must cross the pool pipe as plain data

        coordinator = Instrumentation.on()
        coordinator.metrics.counter("check.checks", entry="X").inc(2)
        coordinator.absorb_worker(payload)
        assert coordinator.metrics.counter(
            "check.checks", entry="X"
        ).value == 7
        assert [e["type"] for e in coordinator.tracer.events] == ["check"]

    def test_absorb_none_is_noop(self):
        coordinator = Instrumentation.on()
        coordinator.absorb_worker(None)
        assert len(coordinator.metrics) == 0


class TestArtifact:
    def _handle(self):
        ins = Instrumentation.on()
        ins.metrics.counter("verify.scopes", deterministic=True).inc(3)
        ins.metrics.counter("check.checks", entry="X").inc(10)
        with ins.span("stage"):
            pass
        return ins

    def test_artifact_shape(self):
        artifact = self._handle().artifact("exhaustive", {"jobs": 2})
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["command"] == "exhaustive"
        assert artifact["meta"] == {"jobs": 2}
        assert artifact["counters"] == {"verify.scopes": 3}
        assert "check.checks{entry=X}" in artifact["metrics"]["instruments"]

    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        written = write_artifact(path, self._handle(), "exhaustive")
        loaded = read_artifact(path)
        assert loaded["counters"] == written["counters"]
        assert loaded["metrics"] == written["metrics"]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        written = write_artifact(path, self._handle(), "exhaustive",
                                 {"jobs": 1})
        loaded = read_artifact(path)
        assert loaded["command"] == "exhaustive"
        assert loaded["meta"] == {"jobs": 1}
        assert loaded["counters"] == written["counters"]
        assert (loaded["metrics"]["instruments"].keys()
                == written["metrics"]["instruments"].keys())
        assert len(loaded["events"]) == len(written["events"])

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError):
            read_artifact(str(path))


class TestRecordHooks:
    def test_record_result_is_deterministic_counters(self):
        ins = Instrumentation.on()
        result = type("R", (), {"configurations": 50, "ok": True})()
        ins.record_result("OR-Set", result)
        snapshot = ins.metrics.snapshot()
        scoped = snapshot["instruments"]
        assert scoped["verify.scopes"]["deterministic"] is True
        assert scoped["verify.configurations{entry=OR-Set}"]["value"] == 50
        assert scoped["verify.ok{entry=OR-Set}"]["value"] == 1

    def test_record_verification(self):
        ins = Instrumentation.on()
        result = type(
            "V", (), {"name": "RGA", "executions": 5, "operations": 40,
                      "verified": False},
        )()
        ins.record_verification(result)
        instruments = ins.metrics.snapshot()["instruments"]
        assert instruments["verify.executions{entry=RGA}"]["value"] == 5
        assert instruments["verify.ok{entry=RGA}"]["value"] == 0
