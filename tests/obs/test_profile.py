"""The phase-attribution profiler (:mod:`repro.obs.profile`)."""

from repro.obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from repro.obs.profile import (
    PHASES,
    PhaseProfiler,
    maybe_profiler,
    phase_totals,
)


class TestAccumulation:
    def test_add_merges_by_phase(self):
        profiler = PhaseProfiler()
        profiler.add("apply", 0.5)
        profiler.add("apply", 0.25, regions=3)
        assert profiler.seconds == {"apply": 0.75}
        assert profiler.counts == {"apply": 4}
        assert profiler.total() == 0.75

    def test_bool_tracks_whether_anything_recorded(self):
        profiler = PhaseProfiler()
        assert not profiler
        profiler.add("check", 0.0)
        assert profiler

    def test_region_context_manager_times(self):
        profiler = PhaseProfiler()
        with profiler.phase("convergence"):
            pass
        assert profiler.counts == {"convergence": 1}
        assert profiler.seconds["convergence"] >= 0.0

    def test_merge_and_reset(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.add("apply", 1.0)
        b.add("apply", 2.0, regions=2)
        b.add("check", 0.5)
        a.merge(b)
        assert a.seconds == {"apply": 3.0, "check": 0.5}
        assert a.counts == {"apply": 3, "check": 1}
        a.reset()
        assert not a and a.total() == 0.0

    def test_engine_phases_are_declared(self):
        for phase in ("snapshot", "restore", "apply", "hb", "commute",
                      "fingerprint", "check", "convergence"):
            assert phase in PHASES


class TestInstrumentationFold:
    @staticmethod
    def _instruments(ins):
        return ins.artifact("test")["metrics"]["instruments"]

    def test_artifact_carries_profile_counters(self):
        ins = Instrumentation.on()
        ins.profile.add("apply", 0.5, regions=2)
        instruments = self._instruments(ins)
        totals = phase_totals(instruments)
        assert totals == {"apply": 0.5}
        regions = instruments["profile.regions{phase=apply}"]
        assert regions["value"] == 2
        assert regions["deterministic"] is False  # work metric

    def test_fold_resets_so_totals_do_not_double(self):
        ins = Instrumentation.on()
        ins.profile.add("check", 1.0)
        first = phase_totals(self._instruments(ins))
        second = phase_totals(self._instruments(ins))
        assert first == second == {"check": 1.0}

    def test_phase_totals_ignores_unrelated_instruments(self):
        ins = Instrumentation.on()
        ins.metrics.counter("explore.configurations").inc(5)
        assert phase_totals(self._instruments(ins)) == {}


class TestMaybeProfiler:
    def test_null_handle_has_no_profiler(self):
        assert maybe_profiler(NULL_INSTRUMENTATION) is None
        assert maybe_profiler(object()) is None

    def test_enabled_handle_exposes_its_profiler(self):
        ins = Instrumentation.on()
        assert maybe_profiler(ins) is ins.profile
