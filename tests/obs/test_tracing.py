"""Span tracing and the JSONL exporter (:mod:`repro.obs.tracing`)."""

import json
import os

import pytest

from repro.obs.tracing import TRACE_SCHEMA, Tracer


class TestSpan:
    def test_records_event_with_durations(self):
        tracer = Tracer()
        with tracer.span("stage", entry="OR-Set") as span:
            sum(range(1000))
        assert span.wall >= 0.0 and span.cpu >= 0.0
        (event,) = tracer.events
        assert event["type"] == "span"
        assert event["name"] == "stage"
        assert event["pid"] == os.getpid()
        assert event["attrs"] == {"entry": "OR-Set"}

    def test_set_attaches_mid_flight(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set(configurations=50)
        assert tracer.events[0]["attrs"] == {"configurations": 50}

    def test_error_is_tagged(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("stage"):
                raise RuntimeError("boom")
        assert tracer.events[0]["error"] == "RuntimeError"

    def test_spans_filter(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.event("check", ok=True)
        assert len(tracer.spans()) == 2
        assert [e["name"] for e in tracer.spans("b")] == ["b"]


class TestEvents:
    def test_event_carries_attrs(self):
        tracer = Tracer()
        tracer.event("check", entry="RGA", ok=False)
        (event,) = tracer.events
        assert event["type"] == "check"
        assert event["entry"] == "RGA" and event["ok"] is False
        assert "ts" in event and "pid" in event


class TestExport:
    def test_one_shot_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        tracer.event("check", ok=True)
        path = tmp_path / "trace.jsonl"
        assert tracer.export(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "meta", "schema": TRACE_SCHEMA}
        assert [line["type"] for line in lines[1:]] == ["span", "check"]

    def test_incremental_path(self, tmp_path):
        path = tmp_path / "live.jsonl"
        tracer = Tracer(str(path))
        tracer.event("check", ok=True)
        tracer.event("check", ok=False)
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["ok"] for line in lines] == [True, False]
