"""Metrics instruments: snapshot, deterministic merge (:mod:`repro.obs`)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    deterministic_totals,
    instrument_key,
    merge_snapshots,
)


class TestInstrumentKey:
    def test_bare_name(self):
        assert instrument_key("check.checks", {}) == "check.checks"

    def test_labels_sorted(self):
        key = instrument_key("x", {"b": 2, "a": 1})
        assert key == "x{a=1,b=2}"
        assert key == instrument_key("x", {"a": 1, "b": 2})


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_shares(self):
        registry = MetricsRegistry()
        assert registry.counter("c", entry="X") is registry.counter(
            "c", entry="X"
        )
        assert registry.counter("c", entry="X") is not registry.counter(
            "c", entry="Y"
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")


class TestGauge:
    def test_max_policy(self):
        gauge = MetricsRegistry().gauge("g", policy="max")
        gauge.set(3)
        gauge.set(1)
        gauge.set(5)
        assert gauge.value == 5

    def test_min_policy(self):
        gauge = MetricsRegistry().gauge("g", policy="min")
        gauge.set(3)
        gauge.set(1)
        gauge.set(5)
        assert gauge.value == 1

    def test_no_last_write_policy(self):
        with pytest.raises(ValueError):
            MetricsRegistry().gauge("g", policy="last")

    def test_policy_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("g", policy="max")
        with pytest.raises(TypeError):
            registry.gauge("g", policy="min")


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert hist.count == 3
        assert hist.sum == 55.5
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.mean == pytest.approx(18.5)

    def test_default_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bounds == DEFAULT_BUCKETS

    def test_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0,))
        with pytest.raises(TypeError):
            registry.histogram("h", bounds=(2.0,))


class TestSnapshot:
    def test_plain_json(self):
        registry = MetricsRegistry()
        registry.counter("c", entry="X").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        json.dumps(snapshot)  # picklable/plain
        assert snapshot["instruments"]["c{entry=X}"]["value"] == 3

    def test_merge_is_order_independent(self):
        def build(counter_value, gauge_value, samples):
            registry = MetricsRegistry()
            registry.counter("c").inc(counter_value)
            registry.gauge("g").set(gauge_value)
            for sample in samples:
                registry.histogram("h").observe(sample)
            return registry.snapshot()

        a = build(1, 10, [0.1, 0.2])
        b = build(2, 30, [5.0])
        c = build(4, 20, [])
        merged_abc = merge_snapshots([a, b, c])
        merged_cba = merge_snapshots([c, b, a])
        assert merged_abc == merged_cba
        instruments = merged_abc["instruments"]
        assert instruments["c"]["value"] == 7
        assert instruments["g"]["value"] == 30
        assert instruments["h"]["count"] == 3
        assert instruments["h"]["min"] == 0.1
        assert instruments["h"]["max"] == 5.0

    def test_merge_unset_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("g")  # never set
        merged = merge_snapshots([registry.snapshot()])
        assert merged["instruments"]["g"]["value"] is None

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(
                {"schema": "nope/0", "instruments": {}}
            )


class TestDeterministicTotals:
    def test_selects_flagged_scalars_only(self):
        registry = MetricsRegistry()
        registry.counter("verify.scopes", deterministic=True).inc()
        registry.counter("check.checks").inc(9)
        registry.gauge("verify.ok", policy="min", deterministic=True).set(1)
        registry.histogram("h", deterministic=True).observe(0.1)
        totals = deterministic_totals(registry.snapshot())
        assert totals == {"verify.scopes": 1, "verify.ok": 1}

    def test_survives_merge(self):
        a = MetricsRegistry()
        a.counter("verify.scopes", deterministic=True).inc(2)
        b = MetricsRegistry()
        b.counter("verify.scopes", deterministic=True).inc(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert deterministic_totals(merged) == {"verify.scopes": 5}
