"""Edge cases of ``MetricsRegistry.merge_snapshot`` (satellite S3).

The parallel pipeline's correctness rests on snapshot merging being
total (any well-formed snapshot folds in) and order-independent (the
union of worker snapshots is the same whatever order they arrive).
"""

import random

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    deterministic_totals,
    dumps,
    merge_snapshots,
)


def _registry_with(counter=0, hist_values=(), bounds=(1.0, 2.0)):
    registry = MetricsRegistry()
    if counter:
        registry.counter("explore.configurations").inc(counter)
    hist = registry.histogram("span.seconds", bounds=bounds, span="scope")
    for value in hist_values:
        hist.observe(value)
    return registry


class TestEmptyHistograms:
    def test_empty_histogram_merges_as_identity(self):
        target = _registry_with(hist_values=(0.5, 1.5))
        before = dumps(target.snapshot())
        target.merge_snapshot(_registry_with(hist_values=()).snapshot())
        assert dumps(target.snapshot()) == before

    def test_empty_into_empty_stays_empty(self):
        target = _registry_with()
        target.merge_snapshot(_registry_with().snapshot())
        hist = target.histogram("span.seconds", bounds=(1.0, 2.0),
                                span="scope")
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.min is None and hist.max is None

    def test_min_max_ignore_empty_sides(self):
        target = _registry_with(hist_values=())
        target.merge_snapshot(
            _registry_with(hist_values=(0.5, 3.0)).snapshot())
        hist = target.histogram("span.seconds", bounds=(1.0, 2.0),
                                span="scope")
        assert (hist.min, hist.max) == (0.5, 3.0)


class TestDisjointBounds:
    def test_same_key_different_bounds_is_a_type_error(self):
        target = _registry_with(hist_values=(0.5,), bounds=(1.0, 2.0))
        foreign = _registry_with(hist_values=(0.5,), bounds=(10.0, 20.0))
        with pytest.raises(TypeError, match="other bounds"):
            target.merge_snapshot(foreign.snapshot())

    def test_same_key_different_kind_is_a_type_error(self):
        target = MetricsRegistry()
        target.counter("explore.thing").inc()
        foreign = MetricsRegistry()
        foreign.gauge("explore.thing").set(1)
        with pytest.raises(TypeError, match="already registered"):
            target.merge_snapshot(foreign.snapshot())

    def test_distinct_labels_keep_distinct_bounds(self):
        target = MetricsRegistry()
        target.histogram("span.seconds", bounds=(1.0,), span="a").observe(0.5)
        foreign = MetricsRegistry()
        foreign.histogram("span.seconds", bounds=(5.0,), span="b").observe(2.0)
        target.merge_snapshot(foreign.snapshot())
        assert len(target) == 2


class TestOrderIndependence:
    def _shard(self, seed):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        registry.counter("explore.configurations").inc(rng.randrange(1, 50))
        registry.counter(
            "verify.configurations", deterministic=True, entry="X"
        ).inc(10)  # same on every shard, like a post-merge record
        registry.gauge("explore.depth", policy="max").set(rng.randrange(20))
        registry.gauge("queue.min", policy="min").set(rng.randrange(20))
        hist = registry.histogram("span.seconds", span="scope")
        for _ in range(rng.randrange(5)):
            # Dyadic values add exactly in binary floating point, so the
            # merged histogram sum is associative and the byte-identity
            # assertion below is meaningful (arbitrary floats would
            # differ in the last ulp depending on merge order).
            hist.observe(rng.randrange(64) / 64.0)
        return registry.snapshot()

    def test_shuffled_merges_are_identical(self):
        # Deterministic counters must agree across shards (pipeline
        # invariant: they are recorded once, post-merge); work counters
        # may differ arbitrarily.  The merged snapshot must not depend
        # on arrival order.
        shards = [self._shard(seed) for seed in range(6)]
        baseline = None
        for seed in range(5):
            order = shards[:]
            random.Random(seed).shuffle(order)
            registry = MetricsRegistry()
            for shard in order:
                registry.merge_snapshot(shard)
            merged = dumps(registry.snapshot())
            if baseline is None:
                baseline = merged
            assert merged == baseline

    def test_merge_snapshots_helper_matches_manual_fold(self):
        shards = [self._shard(seed) for seed in range(3)]
        manual = MetricsRegistry()
        for shard in shards:
            manual.merge_snapshot(shard)
        assert dumps(merge_snapshots(shards)) == dumps(manual.snapshot())

    def test_gauge_policies_merge_order_free(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", policy="max").set(5)
        b.gauge("depth", policy="max").set(9)
        a.gauge("low", policy="min").set(5)
        b.gauge("low", policy="min").set(2)
        ab = merge_snapshots([a.snapshot(), b.snapshot()])
        ba = merge_snapshots([b.snapshot(), a.snapshot()])
        assert dumps(ab) == dumps(ba)
        assert ab["instruments"]["depth"]["value"] == 9
        assert ab["instruments"]["low"]["value"] == 2


class TestSchemaGuards:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="snapshot schema"):
            MetricsRegistry().merge_snapshot(
                {"schema": "repro.metrics/999", "instruments": {}})

    def test_unknown_instrument_kind_rejected(self):
        snapshot = {
            "schema": SNAPSHOT_SCHEMA,
            "instruments": {"x": {"kind": "summary", "name": "x",
                                  "labels": {}, "deterministic": False}},
        }
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry().merge_snapshot(snapshot)

    def test_deterministic_totals_tolerates_sparse_dumps(self):
        totals = deterministic_totals({
            "instruments": {
                "old-counter": {"kind": "counter", "deterministic": True,
                                "value": 3},
                "no-kind": {"deterministic": True, "value": 9},
                "work": {"kind": "counter", "value": 1},
            },
        })
        assert totals == {"old-counter": 3}
