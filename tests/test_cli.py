"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import SCENARIOS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_defaults(self):
        args = build_parser().parse_args(["table"])
        assert args.executions == 5 and args.operations == 10

    def test_scenario_choices(self):
        args = build_parser().parse_args(["scenario", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nope"])


class TestCommands:
    def test_figures_succeeds(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig14" in out

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_renders(self, capsys, name):
        assert main(["scenario", name]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{name}:")

    def test_table_small(self, capsys):
        assert main(["table", "--executions", "1", "--operations", "5"]) == 0
        out = capsys.readouterr().out
        assert "RGA" in out and "yes" in out

    def test_mutants(self, capsys):
        assert main(["mutants"]) == 0
        out = capsys.readouterr().out
        assert "CAUGHT" in out and "MISSED" not in out
