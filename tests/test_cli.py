"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import SCENARIOS, _normalize_scope, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_defaults(self):
        args = build_parser().parse_args(["table"])
        assert args.executions == 5 and args.operations == 10

    def test_scenario_choices(self):
        args = build_parser().parse_args(["scenario", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nope"])


class TestCommands:
    def test_figures_succeeds(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "fig14" in out

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_renders(self, capsys, name):
        assert main(["scenario", name]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{name}:")

    def test_table_small(self, capsys):
        assert main(["table", "--executions", "1", "--operations", "5"]) == 0
        out = capsys.readouterr().out
        assert "RGA" in out and "yes" in out

    def test_mutants(self, capsys):
        assert main(["mutants"]) == 0
        out = capsys.readouterr().out
        assert "CAUGHT" in out and "MISSED" not in out


class TestScopeNames:
    @pytest.mark.parametrize("name,expected", [
        ("OR-Set", "or_set"),
        ("2P-Set (op)", "2p_set_op"),
        ("Multi-Value Reg.", "multi_value_reg"),
        ("G-Counter", "g_counter"),
    ])
    def test_normalization(self, name, expected):
        assert _normalize_scope(name) == expected


class TestObservability:
    def test_exhaustive_scope_filters(self, capsys):
        assert main(["exhaustive", "--scope", "counter"]) == 0
        out = capsys.readouterr().out
        assert "Counter" in out and "OR-Set" not in out

    def test_exhaustive_unknown_scope(self, capsys):
        assert main(["exhaustive", "--scope", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scope" in err and "or_set" in err

    def test_exhaustive_no_symmetry_flag(self, capsys):
        assert main(["exhaustive", "--scope", "counter",
                     "--no-symmetry"]) == 0
        out = capsys.readouterr().out
        assert "Counter" in out and "ok" in out

    def test_jobs_zero_means_all_cores(self, capsys):
        # 0 resolves to default_jobs() (all cores); the verdict and the
        # configuration count must match the serial run.
        assert main(["exhaustive", "--scope", "counter"]) == 0
        serial = capsys.readouterr().out
        assert main(["exhaustive", "--scope", "counter",
                     "--jobs", "0"]) == 0
        parallel = capsys.readouterr().out
        serial_row = next(l for l in serial.splitlines() if "Counter" in l)
        parallel_row = next(
            l for l in parallel.splitlines() if "Counter" in l
        )
        assert serial_row.split()[1] == parallel_row.split()[1]  # configs

    def test_exhaustive_metrics_stats_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "metrics.json")
        assert main(["exhaustive", "--scope", "counter",
                     "--metrics", path]) == 0
        out = capsys.readouterr().out
        assert f"metrics artifact written to {path}" in out

        artifact = json.loads(open(path).read())
        assert artifact["command"] == "exhaustive"
        assert artifact["counters"]["verify.scopes"] == 1

        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "deterministic (serial == --jobs N):" in out
        assert "verify.configurations{entry=Counter}" in out

    def test_exhaustive_metrics_parallel_matches_serial(self, capsys,
                                                        tmp_path):
        serial_path = str(tmp_path / "serial.json")
        parallel_path = str(tmp_path / "parallel.json")
        assert main(["exhaustive", "--scope", "or_set",
                     "--metrics", serial_path]) == 0
        assert main(["exhaustive", "--scope", "or_set", "--jobs", "2",
                     "--metrics", parallel_path]) == 0
        capsys.readouterr()
        serial = json.loads(open(serial_path).read())
        parallel = json.loads(open(parallel_path).read())
        assert serial["counters"] == parallel["counters"]

    def test_exhaustive_metrics_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        assert main(["exhaustive", "--scope", "counter",
                     "--metrics", path]) == 0
        capsys.readouterr()
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert lines[0]["command"] == "exhaustive"
        assert any(line.get("type") == "instrument" for line in lines[1:])
        assert main(["stats", path]) == 0

    def test_table_metrics(self, capsys, tmp_path):
        path = str(tmp_path / "table.json")
        assert main(["table", "--executions", "1", "--operations", "5",
                     "--metrics", path]) == 0
        capsys.readouterr()
        artifact = json.loads(open(path).read())
        assert artifact["command"] == "table"
        assert any(key.startswith("verify.executions")
                   for key in artifact["counters"])

    def test_stats_rejects_missing_file(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestChaos:
    def test_chaos_scope_filters(self, capsys):
        assert main(["chaos", "--scope", "counter"]) == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert "Counter" in out and "PN-Counter" not in out

    def test_chaos_unknown_scope(self, capsys):
        assert main(["chaos", "--scope", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scope" in err and "counter" in err

    def test_chaos_unknown_plan(self, capsys):
        assert main(["chaos", "--plan", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown plan" in err and "high-loss" in err

    def test_chaos_plan_filter(self, capsys):
        assert main(["chaos", "--scope", "g_set", "--plan", "crash"]) == 0
        out = capsys.readouterr().out
        assert "crash" in out and "high-loss" not in out

    def test_chaos_soak_repeats_seeds(self, capsys):
        assert main(["chaos", "--scope", "counter", "--plan", "baseline",
                     "--soak", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "seed" in out

    def test_chaos_metrics_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "metrics.json")
        assert main(["chaos", "--scope", "counter", "--metrics", path]) == 0
        out = capsys.readouterr().out
        assert f"metrics artifact written to {path}" in out
        artifact = json.loads(open(path).read())
        assert artifact["command"] == "chaos"
        assert artifact["meta"]["scope"] == "counter"
        instruments = artifact["metrics"]["instruments"]
        assert "chaos.runs{entry=Counter,plan=baseline}" in instruments
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "chaos.runs{entry=Counter" in out

    def test_chaos_replay_round_trip(self, capsys, tmp_path):
        # Dump a (passing) trace directly, then replay it via the CLI.
        from repro.proofs import dump_trace, entry_by_name, run_chaos

        path = str(tmp_path / "trace.json")
        dump_trace(run_chaos(entry_by_name("Counter"), seed=1), path)
        assert main(["chaos", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "trace=identical" in out and "verdict=identical" in out

    def test_chaos_replay_bad_file(self, capsys, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        assert main(["chaos", "--replay", str(path)]) == 2
        err = capsys.readouterr().err
        assert "cannot replay trace" in err


class TestStealCLI:
    """The --steal/--no-steal/--spill flags and the stats digest."""

    def _configs(self, out):
        row = next(l for l in out.splitlines() if "Counter" in l)
        return row.split()[1]

    def test_steal_flags_match_serial(self, capsys):
        assert main(["exhaustive", "--scope", "counter"]) == 0
        serial = self._configs(capsys.readouterr().out)
        assert main(["exhaustive", "--scope", "counter", "--jobs", "2",
                     "--steal"]) == 0
        assert self._configs(capsys.readouterr().out) == serial
        assert main(["exhaustive", "--scope", "counter", "--jobs", "2",
                     "--no-steal"]) == 0
        assert self._configs(capsys.readouterr().out) == serial

    def test_spill_serial_round_trip(self, capsys, tmp_path):
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        path = str(tmp_path / "metrics.json")
        assert main(["exhaustive", "--scope", "counter",
                     "--spill", str(spill_dir), "--metrics", path]) == 0
        capsys.readouterr()
        artifact = json.loads(open(path).read())
        instruments = artifact["metrics"]["instruments"]
        assert "explore.fp_store.lookups{entry=Counter}" in instruments
        assert not list(spill_dir.iterdir())  # scratch cleaned up

        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "scheduler (work stealing / fingerprint store):" in out
        assert "fp-store lookups" in out
        assert "fp-store hit ratio" in out

    def test_stats_renders_scheduler_counters(self, capsys, tmp_path):
        # A real forced-split pool run, written through the artifact
        # round trip: `repro stats` must surface the scheduler digest.
        from repro.obs import Instrumentation
        from repro.obs.instrument import write_artifact
        from repro.proofs import entry_by_name, exhaustive_verify_steal
        from repro.proofs.exhaustive import standard_programs

        ins = Instrumentation.on()
        entry = entry_by_name("Counter")
        exhaustive_verify_steal(
            entry, standard_programs(entry), jobs=2, oversubscribe=True,
            pending_target=10**6, split_interval=1, instrumentation=ins,
        )
        path = str(tmp_path / "steal.json")
        write_artifact(path, ins, "exhaustive", {})
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "scheduler (work stealing / fingerprint store):" in out
        assert "tasks stolen" in out
        assert "workers" in out
        assert "idle-wait seconds" in out


class TestComposedStoreCLI:
    def test_store_compositional(self, capsys):
        assert main(["exhaustive", "--store", "counter:1,orset:1"]) == 0
        out = capsys.readouterr().out
        assert "Compositional store verification" in out
        assert "counter" in out and "or_set" in out
        assert "side condition" in out
        assert "verdict: ok (compositional)" in out

    def test_store_unknown_object(self, capsys):
        assert main(["exhaustive", "--store", "nope:2"]) == 2
        err = capsys.readouterr().err
        assert "unknown store object" in err and "or_set" in err

    def test_store_parallel_matches_serial(self, capsys):
        assert main(["exhaustive", "--store", "counter:1,orset:1"]) == 0
        serial = capsys.readouterr().out
        assert main(["exhaustive", "--store", "counter:1,orset:1",
                     "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        def pick(text, key):
            # object / entry / configs / verdict — wall time jitters.
            row = next(
                l for l in text.splitlines() if l.startswith(key)
            ).split()
            return row[:3] + row[4:]

        assert pick(serial, "counter") == pick(parallel, "counter")
        assert pick(serial, "or_set") == pick(parallel, "or_set")
        serial_verdict = next(
            l for l in serial.splitlines() if l.startswith("verdict")
        )
        parallel_verdict = next(
            l for l in parallel.splitlines() if l.startswith("verdict")
        )
        assert serial_verdict.split(",")[:2] == parallel_verdict.split(",")[:2]

    def test_store_independent_clocks_takes_product_route(self, capsys):
        assert main(["exhaustive", "--store", "counter:1",
                     "--independent-clocks"]) == 0
        out = capsys.readouterr().out
        assert "product" in out and "verdict: ok (product)" in out

    def test_store_metrics_stats_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "compose.json")
        assert main(["exhaustive", "--store", "counter:1,orset:1",
                     "--metrics", path]) == 0
        capsys.readouterr()
        artifact = json.loads(open(path).read())
        counters = artifact["counters"]
        key = "compose.objects{mode=compositional,store=counter:1,or_set:1}"
        assert counters[key] == 2
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "composition (per-object proof rule):" in out
        assert "side-condition checks" in out

    def test_table_has_composed_row(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "Composed ⊗ts store" in out
