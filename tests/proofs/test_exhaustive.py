"""Exhaustive small-scope verification."""

import pytest

from repro.proofs.exhaustive import (
    ExhaustiveResult,
    exhaustive_verify,
    standard_programs,
)
from repro.proofs.mutants import LastDeliveryWinsRegister
from repro.proofs.registry import ALL_ENTRIES, entry_by_name

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]


@pytest.mark.parametrize("entry", OB_ENTRIES, ids=[e.name for e in OB_ENTRIES])
def test_standard_programs_fully_verified(entry):
    result = exhaustive_verify(entry, standard_programs(entry))
    assert result.ok, result.failures
    # The engine reports *distinct* final configurations (the naive
    # explorer counted raw interleavings; see docs/exploration.md).
    assert result.configurations >= 10
    assert result.stats is not None
    assert result.stats.branches_pruned > 0  # reduction actually fired


def test_state_based_entries_rejected():
    with pytest.raises(ValueError):
        exhaustive_verify(entry_by_name("PN-Counter"), {"r1": []})


def test_max_configurations_bound():
    entry = entry_by_name("Counter")
    result = exhaustive_verify(
        entry, standard_programs(entry), max_configurations=10
    )
    assert result.configurations == 10


def test_mutant_caught_exhaustively():
    from dataclasses import replace

    base = entry_by_name("LWW-Register")
    mutant = replace(base, make_crdt=LastDeliveryWinsRegister)
    result = exhaustive_verify(mutant, standard_programs(base))
    assert not result.ok
    assert result.failures


def test_failure_reporting_capped():
    result = ExhaustiveResult("x")
    for i in range(50):
        result.record(f"failure {i}")
    assert not result.ok
    assert len(result.failures) == 10


def test_unknown_engine_rejected():
    entry = entry_by_name("Counter")
    with pytest.raises(ValueError, match="unknown engine"):
        exhaustive_verify(entry, standard_programs(entry), engine="fastt")


class TestSymmetryThreading:
    """The ``symmetry`` override and the ``CRDTEntry.symmetry`` default."""

    SYM_PROGRAMS = {
        "r1": [("inc", ()), ("read", ())],
        "r2": [("inc", ()), ("read", ())],
    }

    def test_verdict_matches_naive_engine(self):
        entry = entry_by_name("Counter")
        naive = exhaustive_verify(entry, self.SYM_PROGRAMS, engine="naive")
        fast = exhaustive_verify(entry, self.SYM_PROGRAMS)
        assert fast.ok == naive.ok
        assert fast.stats.symmetry_group == 2

    def test_override_beats_entry_default(self):
        entry = entry_by_name("Counter")
        on = exhaustive_verify(entry, self.SYM_PROGRAMS)
        off = exhaustive_verify(entry, self.SYM_PROGRAMS, symmetry=False)
        assert off.stats.symmetry_group == 1
        assert on.configurations < off.configurations
        assert on.ok == off.ok

    def test_hatched_entry_defaults_to_no_symmetry(self):
        entry = entry_by_name("LWW-Register")
        programs = {
            "r1": [("write", ("a",)), ("read", ())],
            "r2": [("write", ("a",)), ("read", ())],
        }
        result = exhaustive_verify(entry, programs)
        assert result.stats.symmetry_group == 1
        forced = exhaustive_verify(entry, programs, symmetry=True)
        assert forced.stats.symmetry_group == 2
