"""Differential: compositional verdicts vs the whole-store product oracle.

Every 2-object store drawn from the op-based registry is verified both
ways on a small scope — per-object compositional rule vs whole-store
product exploration against the composed spec — and the verdicts must be
bit-identical (Thms 5.3/5.5).  The ⊗ (independent clocks) stores are the
soundness boundary: per-object projections pass while the product check
fails (the Fig. 9/Fig. 10 anomaly), which is why `verify_store` refuses
the shortcut there unless `product_fallback=False` forces it.
"""

import itertools

import pytest

from repro.proofs.compositional import (
    Store,
    check_side_condition,
    parse_store_spec,
    product_verify_store,
    verify_store,
)
from repro.proofs.exhaustive import standard_programs
from repro.proofs.registry import ALL_ENTRIES

OB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "OB"]
ALL_PAIRS = list(
    itertools.combinations_with_replacement(
        [e.name for e in OB_ENTRIES], 2
    )
)
FAST_PAIRS = [
    ("Counter", "OR-Set"),
    ("LWW-Register", "RGA"),
    ("Counter", "Counter"),
    ("OR-Set", "Wooki"),
]


def two_object_store(first, second, shared_timestamps=True):
    entries = {e.name: e for e in OB_ENTRIES}
    return Store(
        (("o1", entries[first]), ("o2", entries[second])),
        shared_timestamps=shared_timestamps,
    )


def tiny_programs(store):
    programs = {"r1": [], "r2": []}
    for obj, entry in store.objects:
        per_object = standard_programs(entry)
        for replica in programs:
            ops = per_object.get(replica, [])
            if ops:
                programs[replica].append((ops[0][0], ops[0][1], obj))
    return programs


def assert_verdicts_match(store, **kwargs):
    programs = tiny_programs(store)
    compositional = verify_store(store, programs, **kwargs)
    oracle = product_verify_store(store, programs)
    assert compositional.mode == "compositional"
    assert compositional.ok == oracle.ok, (
        f"{store.describe()}: compositional={compositional.ok} "
        f"({compositional.failures}) product={oracle.ok} "
        f"({oracle.failures})"
    )


class TestDifferentialFast:
    @pytest.mark.parametrize("pair", FAST_PAIRS, ids=lambda p: "+".join(p))
    def test_pair_matches_oracle(self, pair):
        assert_verdicts_match(two_object_store(*pair))

    @pytest.mark.parametrize("symmetry", [True, False],
                             ids=["sym", "nosym"])
    @pytest.mark.parametrize("por", ["sleep", "source"])
    def test_variants_match_oracle(self, symmetry, por):
        assert_verdicts_match(
            two_object_store("Counter", "OR-Set"),
            symmetry=symmetry, por=por,
        )


class TestDifferentialFull:
    @pytest.mark.slow
    @pytest.mark.parametrize("pair", ALL_PAIRS, ids=lambda p: "+".join(p))
    def test_every_registry_pair_matches_oracle(self, pair):
        assert_verdicts_match(two_object_store(*pair))


class TestIndependentClockBoundary:
    def test_forced_compositional_rule_catches_non_ts_store(self):
        # The known-failing ⊗ pair: two RGAs with independent clocks
        # (the Fig. 10 shape).  Forcing the per-object rule must not
        # silently pass — the side-condition sweep flags the dominance
        # violation that breaks the merge argument.
        store = two_object_store("RGA", "RGA", shared_timestamps=False)
        result = verify_store(store, product_fallback=False)
        assert result.mode == "compositional"
        assert all(r.ok for r in result.objects.values())
        assert not result.side_condition_ok
        assert not result.ok
        assert any("side condition" in f for f in result.failures)

    def test_fallback_takes_product_route(self):
        store = two_object_store(
            "Counter", "Counter", shared_timestamps=False
        )
        result = verify_store(store, programs=tiny_programs(store))
        assert result.mode == "product"

    def test_side_condition_clean_under_shared_clock(self):
        store = two_object_store("RGA", "RGA")
        ok, checks, failures, cex, messages = check_side_condition(store)
        assert ok and failures == 0 and cex is None
        assert checks > 0
