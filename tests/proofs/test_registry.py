"""The Fig. 12 catalogue."""

import pytest

from repro.core.spec import SequentialSpec
from repro.crdts.base import OpBasedCRDT, StateBasedCRDT
from repro.proofs import ALL_ENTRIES, FIGURE_12_ENTRIES, entry_by_name
from repro.runtime.workloads import Workload


class TestCatalogueShape:
    def test_figure_12_has_nine_rows(self):
        assert len(FIGURE_12_ENTRIES) == 9

    def test_figure_12_names_match_paper(self):
        names = {e.name for e in FIGURE_12_ENTRIES}
        assert names == {
            "Counter", "PN-Counter", "LWW-Register", "Multi-Value Reg.",
            "LWW-Element Set", "2P-Set", "OR-Set", "RGA", "Wooki",
        }

    def test_classes_match_figure_12(self):
        expected = {
            "Counter": ("OB", "EO"),
            "PN-Counter": ("SB", "EO"),
            "LWW-Register": ("OB", "TO"),
            "Multi-Value Reg.": ("SB", "EO"),
            "LWW-Element Set": ("SB", "TO"),
            "2P-Set": ("SB", "EO"),
            "OR-Set": ("OB", "EO"),
            "RGA": ("OB", "TO"),
            "Wooki": ("OB", "EO"),
        }
        for entry in FIGURE_12_ENTRIES:
            assert (entry.kind, entry.lin_class) == expected[entry.name]

    def test_entry_by_name(self):
        assert entry_by_name("RGA").lin_class == "TO"
        with pytest.raises(KeyError):
            entry_by_name("nonexistent")

    def test_extras_flagged(self):
        extras = [e for e in ALL_ENTRIES if not e.in_figure_12]
        assert {e.name for e in extras} == {
            "G-Counter", "G-Set", "RGA-addAt", "2P-Set (op)",
            "LWW-Register (SB)",
        }


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES])
class TestEntriesWellFormed:
    def test_factories(self, entry):
        crdt = entry.make_crdt()
        if entry.kind == "OB":
            assert isinstance(crdt, OpBasedCRDT)
        else:
            assert isinstance(crdt, StateBasedCRDT)
        assert isinstance(entry.make_spec(), SequentialSpec)
        assert isinstance(entry.make_workload(), Workload)

    def test_abs_maps_initial_states(self, entry):
        crdt = entry.make_crdt()
        spec = entry.make_spec()
        assert entry.abs_fn(crdt.initial_state()) == spec.initial()

    def test_to_entries_have_timestamp_extractor(self, entry):
        if entry.lin_class == "TO":
            assert entry.state_timestamps is not None
            crdt = entry.make_crdt()
            assert list(entry.state_timestamps(crdt.initial_state())) == []
