"""The harness rejects broken CRDT implementations (mutation testing)."""

import pytest

from repro.proofs.mutants import (
    AscendingRGA,
    DroppingRGA,
    EagerRemoveORSet,
    KeepAllMVRegister,
    LastDeliveryWinsRegister,
    SummingPNCounter,
    mutant_catalogue,
    verify_mutant,
)

CATALOGUE = mutant_catalogue()


@pytest.mark.parametrize(
    "name,make_crdt,base", CATALOGUE, ids=[row[0] for row in CATALOGUE]
)
def test_mutant_detected(name, make_crdt, base):
    result = verify_mutant(make_crdt, base)
    assert not result.verified, f"mutant {name} slipped through"
    assert result.failures


class TestSpecificDiagnoses:
    def test_last_delivery_wins_breaks_commutativity(self):
        result = verify_mutant(LastDeliveryWinsRegister, "LWW-Register")
        assert not result.commutativity_ok

    def test_eager_remove_breaks_convergence(self):
        result = verify_mutant(EagerRemoveORSet, "OR-Set")
        assert not result.convergence_ok

    def test_ascending_rga_breaks_refinement_but_not_convergence(self):
        # The mutant is still convergent — only the *specification* link
        # breaks, which is exactly what RA-linearizability adds over SEC.
        result = verify_mutant(AscendingRGA, "RGA")
        assert result.convergence_ok
        assert not result.refinement_ok
        assert not result.ralin_ok

    def test_dropping_rga_breaks_refinement(self):
        result = verify_mutant(DroppingRGA, "RGA")
        assert not result.refinement_ok

    def test_summing_pn_counter_breaks_lattice_properties(self):
        result = verify_mutant(SummingPNCounter, "PN-Counter")
        assert not result.commutativity_ok  # Prop2/Prop3/Prop4 via props

    def test_keep_all_mvr_breaks_ralin(self):
        result = verify_mutant(KeepAllMVRegister, "Multi-Value Reg.")
        assert not result.ralin_ok


def test_catalogue_covers_both_kinds():
    bases = {base for _, _, base in CATALOGUE}
    assert {"LWW-Register", "OR-Set", "RGA"} <= bases          # op-based
    assert {"PN-Counter", "Multi-Value Reg."} <= bases          # state-based
