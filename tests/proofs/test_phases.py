"""Phase attribution must tile the engine wall (acceptance: the
attributed phase sum plus ``(other)`` equals the summed exploration
wall, and the attributed share alone stays within sane bounds)."""

from repro.obs import Instrumentation
from repro.obs.profile import PHASES, phase_totals
from repro.proofs.exhaustive import exhaustive_verify, standard_programs
from repro.proofs.registry import entry_by_name
from repro.proofs.report import format_phases


def _profiled_artifact(entry_name="Counter"):
    ins = Instrumentation.on()
    entry = entry_by_name(entry_name)
    result = exhaustive_verify(entry, standard_programs(entry),
                               instrumentation=ins)
    assert result.ok
    return ins.artifact("test")


def test_attributed_sum_tiles_engine_wall():
    artifact = _profiled_artifact()
    instruments = artifact["metrics"]["instruments"]
    totals = phase_totals(instruments)
    assert totals, "exploration with --metrics must produce a profile"
    assert set(totals) <= set(PHASES)
    wall = sum(
        dumped.get("value") or 0.0
        for dumped in instruments.values()
        if dumped.get("name") == "explore.wall_seconds"
    )
    attributed = sum(totals.values())
    assert wall > 0.0 and attributed > 0.0
    # Region timers live inside the wall timer, so attribution can never
    # exceed the wall by more than clock jitter; the renderer's (other)
    # row absorbs the un-attributed remainder exactly.
    assert attributed <= wall * 1.10


def test_check_and_apply_phases_are_attributed():
    totals = phase_totals(_profiled_artifact()["metrics"]["instruments"])
    # The two phases every exploration must pay: executing transitions
    # and replaying the spec for the RA-linearizability check.
    assert totals.get("apply", 0.0) > 0.0
    assert totals.get("check", 0.0) > 0.0


def test_format_phases_renders_the_table():
    rendered = format_phases(_profiled_artifact())
    lines = rendered.splitlines()
    assert lines[0] == "phase profile (engine wall attribution):"
    assert "(other)" in rendered
    assert lines[-1].startswith("engine wall")
    assert lines[-1].rstrip().endswith("100.0%")
    assert "apply" in rendered and "check" in rendered


def test_format_phases_degrades_without_a_profile():
    rendered = format_phases({"metrics": {"instruments": {}}})
    assert rendered.startswith("no phase profile in this artifact")
    assert format_phases({}).startswith("no phase profile")
