"""The end-to-end verification harness and the Fig. 12 table."""

import pytest

from repro.proofs import (
    ALL_ENTRIES,
    FIGURE_12_ENTRIES,
    VerificationResult,
    entry_by_name,
    format_table,
    verify_entry,
)


@pytest.mark.parametrize(
    "entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES]
)
def test_every_catalogue_entry_verifies(entry):
    result = verify_entry(entry, executions=3, operations=8)
    assert result.verified, result.failures
    assert result.executions == 3
    assert result.operations >= 8 * 3


def test_result_aggregation():
    result = verify_entry(entry_by_name("Counter"), executions=2, operations=5)
    assert result.commutativity_ok and result.refinement_ok
    assert result.convergence_ok and result.ralin_ok
    assert not result.failures


def test_format_table_shape():
    results = [
        VerificationResult("Counter", "OB", "EO", executions=3, operations=24),
        VerificationResult("RGA", "OB", "TO", executions=3, operations=24,
                           ralin_ok=False),
    ]
    text = format_table(results, title="Fig. 12")
    lines = text.splitlines()
    assert lines[0] == "Fig. 12"
    assert "Counter" in text and "RGA" in text
    assert "yes" in text and "NO" in text


def test_figure_12_catalogue_covers_paper_rows():
    assert {e.name for e in FIGURE_12_ENTRIES} >= {"OR-Set", "RGA", "Wooki"}
