"""The end-to-end verification harness and the Fig. 12 table."""

import pytest

from repro.obs import Instrumentation
from repro.proofs import (
    ALL_ENTRIES,
    FIGURE_12_ENTRIES,
    VerificationResult,
    entry_by_name,
    exhaustive_verify,
    format_exhaustive,
    format_metrics,
    format_table,
    standard_programs,
    verify_entry,
)
from repro.proofs.exhaustive import ExhaustiveResult


@pytest.mark.parametrize(
    "entry", ALL_ENTRIES, ids=[e.name for e in ALL_ENTRIES]
)
def test_every_catalogue_entry_verifies(entry):
    result = verify_entry(entry, executions=3, operations=8)
    assert result.verified, result.failures
    assert result.executions == 3
    assert result.operations >= 8 * 3


def test_result_aggregation():
    result = verify_entry(entry_by_name("Counter"), executions=2, operations=5)
    assert result.commutativity_ok and result.refinement_ok
    assert result.convergence_ok and result.ralin_ok
    assert not result.failures


def test_format_table_shape():
    results = [
        VerificationResult("Counter", "OB", "EO", executions=3, operations=24),
        VerificationResult("RGA", "OB", "TO", executions=3, operations=24,
                           ralin_ok=False),
    ]
    text = format_table(results, title="Fig. 12")
    lines = text.splitlines()
    assert lines[0] == "Fig. 12"
    assert "Counter" in text and "RGA" in text
    assert "yes" in text and "NO" in text


def test_figure_12_catalogue_covers_paper_rows():
    assert {e.name for e in FIGURE_12_ENTRIES} >= {"OR-Set", "RGA", "Wooki"}


class TestFormatExhaustive:
    def test_surfaces_exploration_and_cache_stats(self):
        entry = entry_by_name("OR-Set")
        result = exhaustive_verify(entry, standard_programs(entry))
        text = format_exhaustive([result], title="scopes")
        assert text.splitlines()[0] == "scopes"
        line = next(l for l in text.splitlines() if l.startswith("OR-Set"))
        assert str(result.configurations) in line
        assert str(result.stats.states_visited) in line
        assert "%" in line  # dedup / hit-rate columns rendered
        assert line.rstrip().endswith("ok")

    def test_missing_stats_render_dashes(self):
        result = ExhaustiveResult("G-Set", configurations=4)
        text = format_exhaustive([result])
        line = next(l for l in text.splitlines() if l.startswith("G-Set"))
        assert "-" in line and line.rstrip().endswith("ok")

    def test_failures_listed(self):
        result = ExhaustiveResult("RGA", configurations=2)
        result.record("non-RA-linearizable interleaving: boom")
        text = format_exhaustive([result])
        assert "FAIL" in text
        assert "failures:" in text
        assert "boom" in text


class TestFormatMetrics:
    def test_renders_all_sections(self):
        ins = Instrumentation.on()
        entry = entry_by_name("Counter")
        exhaustive_verify(entry, standard_programs(entry),
                          instrumentation=ins)
        text = format_metrics(ins.artifact("exhaustive", {"jobs": 1}))
        assert "command: exhaustive" in text
        assert "deterministic (serial == --jobs N):" in text
        assert "verify.configurations{entry=Counter}" in text
        assert "work counters:" in text
        assert "histograms" in text
        assert "trace events:" in text

    def test_empty_artifact_renders(self):
        text = format_metrics(Instrumentation.on().artifact("table"))
        assert "command: table" in text
        assert "trace events: 0" in text
