"""Bounded exhaustive verification of state-based entries."""

import pytest

from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.mutants import SummingPNCounter
from repro.proofs.registry import ALL_ENTRIES, entry_by_name

SB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "SB"]


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_state_based_small_scope(entry):
    result = exhaustive_verify_state(
        entry, standard_programs(entry), max_gossips=2
    )
    assert result.ok, result.failures
    # Distinct final configurations, not raw interleavings (the engine
    # dedups and prunes commuting schedules; see docs/exploration.md).
    # G-Counter's standard programs are replica-symmetric, so its count
    # is *orbits* under replica permutation (32 vs 59 raw).
    assert result.configurations >= 30
    assert result.stats is not None and result.stats.states_deduped > 0


def test_op_based_entries_rejected():
    with pytest.raises(ValueError):
        exhaustive_verify_state(entry_by_name("Counter"), {"r1": []})


def test_gossip_budget_grows_coverage():
    entry = entry_by_name("PN-Counter")
    programs = standard_programs(entry)
    none = exhaustive_verify_state(entry, programs, max_gossips=0)
    some = exhaustive_verify_state(entry, programs, max_gossips=2)
    assert some.configurations > none.configurations


def test_state_mutant_caught_exhaustively():
    from dataclasses import replace

    base = entry_by_name("PN-Counter")
    mutant = replace(base, make_crdt=SummingPNCounter)
    result = exhaustive_verify_state(
        mutant, standard_programs(base), max_gossips=2
    )
    assert not result.ok


def test_max_configurations_bound():
    entry = entry_by_name("G-Set")
    result = exhaustive_verify_state(
        entry, standard_programs(entry), max_gossips=2, max_configurations=7
    )
    assert result.configurations == 7


def test_unknown_engine_rejected():
    entry = entry_by_name("G-Set")
    with pytest.raises(ValueError, match="unknown engine"):
        exhaustive_verify_state(
            entry, standard_programs(entry), engine="naiive"
        )
