"""Appendix D property checks (Prop1–Prop6, fold oracle)."""

import pytest

from repro.core.linearization import history_timestamp, ts_sort_key
from repro.proofs import check_fold_oracle, check_properties, collected_states
from repro.proofs.registry import ALL_ENTRIES
from repro.runtime import random_state_execution

SB_ENTRIES = [e for e in ALL_ENTRIES if e.kind == "SB"]


def run_entry(entry, seed=0, operations=10):
    return random_state_execution(
        entry.make_crdt(), entry.make_workload(),
        operations=operations, seed=seed,
    )


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_properties_hold(entry):
    system = run_entry(entry)
    report = check_properties(system)
    assert report.ok, report.violations

@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_prop5_checked_per_operation(entry):
    system = run_entry(entry)
    report = check_properties(system)
    assert report.checks.get("prop5", 0) == len(system.generation_order)


@pytest.mark.parametrize("entry", SB_ENTRIES, ids=[e.name for e in SB_ENTRIES])
def test_fold_oracle(entry):
    system = run_entry(entry, seed=3)
    order = list(system.generation_order)
    if entry.lin_class == "TO":
        history = system.history()
        position = {l: i for i, l in enumerate(order)}
        order.sort(key=lambda l: (ts_sort_key(history_timestamp(history, l)),
                                  position[l]))
    report = check_fold_oracle(system, order)
    assert report.ok, report.violations
    assert report.checks.get("fold", 0) > 0


def test_collected_states_deduplicated():
    entry = SB_ENTRIES[0]
    system = run_entry(entry)
    states = collected_states(system)
    for i, state in enumerate(states):
        assert state not in states[i + 1:]


def test_fold_oracle_detects_wrong_order():
    # The LWW-Element-Set fold in a *wrong* (anti-timestamp) order diverges
    # whenever an add/remove pair on the same element is inverted.
    entry = next(e for e in SB_ENTRIES if e.name == "LWW-Element Set")
    from repro.runtime import StateBasedSystem

    system = StateBasedSystem(entry.make_crdt(), replicas=("r1",))
    system.invoke("r1", "add", ("a",))
    system.invoke("r1", "remove", ("a",))
    good = check_fold_oracle(system, list(system.generation_order))
    assert good.ok
    # For sets-of-records the fold is order-insensitive, so reversing still
    # matches — this documents that the oracle constrains *states*, not
    # abstract contents.
    reversed_report = check_fold_oracle(
        system, list(reversed(system.generation_order))
    )
    assert reversed_report.ok
