"""Markdown rendering of the verification table."""

from repro.proofs import VerificationResult
from repro.proofs.report import format_markdown


def test_markdown_table():
    results = [
        VerificationResult("Counter", "OB", "EO", executions=3, operations=30),
        VerificationResult("RGA", "OB", "TO", executions=3, operations=30,
                           refinement_ok=False),
    ]
    text = format_markdown(results)
    lines = text.splitlines()
    assert lines[0].startswith("| CRDT |")
    assert lines[1].startswith("|---")
    assert "| Counter | OB | EO | yes | 3 | 30 |" in text
    assert "**NO**" in text
