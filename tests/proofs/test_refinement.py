"""Refinement / Refinement_ts checking (Sec. 4.1 / 4.2)."""

from repro.core.sentinels import ROOT
from repro.crdts import OpCounter, OpLWWRegister, OpRGA
from repro.proofs import check_refinement
from repro.proofs.registry import entry_by_name
from repro.runtime import (
    CounterWorkload,
    OpBasedSystem,
    RegisterWorkload,
    random_op_execution,
)
from repro.specs import CounterSpec, LWWRegisterSpec, RGASpec


class TestRefinementEO:
    def test_counter(self):
        system = random_op_execution(
            OpCounter(), CounterWorkload(), operations=10, seed=0
        )
        report = check_refinement(
            system, CounterSpec(), abs_fn=lambda s: s
        )
        assert report.ok
        assert report.checked_effectors > 0
        assert report.checked_generators > 0

    def test_wrong_abstraction_detected(self):
        system = OpBasedSystem(OpCounter(), replicas=("r1",))
        system.invoke("r1", "inc")
        report = check_refinement(
            system, CounterSpec(), abs_fn=lambda s: s * 2
        )
        assert not report.ok
        assert "not simulated" in report.violations[0]


class TestRefinementTS:
    def _lww_entry(self):
        return entry_by_name("LWW-Register")

    def test_lww_register_guarded(self):
        entry = self._lww_entry()
        system = random_op_execution(
            OpLWWRegister(), RegisterWorkload(), operations=10, seed=4
        )
        report = check_refinement(
            system, LWWRegisterSpec(), entry.abs_fn,
            timestamp_guard=entry.state_timestamps,
        )
        assert report.ok

    def test_guard_actually_skips_stale_writes(self):
        system = OpBasedSystem(OpLWWRegister(), replicas=("r1", "r2"))
        newer = system.invoke("r2", "write", ("b",))
        system.invoke("r1", "write", ("a",))  # smaller ts than nothing yet
        system.deliver_all()  # at some replica the stale write arrives last
        entry = self._lww_entry()
        report = check_refinement(
            system, LWWRegisterSpec(), entry.abs_fn,
            timestamp_guard=entry.state_timestamps,
        )
        assert report.ok
        assert report.skipped_by_guard >= 1

    def test_unguarded_lww_would_fail(self):
        # Without the Refinement_ts guard, the stale-write delivery cannot
        # be simulated (the spec would overwrite with the older value).
        system = OpBasedSystem(OpLWWRegister(), replicas=("r1", "r2"))
        system.invoke("r2", "write", ("b",))
        system.invoke("r1", "write", ("a",))
        system.deliver_all()
        entry = self._lww_entry()
        report = check_refinement(
            system, LWWRegisterSpec(), entry.abs_fn, timestamp_guard=None
        )
        assert not report.ok

    def test_rga(self):
        entry = entry_by_name("RGA")
        system = OpBasedSystem(OpRGA(), replicas=("r1", "r2"))
        system.invoke("r2", "addAfter", (ROOT, "b"))
        system.invoke("r1", "addAfter", (ROOT, "a"))
        system.deliver_all()
        system.invoke("r1", "read")
        system.deliver_all()
        report = check_refinement(
            system, RGASpec(), entry.abs_fn,
            timestamp_guard=entry.state_timestamps,
        )
        assert report.ok
