"""Incremental checking through the exhaustive pipeline (``cache=True``).

The frontier/verdict caches are pure accelerators: with them on (the
default) the exhaustive checkers must return exactly the answers of the
``cache=False`` PR-1 path — including *failing* answers for buggy CRDTs,
the case where a cache that conflates configurations would be unsound.
"""

import dataclasses

from repro.proofs.exhaustive import (
    exhaustive_verify,
    exhaustive_verify_state,
    standard_programs,
)
from repro.proofs.mutants import EagerRemoveORSet, LastDeliveryWinsRegister
from repro.proofs.registry import entry_by_name


def _mutant_entry(base_name, make_crdt, name):
    base = entry_by_name(base_name)
    return base, dataclasses.replace(
        base, name=name, make_crdt=make_crdt, in_figure_12=False
    )


def test_frontier_cache_exercised_on_op_based_scope():
    # Op-based configurations are already deduped by the engine, so the
    # verdict memo rarely fires there — but interleavings share long
    # generation-order prefixes, which the frontier trie must absorb.
    entry = entry_by_name("Counter")
    result = exhaustive_verify(entry, standard_programs(entry), cache=True)
    assert result.ok
    stats = result.check_stats
    assert stats is not None
    assert stats.frontier_hits > 0
    assert stats.frontier_hits > stats.frontier_misses


def test_verdict_memo_exercised_on_state_based_scope():
    # Different gossip interleavings reach distinct engine states that
    # collapse to the same canonical history — exactly what the verdict
    # memo deduplicates.
    entry = entry_by_name("G-Counter")
    result = exhaustive_verify_state(
        entry, standard_programs(entry), max_gossips=2, cache=True
    )
    assert result.ok
    stats = result.check_stats
    assert stats is not None
    assert stats.verdict_hits > 0
    assert stats.checks > stats.verdict_hits


def test_mutant_failing_verdict_identical_with_and_without_cache():
    # The negative case from the acceptance criteria: a buggy CRDT
    # (eager-remove OR-Set, which drops concurrent re-adds) must fail
    # identically through the cached and uncached pipelines.
    base, mutant = _mutant_entry("OR-Set", EagerRemoveORSet, "eager-remove")
    programs = standard_programs(base)
    uncached = exhaustive_verify(mutant, programs, cache=False)
    cached = exhaustive_verify(mutant, programs, cache=True)
    assert not uncached.ok and not cached.ok
    assert cached.configurations == uncached.configurations
    assert len(cached.failures) == len(uncached.failures)


def test_second_mutant_shape_also_preserved():
    # A different failure shape (timestamp discipline ignored, TO class).
    base, mutant = _mutant_entry(
        "LWW-Register", LastDeliveryWinsRegister, "last-delivery-wins"
    )
    programs = standard_programs(base)
    uncached = exhaustive_verify(mutant, programs, cache=False)
    cached = exhaustive_verify(mutant, programs, cache=True)
    assert not uncached.ok and not cached.ok
    assert cached.configurations == uncached.configurations
    assert len(cached.failures) == len(uncached.failures)
